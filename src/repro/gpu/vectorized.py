"""Vectorized MWP/CWP scoring of whole characteristic batches.

:func:`score_batch` replays :meth:`GpuPerformanceModel.breakdown` —
occupancy included — over a batch of :class:`KernelCharacteristics` as
NumPy structure-of-arrays math instead of N independent scalar passes.
Every elementwise operation mirrors the scalar model's operation *and
order*, so the resulting ``seconds`` are bitwise-equal to the reference
(IEEE-754 binary64 arithmetic is deterministic; only re-association
could diverge, and nothing here re-associates).

It also derives a cheap **lower bound** on each candidate's time —
``exec_cycles`` can never drop below the raw memory cycles nor below the
pipelined memory/compute floor ``N * mem * comp / (mem + comp)``,
whatever regime the model lands in (see ``docs/EXPLORER.md`` for the
per-regime proof) — which powers the explorer's bound-based pruning:
fully score one promising seed, then skip every candidate whose floor
already exceeds the seed's actual time.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel, GpuTimingBreakdown
from repro.gpu.occupancy import OccupancyResult

#: Resource names in the scalar occupancy's dict-insertion order; the
#: stacked argmin below reproduces its first-minimum limiter choice.
_LIMITERS = ("threads", "blocks", "warps", "registers", "shared_mem")
_REGIMES = ("balanced", "memory-bound", "compute-bound")
#: The lower bound's proof tolerates the model's ``math.isclose`` slop
#: (1e-9 relative); shave a comfortably larger margin so the bound never
#: edges above the true time through rounding.
_BOUND_SAFETY = 1.0 - 1e-6

_ERR_BLOCK, _ERR_REGS, _ERR_SMEM, _ERR_FIT = 1, 2, 3, 4


class _Batch:
    """Structure-of-arrays view of a characteristics batch on one model."""

    def __init__(
        self, model: GpuPerformanceModel, chars_list: list[KernelCharacteristics]
    ) -> None:
        self.model = model
        self.chars = chars_list
        arch = model.arch
        as_i64 = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
        as_f64 = lambda xs: np.asarray(xs, dtype=np.float64)  # noqa: E731
        self.block = as_i64([c.block_size for c in chars_list])
        self.regs = as_i64([c.registers_per_thread for c in chars_list])
        self.smem = as_i64([c.shared_mem_per_block for c in chars_list])
        threads = as_i64([c.threads for c in chars_list])
        # num_blocks = ceil(threads / block_size), replaying the scalar
        # property's float division (cheaper than a property call per row).
        self.nb = np.ceil(threads / self.block).astype(np.int64)
        self.bpa = as_i64([c.bytes_per_access for c in chars_list])
        self.mem_insts = as_f64([c.mem_insts_per_thread for c in chars_list])
        self.comp_insts = as_f64([c.comp_insts_per_thread for c in chars_list])
        self.f_coal = as_f64([c.coalesced_fraction for c in chars_list])
        self.syncs = as_f64([c.syncs_per_thread for c in chars_list])

        # --- Occupancy (vectorized repro.gpu.occupancy.occupancy) --------
        self.warps_per_block = -(-self.block // arch.warp_size)
        regs_per_block = self.regs * self.block
        big = np.iinfo(np.int64).max
        limits = np.stack(
            [
                arch.max_threads_per_sm // self.block,
                np.full(len(chars_list), arch.max_blocks_per_sm, np.int64),
                arch.max_warps_per_sm // self.warps_per_block,
                arch.registers_per_sm // np.maximum(regs_per_block, 1),
                np.where(
                    self.smem > 0,
                    arch.shared_mem_per_sm // np.maximum(self.smem, 1),
                    big,
                ),
            ]
        )
        self.limiter_idx = np.argmin(limits, axis=0)
        raw_blocks_per_sm = np.min(limits, axis=0)

        # Error precedence matches the scalar raise order exactly.
        err = np.zeros(len(chars_list), dtype=np.int64)
        err_block = self.block > arch.max_threads_per_sm
        err_regs = ~err_block & (regs_per_block > arch.registers_per_sm)
        err_smem = (
            ~err_block & ~err_regs & (self.smem > arch.shared_mem_per_sm)
        )
        err_fit = (
            ~err_block & ~err_regs & ~err_smem & (raw_blocks_per_sm < 1)
        )
        err[err_block] = _ERR_BLOCK
        err[err_regs] = _ERR_REGS
        err[err_smem] = _ERR_SMEM
        err[err_fit] = _ERR_FIT
        self.err = err
        self.legal = err == 0
        self._regs_per_block = regs_per_block

        cap = np.maximum(
            1, np.ceil(self.nb / arch.num_sms).astype(np.int64)
        )
        # Illegal rows carry dummy occupancy (1 block/SM); their timing
        # arrays are computed but never read.
        self.blocks_per_sm = np.minimum(
            np.where(self.legal, raw_blocks_per_sm, 1), cap
        )
        self.active_warps = self.blocks_per_sm * self.warps_per_block
        self.n_warps = np.maximum(1, self.active_warps)
        self.n_f = self.n_warps.astype(np.float64)

        # --- Cheap timing terms (model.breakdown stage shared with the
        # lower bound) ----------------------------------------------------
        self.f_uncoal = 1.0 - self.f_coal
        uncoal_trans = arch.uncoal_transactions_per_warp
        dep_uncoal = arch.departure_del_uncoal * uncoal_trans
        self.departure_delay = (
            self.f_coal * arch.departure_del_coal + self.f_uncoal * dep_uncoal
        )
        mem_l_uncoal = (
            arch.mem_latency_cycles
            + (uncoal_trans - 1) * arch.departure_del_uncoal
        )
        self.mem_l = (
            self.f_coal * arch.mem_latency_cycles
            + self.f_uncoal * mem_l_uncoal
        )
        self.mem_cycles = self.mem_l * self.mem_insts
        comp_cycles = arch.issue_cycles * (self.comp_insts + self.mem_insts)
        self.comp_cycles = np.maximum(comp_cycles, arch.issue_cycles)
        self.active_sms = np.minimum(arch.num_sms, self.nb)
        self.repetitions = np.maximum(
            1,
            np.ceil(
                self.nb / (self.blocks_per_sm * self.active_sms)
            ).astype(np.int64),
        )
        self.sync_term = (arch.sync_cycles * self.syncs) * self.n_f

    # ------------------------------------------------------------------ #
    def bound_seconds(self) -> np.ndarray:
        """A provable lower bound on each row's projected seconds.

        ``exec_cycles >= max(mem_cycles, N*mem*comp/(mem+comp)) + sync``
        holds in every regime; ``repetitions`` and the launch overhead
        transfer the bound to seconds.  ``_BOUND_SAFETY`` absorbs the
        model's isclose slop and rounding.
        """
        pipelined_floor = (
            self.n_f
            * self.mem_cycles
            * self.comp_cycles
            / (self.mem_cycles + self.comp_cycles)
        )
        bound_cycles = (
            np.maximum(self.mem_cycles, pipelined_floor)
            + np.where(self.syncs != 0.0, self.sync_term, 0.0)
        ) * _BOUND_SAFETY
        return (
            bound_cycles * self.repetitions / self.model.arch.clock_hz
            + self.model.launch_overhead
        )

    def exec_at(self, idx: np.ndarray) -> dict[str, np.ndarray]:
        """Full regime selection + exec cycles for the rows in ``idx``."""
        arch = self.model.arch
        bpa = self.bpa[idx]
        f_coal = self.f_coal[idx]
        f_uncoal = self.f_uncoal[idx]
        mem_l = self.mem_l[idx]
        mi = self.mem_insts[idx]
        mc = self.mem_cycles[idx]
        cc = self.comp_cycles[idx]
        nf = self.n_f[idx]

        payload = bpa * arch.warp_size
        waste = np.maximum(
            1.0, GpuPerformanceModel.MIN_TRANSACTION_BYTES / bpa
        )
        consumed = payload * (f_coal + f_uncoal * waste)
        bw_per_warp = arch.clock_hz * consumed / mem_l
        mwp_peak_bw = arch.mem_bandwidth / (bw_per_warp * self.active_sms[idx])
        mwp_without_bw = mem_l / self.departure_delay[idx]
        mwp = np.maximum(
            1.0, np.minimum(np.minimum(mwp_without_bw, mwp_peak_bw), nf)
        )
        cwp_full = np.where(mi > 0, (mc + cc) / cc, 1.0)
        cwp = np.minimum(cwp_full, nf)
        mpic = np.zeros_like(cc)
        np.divide(cc, mi, out=mpic, where=mi != 0)

        m0 = mi == 0
        m1 = ~m0 & _isclose(mwp, nf) & _isclose(cwp, nf)
        m2 = ~m0 & ~m1 & (cwp >= mwp)
        exec_cycles = np.select(
            [m0, m1, m2],
            [
                cc * nf,
                mc + cc + mpic * (mwp - 1),
                mc * (nf / mwp) + mpic * (mwp - 1),
            ],
            default=mem_l + cc * nf,
        )
        regime = np.select([m0, m1, m2], [2, 0, 1], default=2)
        exec_cycles = np.where(
            self.syncs[idx] != 0.0,
            exec_cycles + self.sync_term[idx],
            exec_cycles,
        )
        cycles = exec_cycles * self.repetitions[idx]
        seconds = cycles / arch.clock_hz + self.model.launch_overhead
        return {
            "seconds": seconds,
            "cycles": cycles,
            "regime": regime,
            "mwp": mwp,
            "cwp": cwp,
            "mem_cycles": mc,
            "comp_cycles": cc,
        }

    # ------------------------------------------------------------------ #
    def error_message(self, i: int) -> str:
        """The exact ValueError text the scalar occupancy raises for row i."""
        arch = self.model.arch
        chars = self.chars[i]
        kind = int(self.err[i])
        if kind == _ERR_BLOCK:
            return (
                f"block size {int(self.block[i])} exceeds "
                f"{arch.max_threads_per_sm} threads/SM on {arch.name}"
            )
        if kind == _ERR_REGS:
            return (
                f"kernel {chars.name!r} needs {int(self._regs_per_block[i])} "
                f"registers per block; SM has {arch.registers_per_sm}"
            )
        if kind == _ERR_SMEM:
            return (
                f"kernel {chars.name!r} needs {int(self.smem[i])}B shared "
                f"memory per block; SM has {arch.shared_mem_per_sm}B"
            )
        limiter = _LIMITERS[int(self.limiter_idx[i])]
        return (
            f"kernel {chars.name!r} cannot fit one block per SM "
            f"(limited by {limiter})"
        )

    def materialize(
        self, idx: np.ndarray, row: dict[str, np.ndarray]
    ) -> list[GpuTimingBreakdown]:
        """Dataclass results for the rows in ``idx`` (order preserved).

        Bulk ``tolist()`` conversion first: it yields native Python
        ints/floats in one C pass, instead of a NumPy-scalar box plus an
        int()/float() unbox per field per row.
        """
        arch = self.model.arch
        max_warps = arch.max_warps_per_sm
        bps = self.blocks_per_sm[idx].tolist()
        wpb = self.warps_per_block[idx].tolist()
        aw = self.active_warps[idx].tolist()
        nw = self.n_warps[idx].tolist()
        rep = self.repetitions[idx].tolist()
        lim = self.limiter_idx[idx].tolist()
        sec = row["seconds"].tolist()
        cyc = row["cycles"].tolist()
        reg = row["regime"].tolist()
        mwp = row["mwp"].tolist()
        cwp = row["cwp"].tolist()
        mc = row["mem_cycles"].tolist()
        cc = row["comp_cycles"].tolist()
        out = []
        # Positional construction (field order per the dataclasses):
        # keyword parsing costs show up at two calls per candidate row.
        for j, i in enumerate(idx.tolist()):
            occ = OccupancyResult(
                bps[j], wpb[j], aw[j], _LIMITERS[lim[j]], max_warps
            )
            out.append(
                GpuTimingBreakdown(
                    self.chars[i].name,
                    sec[j],
                    cyc[j],
                    _REGIMES[reg[j]],
                    mwp[j],
                    cwp[j],
                    nw[j],
                    rep[j],
                    mc[j],
                    cc[j],
                    occ,
                )
            )
        return out


def _isclose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``math.isclose`` (rel_tol=1e-9, abs_tol=0) elementwise."""
    return np.abs(a - b) <= 1e-9 * np.maximum(np.abs(a), np.abs(b))


def lower_bound_seconds(
    model: GpuPerformanceModel, chars_list: list[KernelCharacteristics]
) -> np.ndarray:
    """Per-row lower bounds on projected seconds (NaN for illegal rows)."""
    if not chars_list:
        return np.empty(0, dtype=np.float64)
    batch = _Batch(model, list(chars_list))
    bounds = batch.bound_seconds()
    return np.where(batch.legal, bounds, np.nan)


def score_batch(
    model: GpuPerformanceModel,
    chars_list: list[KernelCharacteristics],
    prune: bool = False,
) -> list[tuple[str, object]]:
    """Score a whole batch; returns one ``(kind, payload)`` per input row.

    - ``("candidate", GpuTimingBreakdown)`` — fully scored, bitwise-equal
      to ``model.breakdown(chars)``;
    - ``("illegal", str)`` — the exact occupancy ``ValueError`` message;
    - ``("pruned", str)`` — only with ``prune=True``: the row's lower
      bound already exceeds a fully-scored incumbent, so it cannot be the
      argmin (the incumbent survives at a better-or-equal time).

    Pruning preserves the argmin *and* its first-minimum tie-break: any
    row whose true time ties the best has ``bound <= time <= incumbent``
    and therefore survives.
    """
    if not chars_list:
        return []
    batch = _Batch(model, list(chars_list))
    legal_idx = np.flatnonzero(batch.legal)

    incumbent = None
    bounds = None
    if prune and len(legal_idx) > 1:
        bounds = batch.bound_seconds()
        seed_pos = int(np.argmin(bounds[legal_idx]))
        seed_row = batch.exec_at(legal_idx[seed_pos : seed_pos + 1])
        incumbent = float(seed_row["seconds"][0])
        survive_idx = legal_idx[bounds[legal_idx] <= incumbent]
    else:
        survive_idx = legal_idx

    row = batch.exec_at(survive_idx)
    breakdowns = batch.materialize(survive_idx, row)
    by_row = dict(zip(survive_idx.tolist(), breakdowns))
    legal = batch.legal.tolist()
    results: list[tuple[str, object]] = []
    for i in range(len(chars_list)):
        if not legal[i]:
            results.append(("illegal", batch.error_message(i)))
        elif i in by_row:
            results.append(("candidate", by_row[i]))
        else:
            results.append(
                (
                    "pruned",
                    f"lower bound {float(bounds[i]) * 1e6:.2f}us exceeds "
                    f"incumbent {incumbent * 1e6:.2f}us",
                )
            )
    return results
