"""Vectorized MWP/CWP scoring of whole characteristic batches.

:func:`score_batch` replays :meth:`GpuPerformanceModel.breakdown` —
occupancy included — over a batch of :class:`KernelCharacteristics` as
NumPy structure-of-arrays math instead of N independent scalar passes;
:func:`score_grid` stacks many such batches (one per sweep point) into a
single ``(configs x points)`` evaluation for the parametric sweep engine.
Every elementwise operation mirrors the scalar model's operation *and
order*, so the resulting ``seconds`` are bitwise-equal to the reference
(IEEE-754 binary64 arithmetic is deterministic; only re-association
could diverge, and nothing here re-associates).

It also derives a cheap **lower bound** on each candidate's time —
``exec_cycles`` can never drop below the raw memory cycles nor below the
pipelined memory/compute floor ``N * mem * comp / (mem + comp)``,
whatever regime the model lands in (see ``docs/EXPLORER.md`` for the
per-regime proof) — which powers the explorer's bound-based pruning:
fully score one promising seed, then skip every candidate whose floor
already exceeds the seed's actual time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.gpu.characteristics import KernelCharacteristics
from repro.gpu.model import GpuPerformanceModel, GpuTimingBreakdown
from repro.gpu.occupancy import OccupancyResult
from repro.obs.trace import span as trace_span

#: Resource names in the scalar occupancy's dict-insertion order; the
#: stacked argmin below reproduces its first-minimum limiter choice.
_LIMITERS = ("threads", "blocks", "warps", "registers", "shared_mem")
_REGIMES = ("balanced", "memory-bound", "compute-bound")
#: The lower bound's proof tolerates the model's ``math.isclose`` slop
#: (1e-9 relative); shave a comfortably larger margin so the bound never
#: edges above the true time through rounding.
_BOUND_SAFETY = 1.0 - 1e-6

_ERR_BLOCK, _ERR_REGS, _ERR_SMEM, _ERR_FIT = 1, 2, 3, 4

#: Interned :class:`OccupancyResult` instances keyed by field values —
#: the scorer would otherwise rebuild the same few dozen results for
#: every row of every batch.  Bounded defensively; real sessions see a
#: handful of entries per architecture.
_OCC_CACHE: dict[tuple, OccupancyResult] = {}
_OCC_CACHE_MAX = 4096


class _Batch:
    """Structure-of-arrays view of a characteristics batch on one model."""

    def __init__(
        self,
        model: GpuPerformanceModel,
        chars_list: list[KernelCharacteristics],
        columns: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.model = model
        self.chars = chars_list
        arch = model.arch
        if columns is not None:
            # Caller-supplied structure-of-arrays view of ``chars_list``
            # (same values the attribute sweep below would read) — the
            # sweep engine tiles the point-invariant fields instead of
            # re-reading them from every row object.
            self.block = columns["block_size"]
            self.regs = columns["registers_per_thread"]
            self.smem = columns["shared_mem_per_block"]
            threads = columns["threads"]
            self.bpa = columns["bytes_per_access"]
            self.mem_insts = columns["mem_insts_per_thread"]
            self.comp_insts = columns["comp_insts_per_thread"]
            self.f_coal = columns["coalesced_fraction"]
            self.syncs = columns["syncs_per_thread"]
        else:
            as_i64 = lambda xs: np.asarray(xs, dtype=np.int64)  # noqa: E731
            as_f64 = lambda xs: np.asarray(xs, dtype=np.float64)  # noqa: E731
            self.block = as_i64([c.block_size for c in chars_list])
            self.regs = as_i64([c.registers_per_thread for c in chars_list])
            self.smem = as_i64([c.shared_mem_per_block for c in chars_list])
            threads = as_i64([c.threads for c in chars_list])
            self.bpa = as_i64([c.bytes_per_access for c in chars_list])
            self.mem_insts = as_f64([c.mem_insts_per_thread for c in chars_list])
            self.comp_insts = as_f64(
                [c.comp_insts_per_thread for c in chars_list]
            )
            self.f_coal = as_f64([c.coalesced_fraction for c in chars_list])
            self.syncs = as_f64([c.syncs_per_thread for c in chars_list])
        # num_blocks = ceil(threads / block_size), replaying the scalar
        # property's float division (cheaper than a property call per row).
        self.nb = np.ceil(threads / self.block).astype(np.int64)
        # --- Occupancy (vectorized repro.gpu.occupancy.occupancy) --------
        self.warps_per_block = -(-self.block // arch.warp_size)
        regs_per_block = self.regs * self.block
        big = np.iinfo(np.int64).max
        limits = np.stack(
            [
                arch.max_threads_per_sm // self.block,
                np.full(len(chars_list), arch.max_blocks_per_sm, np.int64),
                arch.max_warps_per_sm // self.warps_per_block,
                arch.registers_per_sm // np.maximum(regs_per_block, 1),
                np.where(
                    self.smem > 0,
                    arch.shared_mem_per_sm // np.maximum(self.smem, 1),
                    big,
                ),
            ]
        )
        self.limiter_idx = np.argmin(limits, axis=0)
        raw_blocks_per_sm = np.min(limits, axis=0)

        # Error precedence matches the scalar raise order exactly.
        err = np.zeros(len(chars_list), dtype=np.int64)
        err_block = self.block > arch.max_threads_per_sm
        err_regs = ~err_block & (regs_per_block > arch.registers_per_sm)
        err_smem = (
            ~err_block & ~err_regs & (self.smem > arch.shared_mem_per_sm)
        )
        err_fit = (
            ~err_block & ~err_regs & ~err_smem & (raw_blocks_per_sm < 1)
        )
        err[err_block] = _ERR_BLOCK
        err[err_regs] = _ERR_REGS
        err[err_smem] = _ERR_SMEM
        err[err_fit] = _ERR_FIT
        self.err = err
        self.legal = err == 0
        self._regs_per_block = regs_per_block

        cap = np.maximum(
            1, np.ceil(self.nb / arch.num_sms).astype(np.int64)
        )
        # Illegal rows carry dummy occupancy (1 block/SM); their timing
        # arrays are computed but never read.
        self.blocks_per_sm = np.minimum(
            np.where(self.legal, raw_blocks_per_sm, 1), cap
        )
        self.active_warps = self.blocks_per_sm * self.warps_per_block
        self.n_warps = np.maximum(1, self.active_warps)
        self.n_f = self.n_warps.astype(np.float64)

        # --- Cheap timing terms (model.breakdown stage shared with the
        # lower bound) ----------------------------------------------------
        self.f_uncoal = 1.0 - self.f_coal
        uncoal_trans = arch.uncoal_transactions_per_warp
        dep_uncoal = arch.departure_del_uncoal * uncoal_trans
        self.departure_delay = (
            self.f_coal * arch.departure_del_coal + self.f_uncoal * dep_uncoal
        )
        mem_l_uncoal = (
            arch.mem_latency_cycles
            + (uncoal_trans - 1) * arch.departure_del_uncoal
        )
        self.mem_l = (
            self.f_coal * arch.mem_latency_cycles
            + self.f_uncoal * mem_l_uncoal
        )
        self.mem_cycles = self.mem_l * self.mem_insts
        comp_cycles = arch.issue_cycles * (self.comp_insts + self.mem_insts)
        self.comp_cycles = np.maximum(comp_cycles, arch.issue_cycles)
        self.active_sms = np.minimum(arch.num_sms, self.nb)
        self.repetitions = np.maximum(
            1,
            np.ceil(
                self.nb / (self.blocks_per_sm * self.active_sms)
            ).astype(np.int64),
        )
        self.sync_term = (arch.sync_cycles * self.syncs) * self.n_f

    # ------------------------------------------------------------------ #
    def bound_seconds(self) -> np.ndarray:
        """A provable lower bound on each row's projected seconds.

        ``exec_cycles >= max(mem_cycles, N*mem*comp/(mem+comp)) + sync``
        holds in every regime; ``repetitions`` and the launch overhead
        transfer the bound to seconds.  ``_BOUND_SAFETY`` absorbs the
        model's isclose slop and rounding.
        """
        pipelined_floor = (
            self.n_f
            * self.mem_cycles
            * self.comp_cycles
            / (self.mem_cycles + self.comp_cycles)
        )
        bound_cycles = (
            np.maximum(self.mem_cycles, pipelined_floor)
            + np.where(self.syncs != 0.0, self.sync_term, 0.0)
        ) * _BOUND_SAFETY
        return (
            bound_cycles * self.repetitions / self.model.arch.clock_hz
            + self.model.launch_overhead
        )

    def exec_at(self, idx: np.ndarray) -> dict[str, np.ndarray]:
        """Full regime selection + exec cycles for the rows in ``idx``."""
        arch = self.model.arch
        bpa = self.bpa[idx]
        f_coal = self.f_coal[idx]
        f_uncoal = self.f_uncoal[idx]
        mem_l = self.mem_l[idx]
        mi = self.mem_insts[idx]
        mc = self.mem_cycles[idx]
        cc = self.comp_cycles[idx]
        nf = self.n_f[idx]

        payload = bpa * arch.warp_size
        waste = np.maximum(
            1.0, GpuPerformanceModel.MIN_TRANSACTION_BYTES / bpa
        )
        consumed = payload * (f_coal + f_uncoal * waste)
        bw_per_warp = arch.clock_hz * consumed / mem_l
        mwp_peak_bw = arch.mem_bandwidth / (bw_per_warp * self.active_sms[idx])
        mwp_without_bw = mem_l / self.departure_delay[idx]
        mwp = np.maximum(
            1.0, np.minimum(np.minimum(mwp_without_bw, mwp_peak_bw), nf)
        )
        cwp_full = np.where(mi > 0, (mc + cc) / cc, 1.0)
        cwp = np.minimum(cwp_full, nf)
        mpic = np.zeros_like(cc)
        np.divide(cc, mi, out=mpic, where=mi != 0)

        m0 = mi == 0
        m1 = ~m0 & _isclose(mwp, nf) & _isclose(cwp, nf)
        m2 = ~m0 & ~m1 & (cwp >= mwp)
        exec_cycles = np.select(
            [m0, m1, m2],
            [
                cc * nf,
                mc + cc + mpic * (mwp - 1),
                mc * (nf / mwp) + mpic * (mwp - 1),
            ],
            default=mem_l + cc * nf,
        )
        regime = np.select([m0, m1, m2], [2, 0, 1], default=2)
        exec_cycles = np.where(
            self.syncs[idx] != 0.0,
            exec_cycles + self.sync_term[idx],
            exec_cycles,
        )
        cycles = exec_cycles * self.repetitions[idx]
        seconds = cycles / arch.clock_hz + self.model.launch_overhead
        return {
            "seconds": seconds,
            "cycles": cycles,
            "regime": regime,
            "mwp": mwp,
            "cwp": cwp,
            "mem_cycles": mc,
            "comp_cycles": cc,
        }

    # ------------------------------------------------------------------ #
    def error_message(self, i: int) -> str:
        """The exact ValueError text the scalar occupancy raises for row i."""
        arch = self.model.arch
        chars = self.chars[i]
        kind = int(self.err[i])
        if kind == _ERR_BLOCK:
            return (
                f"block size {int(self.block[i])} exceeds "
                f"{arch.max_threads_per_sm} threads/SM on {arch.name}"
            )
        if kind == _ERR_REGS:
            return (
                f"kernel {chars.name!r} needs {int(self._regs_per_block[i])} "
                f"registers per block; SM has {arch.registers_per_sm}"
            )
        if kind == _ERR_SMEM:
            return (
                f"kernel {chars.name!r} needs {int(self.smem[i])}B shared "
                f"memory per block; SM has {arch.shared_mem_per_sm}B"
            )
        limiter = _LIMITERS[int(self.limiter_idx[i])]
        return (
            f"kernel {chars.name!r} cannot fit one block per SM "
            f"(limited by {limiter})"
        )

    def materialize(
        self, idx: np.ndarray, row: dict[str, np.ndarray]
    ) -> list[GpuTimingBreakdown]:
        """Dataclass results for the rows in ``idx`` (order preserved).

        Bulk ``tolist()`` conversion first: it yields native Python
        ints/floats in one C pass, instead of a NumPy-scalar box plus an
        int()/float() unbox per field per row.
        """
        arch = self.model.arch
        max_warps = arch.max_warps_per_sm
        bps = self.blocks_per_sm[idx].tolist()
        wpb = self.warps_per_block[idx].tolist()
        aw = self.active_warps[idx].tolist()
        nw = self.n_warps[idx].tolist()
        rep = self.repetitions[idx].tolist()
        lim = self.limiter_idx[idx].tolist()
        sec = row["seconds"].tolist()
        cyc = row["cycles"].tolist()
        reg = row["regime"].tolist()
        mwp = row["mwp"].tolist()
        cwp = row["cwp"].tolist()
        mc = row["mem_cycles"].tolist()
        cc = row["comp_cycles"].tolist()
        out = []
        # Both result types are frozen dataclasses, so normal construction
        # pays one ``object.__setattr__`` per field; at two objects per
        # candidate row that dominates this loop.  Building the instances
        # via ``__new__`` and filling the field dict directly produces
        # identical objects (the fields carry no validation) much faster.
        chars = self.chars
        names = [chars[i].name for i in idx.tolist()]
        new = object.__new__
        occ_cache = _OCC_CACHE
        for j in range(len(names)):
            # Occupancy repeats heavily across rows (one distinct result
            # per config modulo the block-count cap), so intern instances:
            # they are frozen, and sharing changes nothing observable.
            occ_key = (bps[j], wpb[j], aw[j], lim[j], max_warps)
            occ = occ_cache.get(occ_key)
            if occ is None:
                if len(occ_cache) >= _OCC_CACHE_MAX:  # pragma: no cover
                    occ_cache.clear()
                occ = new(OccupancyResult)
                fields = occ.__dict__
                fields["blocks_per_sm"] = bps[j]
                fields["warps_per_block"] = wpb[j]
                fields["active_warps"] = aw[j]
                fields["limiter"] = _LIMITERS[lim[j]]
                fields["_max_warps"] = max_warps
                occ_cache[occ_key] = occ
            breakdown = new(GpuTimingBreakdown)
            fields = breakdown.__dict__
            fields["kernel"] = names[j]
            fields["seconds"] = sec[j]
            fields["cycles"] = cyc[j]
            fields["regime"] = _REGIMES[reg[j]]
            fields["mwp"] = mwp[j]
            fields["cwp"] = cwp[j]
            fields["active_warps"] = nw[j]
            fields["repetitions"] = rep[j]
            fields["mem_cycles_per_warp"] = mc[j]
            fields["comp_cycles_per_warp"] = cc[j]
            fields["occupancy"] = occ
            out.append(breakdown)
        return out


def _isclose(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``math.isclose`` (rel_tol=1e-9, abs_tol=0) elementwise."""
    return np.abs(a - b) <= 1e-9 * np.maximum(np.abs(a), np.abs(b))


#: The nine structure-of-arrays fields of a candidate grid, in the fixed
#: order the shared-memory streaming protocol lays them out.
COLUMN_FIELDS = (
    ("block_size", np.int64),
    ("registers_per_thread", np.int64),
    ("shared_mem_per_block", np.int64),
    ("threads", np.int64),
    ("bytes_per_access", np.int64),
    ("mem_insts_per_thread", np.float64),
    ("comp_insts_per_thread", np.float64),
    ("coalesced_fraction", np.float64),
    ("syncs_per_thread", np.float64),
)


def columns_from_chars(
    chars_list: list[KernelCharacteristics],
) -> dict[str, np.ndarray]:
    """The structure-of-arrays view :class:`_Batch` builds, as a dict."""
    out: dict[str, np.ndarray] = {}
    for field, dtype in COLUMN_FIELDS:
        out[field] = np.asarray(
            [getattr(c, field) for c in chars_list], dtype=dtype
        )
    return out


class ScoreArena:
    """Reusable per-dtype scratch buffers for the fused scoring pass.

    The fused pass needs ~30 intermediate arrays per chunk; allocating
    them anew for every kernel/chunk is a measurable share of the hot
    path.  The arena hands out named slices of buffers that grow to the
    largest chunk ever seen and are reused verbatim afterwards — zero
    allocations in steady state.

    Views returned by :meth:`take` (and therefore the ``seconds`` array
    :func:`fused_seconds` returns) are INVALIDATED by the next pass that
    uses the same arena: consume or copy them first.  Not thread-safe;
    use one arena per worker.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, count: int, dtype: type) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < count:
            size = max(count, buffer.size * 2 if buffer is not None else count)
            buffer = np.empty(size, dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:count]

    def nbytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())


def fused_seconds(
    model: GpuPerformanceModel,
    columns: dict[str, np.ndarray],
    arena: ScoreArena,
) -> tuple[np.ndarray, int]:
    """Occupancy + MWP/CWP + repetitions fused into one arena pass.

    Scores every row of ``columns`` (the :func:`columns_from_chars`
    structure-of-arrays) and returns ``(seconds, legal_count)`` where
    illegal rows carry ``+inf``.  Every elementwise operation below
    replays the exact expression :class:`_Batch` / :meth:`_Batch.exec_at`
    evaluates, in the same order, with ``out=`` aimed at arena buffers —
    IEEE-754 binary64 arithmetic is deterministic per operation, so legal
    rows are bitwise-equal to the reference model while the pass touches
    no fresh allocations and materializes no dataclasses.

    The returned ``seconds`` is a view into ``arena``; it is overwritten
    by the next pass using the same arena.
    """
    arch = model.arch
    block = columns["block_size"]
    regs = columns["registers_per_thread"]
    smem = columns["shared_mem_per_block"]
    threads = columns["threads"]
    bpa = columns["bytes_per_access"]
    mi = columns["mem_insts_per_thread"]
    ci = columns["comp_insts_per_thread"]
    f_coal = columns["coalesced_fraction"]
    syncs = columns["syncs_per_thread"]
    n = int(block.shape[0])
    if n == 0:
        return arena.take("seconds", 0, np.float64), 0

    ftmp = arena.take("ftmp", n, np.float64)

    # --- Occupancy (mirrors _Batch.__init__) ---------------------------
    # nb = ceil(threads / block) as int64.
    np.divide(threads, block, out=ftmp)
    np.ceil(ftmp, out=ftmp)
    nb = arena.take("nb", n, np.int64)
    np.copyto(nb, ftmp, casting="unsafe")
    # warps_per_block = -(-block // warp_size)
    wpb = arena.take("wpb", n, np.int64)
    np.negative(block, out=wpb)
    np.floor_divide(wpb, arch.warp_size, out=wpb)
    np.negative(wpb, out=wpb)
    rpb = arena.take("rpb", n, np.int64)
    np.multiply(regs, block, out=rpb)
    # Running elementwise min over the five limits (min of ints is exact
    # in any order; the stacked argmin order only matters for messages).
    raw = arena.take("raw", n, np.int64)
    np.floor_divide(arch.max_threads_per_sm, block, out=raw)
    np.minimum(raw, arch.max_blocks_per_sm, out=raw)
    ilim = arena.take("ilim", n, np.int64)
    np.floor_divide(arch.max_warps_per_sm, wpb, out=ilim)
    np.minimum(raw, ilim, out=raw)
    np.maximum(rpb, 1, out=ilim)
    np.floor_divide(arch.registers_per_sm, ilim, out=ilim)
    np.minimum(raw, ilim, out=raw)
    big = np.iinfo(np.int64).max
    np.maximum(smem, 1, out=ilim)
    np.floor_divide(arch.shared_mem_per_sm, ilim, out=ilim)
    btmp = arena.take("btmp", n, np.bool_)
    np.less_equal(smem, 0, out=btmp)
    np.copyto(ilim, big, where=btmp)
    np.minimum(raw, ilim, out=raw)

    legal = arena.take("legal", n, np.bool_)
    np.less_equal(block, arch.max_threads_per_sm, out=legal)
    np.less_equal(rpb, arch.registers_per_sm, out=btmp)
    np.logical_and(legal, btmp, out=legal)
    np.less_equal(smem, arch.shared_mem_per_sm, out=btmp)
    np.logical_and(legal, btmp, out=legal)
    np.greater_equal(raw, 1, out=btmp)
    np.logical_and(legal, btmp, out=legal)

    # blocks_per_sm = min(where(legal, raw, 1), max(1, ceil(nb/num_sms)))
    np.divide(nb, arch.num_sms, out=ftmp)
    np.ceil(ftmp, out=ftmp)
    np.copyto(ilim, ftmp, casting="unsafe")
    np.maximum(ilim, 1, out=ilim)
    bps = arena.take("bps", n, np.int64)
    np.copyto(bps, raw)
    np.logical_not(legal, out=btmp)
    np.copyto(bps, 1, where=btmp)
    np.minimum(bps, ilim, out=bps)
    # n_warps = max(1, blocks_per_sm * warps_per_block); n_f = float64.
    nw = arena.take("nw", n, np.int64)
    np.multiply(bps, wpb, out=nw)
    np.maximum(nw, 1, out=nw)
    nf = arena.take("nf", n, np.float64)
    np.copyto(nf, nw, casting="unsafe")

    # --- Timing terms (mirrors _Batch.__init__) ------------------------
    fu = arena.take("fu", n, np.float64)
    np.subtract(1.0, f_coal, out=fu)
    uncoal_trans = arch.uncoal_transactions_per_warp
    dep_uncoal = arch.departure_del_uncoal * uncoal_trans
    dd = arena.take("dd", n, np.float64)
    np.multiply(f_coal, arch.departure_del_coal, out=dd)
    np.multiply(fu, dep_uncoal, out=ftmp)
    np.add(dd, ftmp, out=dd)
    mem_l_uncoal = (
        arch.mem_latency_cycles + (uncoal_trans - 1) * arch.departure_del_uncoal
    )
    ml = arena.take("ml", n, np.float64)
    np.multiply(f_coal, arch.mem_latency_cycles, out=ml)
    np.multiply(fu, mem_l_uncoal, out=ftmp)
    np.add(ml, ftmp, out=ml)
    mc = arena.take("mc", n, np.float64)
    np.multiply(ml, mi, out=mc)
    cc = arena.take("cc", n, np.float64)
    np.add(ci, mi, out=cc)
    np.multiply(cc, arch.issue_cycles, out=cc)
    np.maximum(cc, arch.issue_cycles, out=cc)
    asms = arena.take("asms", n, np.int64)
    np.minimum(arch.num_sms, nb, out=asms)
    # repetitions = max(1, ceil(nb / (blocks_per_sm * active_sms)))
    np.multiply(bps, asms, out=ilim)
    np.divide(nb, ilim, out=ftmp)
    np.ceil(ftmp, out=ftmp)
    rep = arena.take("rep", n, np.int64)
    np.copyto(rep, ftmp, casting="unsafe")
    np.maximum(rep, 1, out=rep)
    st = arena.take("st", n, np.float64)
    np.multiply(syncs, arch.sync_cycles, out=st)
    np.multiply(st, nf, out=st)

    # --- Regime selection + exec cycles (mirrors _Batch.exec_at) -------
    payload = arena.take("payload", n, np.int64)
    np.multiply(bpa, arch.warp_size, out=payload)
    waste = arena.take("waste", n, np.float64)
    np.divide(GpuPerformanceModel.MIN_TRANSACTION_BYTES, bpa, out=waste)
    np.maximum(waste, 1.0, out=waste)
    cons = arena.take("cons", n, np.float64)
    np.multiply(fu, waste, out=cons)
    np.add(f_coal, cons, out=cons)
    np.multiply(payload, cons, out=cons)
    bw = arena.take("bw", n, np.float64)
    np.multiply(cons, arch.clock_hz, out=bw)
    np.divide(bw, ml, out=bw)
    peak = arena.take("peak", n, np.float64)
    np.multiply(bw, asms, out=peak)
    np.divide(arch.mem_bandwidth, peak, out=peak)
    mwp = arena.take("mwp", n, np.float64)
    np.divide(ml, dd, out=mwp)
    np.minimum(mwp, peak, out=mwp)
    np.minimum(mwp, nf, out=mwp)
    np.maximum(mwp, 1.0, out=mwp)
    cwp = arena.take("cwp", n, np.float64)
    np.add(mc, cc, out=cwp)
    np.divide(cwp, cc, out=cwp)
    np.less_equal(mi, 0, out=btmp)
    np.copyto(cwp, 1.0, where=btmp)
    np.minimum(cwp, nf, out=cwp)
    mpic = arena.take("mpic", n, np.float64)
    np.copyto(mpic, 0.0)
    np.not_equal(mi, 0, out=btmp)
    np.divide(cc, mi, out=mpic, where=btmp)

    m0 = arena.take("m0", n, np.bool_)
    np.equal(mi, 0, out=m0)
    # m1 = ~m0 & isclose(mwp, nf) & isclose(cwp, nf)
    t1 = arena.take("t1", n, np.float64)
    t2 = arena.take("t2", n, np.float64)
    t3 = arena.take("t3", n, np.float64)
    not0 = arena.take("not0", n, np.bool_)
    np.logical_not(m0, out=not0)
    m1 = arena.take("m1", n, np.bool_)
    np.copyto(m1, not0)
    for value in (mwp, cwp):
        np.subtract(value, nf, out=t1)
        np.abs(t1, out=t1)
        np.abs(value, out=t2)
        np.abs(nf, out=t3)
        np.maximum(t2, t3, out=t2)
        np.multiply(t2, 1e-9, out=t2)
        np.less_equal(t1, t2, out=btmp)
        np.logical_and(m1, btmp, out=m1)
    # m2 = ~m0 & ~m1 & (cwp >= mwp)
    m2 = arena.take("m2", n, np.bool_)
    np.logical_not(m1, out=m2)
    np.logical_and(not0, m2, out=m2)
    np.greater_equal(cwp, mwp, out=btmp)
    np.logical_and(m2, btmp, out=m2)

    # The three regime expressions + default, then first-match select
    # (masks are disjoint, so reverse-order overwrite == np.select).
    e0 = arena.take("e0", n, np.float64)
    np.multiply(cc, nf, out=e0)
    np.subtract(mwp, 1.0, out=t1)
    np.multiply(mpic, t1, out=t1)  # mpic * (mwp - 1), shared by m1/m2
    e1 = arena.take("e1", n, np.float64)
    np.add(mc, cc, out=e1)
    np.add(e1, t1, out=e1)
    np.divide(nf, mwp, out=t2)
    np.multiply(mc, t2, out=t2)
    np.add(t2, t1, out=t2)  # mc * (nf / mwp) + mpic * (mwp - 1)
    ex = arena.take("ex", n, np.float64)
    np.add(ml, e0, out=ex)  # default: mem_l + cc * nf
    np.copyto(ex, t2, where=m2)
    np.copyto(ex, e1, where=m1)
    np.copyto(ex, e0, where=m0)
    # exec += sync_term where syncs != 0
    np.add(ex, st, out=t1)
    np.not_equal(syncs, 0.0, out=btmp)
    np.copyto(ex, t1, where=btmp)
    # seconds = exec * repetitions / clock_hz + launch_overhead
    np.multiply(ex, rep, out=ex)
    np.divide(ex, arch.clock_hz, out=ex)
    np.add(ex, model.launch_overhead, out=ex)
    np.logical_not(legal, out=btmp)
    np.copyto(ex, np.inf, where=btmp)
    return ex, int(np.count_nonzero(legal))


def fused_argmin(
    model: GpuPerformanceModel,
    columns: dict[str, np.ndarray],
    arena: ScoreArena,
) -> tuple[int, float, int]:
    """:func:`fused_seconds` reduced to ``(argmin, seconds, legal_count)``.

    ``argmin`` is the first minimum in row order (NumPy's argmin picks
    the first occurrence, matching the explorer's ``min()`` tie-break),
    or ``-1`` with ``seconds = inf`` when no row is legal.  The
    shared-memory streaming workers return exactly this triple — three
    scalars instead of a pickled candidate table.
    """
    seconds, legal_count = fused_seconds(model, columns, arena)
    if legal_count == 0:
        return -1, float("inf"), 0
    best = int(np.argmin(seconds))
    return best, float(seconds[best]), legal_count


def lower_bound_seconds(
    model: GpuPerformanceModel, chars_list: list[KernelCharacteristics]
) -> np.ndarray:
    """Per-row lower bounds on projected seconds (NaN for illegal rows)."""
    if not chars_list:
        return np.empty(0, dtype=np.float64)
    batch = _Batch(model, list(chars_list))
    bounds = batch.bound_seconds()
    return np.where(batch.legal, bounds, np.nan)


def bound_min_grid(
    model: GpuPerformanceModel,
    columns: dict[str, np.ndarray],
    segments: Sequence[tuple[int, int]],
) -> list[float]:
    """Min lower bound over the legal rows of each ``[lo, hi)`` segment.

    Segments with no legal row get ``inf``.  This powers the sweep
    engine's tile pruning: with one segment per sweep point, the result
    is a provable floor under each point's projected kernel time (the
    true time is the min over legal rows of actual seconds, and every
    row's bound is below its actual seconds — see :meth:`_Batch.bound_seconds`).
    """
    rows = int(columns["block_size"].shape[0])
    if rows == 0:
        return [float("inf") for _ in segments]
    # The scorer only touches ``chars_list`` for error messages and
    # materialization, neither of which the bound pass reaches.
    batch = _Batch(model, [None] * rows, columns=columns)  # type: ignore[list-item]
    bounds = batch.bound_seconds()
    legal = batch.legal
    out = []
    for lo, hi in segments:
        segment = bounds[lo:hi][legal[lo:hi]]
        out.append(float(segment.min()) if segment.size else float("inf"))
    return out


def score_batch(
    model: GpuPerformanceModel,
    chars_list: list[KernelCharacteristics],
    prune: bool = False,
) -> list[tuple[str, object]]:
    """Score a whole batch; returns one ``(kind, payload)`` per input row.

    - ``("candidate", GpuTimingBreakdown)`` — fully scored, bitwise-equal
      to ``model.breakdown(chars)``;
    - ``("illegal", str)`` — the exact occupancy ``ValueError`` message;
    - ``("pruned", str)`` — only with ``prune=True``: the row's lower
      bound already exceeds a fully-scored incumbent, so it cannot be the
      argmin (the incumbent survives at a better-or-equal time).

    Pruning preserves the argmin *and* its first-minimum tie-break: any
    row whose true time ties the best has ``bound <= time <= incumbent``
    and therefore survives.
    """
    if not chars_list:
        return []
    return score_grid(model, [chars_list], prune=prune)[0]


def score_grid(
    model: GpuPerformanceModel,
    chars_lists: list[list[KernelCharacteristics]],
    prune: bool = False,
    columns: dict[str, np.ndarray] | None = None,
) -> list[list[tuple[str, object]]]:
    """Score several batches — one per sweep point — as a single SoA pass.

    ``chars_lists`` holds one characteristics list per *segment* (e.g.
    one transformation grid per sweep point of a parametric size sweep);
    the result is one :func:`score_batch`-shaped list per segment.  Every
    occupancy/timing operation in :class:`_Batch` is elementwise, so a
    row's numbers are independent of which other rows share the batch and
    each segment's output is bitwise-equal to scoring it alone.  With
    ``prune=True`` every segment seeds and prunes against its *own*
    incumbent — candidates never prune across sweep points.

    ``columns`` optionally supplies the flattened structure-of-arrays
    view of the rows (one array per characteristics field, in flat row
    order) so the batch skips its per-row attribute sweep; the values
    must equal the rows' own — the sweep engine derives them from the
    rows' point-invariance, tiling the shared fields once.
    """
    flat: list[KernelCharacteristics] = []
    starts = [0]
    for segment in chars_lists:
        flat.extend(segment)
        starts.append(len(flat))
    if not flat:
        return [[] for _ in chars_lists]
    with trace_span(
        "score", rows=len(flat), segments=len(chars_lists), prune=prune
    ):
        return _score_flat(model, chars_lists, flat, starts, prune, columns)


def _score_flat(
    model: GpuPerformanceModel,
    chars_lists: list[list[KernelCharacteristics]],
    flat: list[KernelCharacteristics],
    starts: list[int],
    prune: bool,
    columns: dict[str, np.ndarray] | None,
) -> list[list[tuple[str, object]]]:
    """The SoA scoring pass behind :func:`score_grid` (traced there)."""
    batch = _Batch(model, flat, columns)
    bounds = batch.bound_seconds() if prune else None
    incumbents: dict[int, float] = {}
    survive_parts: list[np.ndarray] = []
    pending_seeds: list[tuple[int, np.ndarray, int]] = []
    for s in range(len(chars_lists)):
        lo, hi = starts[s], starts[s + 1]
        seg_legal = lo + np.flatnonzero(batch.legal[lo:hi])
        if prune and len(seg_legal) > 1:
            seed_pos = int(np.argmin(bounds[seg_legal]))
            pending_seeds.append((s, seg_legal, int(seg_legal[seed_pos])))
            survive_parts.append(seg_legal)  # placeholder, replaced below
        else:
            survive_parts.append(seg_legal)
    if pending_seeds:
        seed_idx = np.asarray([row for _, _, row in pending_seeds])
        seed_seconds = batch.exec_at(seed_idx)["seconds"].tolist()
        for (s, seg_legal, _), incumbent in zip(pending_seeds, seed_seconds):
            incumbents[s] = incumbent
            survive_parts[s] = seg_legal[bounds[seg_legal] <= incumbent]

    survive_idx = (
        np.concatenate(survive_parts)
        if survive_parts
        else np.empty(0, dtype=np.int64)
    )
    row = batch.exec_at(survive_idx)
    breakdowns = batch.materialize(survive_idx, row)
    by_row = dict(zip(survive_idx.tolist(), breakdowns))
    legal = batch.legal.tolist()
    out: list[list[tuple[str, object]]] = []
    for s in range(len(chars_lists)):
        results: list[tuple[str, object]] = []
        for i in range(starts[s], starts[s + 1]):
            if not legal[i]:
                results.append(("illegal", batch.error_message(i)))
            elif i in by_row:
                results.append(("candidate", by_row[i]))
            else:
                results.append(
                    (
                        "pruned",
                        f"lower bound {float(bounds[i]) * 1e6:.2f}us exceeds "
                        f"incumbent {incumbents[s] * 1e6:.2f}us",
                    )
                )
        out.append(results)
    return out
