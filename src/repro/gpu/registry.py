"""First-class architecture registry: named GPU generations by stable id.

The analytical model was calibrated against the paper's testbed GPU
(Quadro FX 5600, G80) plus the two GT200 boards Hong & Kim published
parameters for.  Its real leverage, though, is answering "which GPU +
bus generation first makes this workload worth porting" — the
per-architecture parameter-table approach PPT-GPU scales across
Tesla→Volta.  This module promotes :class:`~repro.gpu.arch.GPUArchitecture`
from three hand-built constructors to a registry of named generations,
each carrying explicit per-arch tables:

* :class:`SmGeometry` — the occupancy-limiting execution resources,
* :class:`MemoryHierarchy` — the DRAM path as seen from an SM,
* :class:`InstructionLatencies` — MWP/CWP issue/departure inputs,

paired with a matching PCIe-generation :class:`~repro.pcie.model.BusModel`
default and addressable by a stable string id with a content fingerprint.

Calibration caveat
------------------
Only the three entries with ``calibrated=True`` carry parameters tied to
published measurements (Hong & Kim ISCA'09 Table 3 and the paper's
Argonne testbed).  The later generations use vendor datasheet geometry
with *nominal* sustained-bandwidth and latency figures (~80% of
theoretical peak, microbenchmark-era latencies); they are intended for
cross-generation what-if trends, not absolute-accuracy claims.  See
docs/ARCHITECTURES.md.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.gpu.arch import (
    GPUArchitecture,
    gtx_280,
    quadro_fx_5600,
    tesla_c1060,
)
from repro.pcie.model import BusModel
from repro.pcie.presets import bus_for_generation
from repro.util.fingerprint import stable_digest


class UnknownArchitectureError(ValueError):
    """An architecture id that is not in the registry.

    Carries the sorted tuple of valid ids so every surface (CLI, daemon
    payloads, sweep axes) can render the same ``{error, field, hint}``
    structured error instead of a traceback.
    """

    def __init__(self, arch_id: object, known: Iterable[str]):
        self.arch_id = arch_id
        self.known = tuple(known)
        super().__init__(
            f"unknown architecture {arch_id!r}; know {list(self.known)}"
        )

    @property
    def hint(self) -> str:
        return "one of: " + ", ".join(self.known)


@dataclass(frozen=True)
class SmGeometry:
    """Per-SM execution geometry: the occupancy-limiting resources."""

    num_sms: int
    clock_ghz: float  # shader (SP) clock
    warp_size: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_warps_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int  # bytes


@dataclass(frozen=True)
class MemoryHierarchy:
    """The DRAM path as seen from an SM.

    ``sustained_bandwidth`` is what the MWP peak-bandwidth bound uses —
    the theoretical peak is unreachable by any kernel, so feeding it to
    the model would make the bound meaningless.
    """

    dram: str  # memory technology, e.g. "GDDR3"
    theoretical_bandwidth: float  # vendor peak, bytes/s
    sustained_bandwidth: float  # model input, bytes/s
    mem_latency_cycles: float  # DRAM round-trip in SP cycles
    l2_bytes: int  # unified L2 size; 0 = texture-only caching (pre-Fermi)
    coalesced_bytes_per_warp: int
    uncoal_transactions_per_warp: int
    strict_coalescing: bool  # compute-1.0 rules: misalignment serializes


@dataclass(frozen=True)
class InstructionLatencies:
    """Issue/departure latencies in SP cycles (MWP/CWP model inputs)."""

    issue_cycles: float
    departure_del_coal: float
    departure_del_uncoal: float
    sync_cycles: float


@dataclass(frozen=True)
class ArchSpec:
    """A registered architecture generation: tables + pairing metadata."""

    id: str
    display_name: str
    generation: str  # e.g. "Tesla (G80)", "Fermi"
    chip: str  # e.g. "G80", "GK110"
    compute_capability: str
    year: int
    pcie_gen: int  # paired BusModel default generation
    calibrated: bool  # parameters tied to published measurements?
    geometry: SmGeometry
    memory: MemoryHierarchy
    latencies: InstructionLatencies
    notes: str = ""

    def architecture(self) -> GPUArchitecture:
        """Assemble the model-facing machine description from the tables."""
        return GPUArchitecture(
            name=self.display_name,
            num_sms=self.geometry.num_sms,
            clock_ghz=self.geometry.clock_ghz,
            warp_size=self.geometry.warp_size,
            max_threads_per_sm=self.geometry.max_threads_per_sm,
            max_blocks_per_sm=self.geometry.max_blocks_per_sm,
            max_warps_per_sm=self.geometry.max_warps_per_sm,
            registers_per_sm=self.geometry.registers_per_sm,
            shared_mem_per_sm=self.geometry.shared_mem_per_sm,
            mem_bandwidth=self.memory.sustained_bandwidth,
            mem_latency_cycles=self.memory.mem_latency_cycles,
            departure_del_coal=self.latencies.departure_del_coal,
            departure_del_uncoal=self.latencies.departure_del_uncoal,
            issue_cycles=self.latencies.issue_cycles,
            coalesced_bytes_per_warp=self.memory.coalesced_bytes_per_warp,
            uncoal_transactions_per_warp=(
                self.memory.uncoal_transactions_per_warp
            ),
            sync_cycles=self.latencies.sync_cycles,
            strict_coalescing=self.memory.strict_coalescing,
        )

    def bus(self) -> BusModel:
        """The paired PCIe-generation bus default for this board class."""
        return bus_for_generation(self.pcie_gen)

    def fingerprint(self) -> str:
        """Content hash over the tables, the metadata, and the assembled
        machine description — any parameter or pairing change drifts it."""
        return stable_digest(
            {
                "spec": dataclasses.asdict(self),
                "arch": self.architecture().fingerprint(),
            }
        )


#: Capabilities the registry guarantees non-decreasing in registration
#: (chronological) order.  Shared-memory per SM is deliberately absent:
#: Maxwell (96 KiB) exceeds Pascal GP100 (64 KiB).
MONOTONE_CAPABILITIES: tuple[str, ...] = (
    "year",
    "pcie_gen",
    "max_threads_per_sm",
    "max_blocks_per_sm",
    "max_warps_per_sm",
    "registers_per_sm",
    "theoretical_bandwidth",
    "sustained_bandwidth",
)


def capability(spec: ArchSpec, name: str) -> float:
    """Look a capability up across the spec's nested tables."""
    for table in (spec, spec.geometry, spec.memory, spec.latencies):
        if hasattr(table, name):
            return getattr(table, name)
    raise AttributeError(f"no capability {name!r} on {spec.id}")


_REGISTRY: dict[str, ArchSpec] = {}
_ARCH_CACHE: dict[str, GPUArchitecture] = {}


def register(spec: ArchSpec) -> ArchSpec:
    """Add a spec to the registry (ids are unique and stable)."""
    if spec.id in _REGISTRY:
        raise ValueError(f"duplicate architecture id {spec.id!r}")
    _REGISTRY[spec.id] = spec
    return spec


def arch_ids() -> tuple[str, ...]:
    """Registered ids in registration (chronological) order."""
    return tuple(_REGISTRY)


def all_specs() -> tuple[ArchSpec, ...]:
    return tuple(_REGISTRY.values())


def get_spec(arch_id: str) -> ArchSpec:
    try:
        return _REGISTRY[arch_id]
    except KeyError:
        raise UnknownArchitectureError(arch_id, arch_ids()) from None


def get_arch(arch_id: str) -> GPUArchitecture:
    """The assembled machine description for a registry id (cached, so
    repeat lookups return the identical object and model caches keyed on
    identity stay warm)."""
    if arch_id not in _ARCH_CACHE:
        _ARCH_CACHE[arch_id] = get_spec(arch_id).architecture()
    return _ARCH_CACHE[arch_id]


def get_bus(arch_id: str) -> BusModel:
    return get_spec(arch_id).bus()


def resolve_arch(
    value: "str | ArchSpec | GPUArchitecture",
) -> GPUArchitecture:
    """Coerce a registry id, spec, or explicit architecture to the
    machine description the model consumes."""
    if isinstance(value, GPUArchitecture):
        return value
    if isinstance(value, ArchSpec):
        return get_arch(value.id) if value.id in _REGISTRY else (
            value.architecture()
        )
    return get_arch(value)


def spec_for_arch(arch: GPUArchitecture) -> "ArchSpec | None":
    """The registered spec whose assembled arch matches, if any."""
    for spec in _REGISTRY.values():
        if get_arch(spec.id) == arch:
            return spec
    return None


def _spec_from_factory(
    factory: Callable[[], GPUArchitecture],
    *,
    id: str,
    generation: str,
    chip: str,
    compute_capability: str,
    year: int,
    pcie_gen: int,
    dram: str,
    theoretical_bandwidth: float,
    l2_bytes: int,
    notes: str = "",
) -> ArchSpec:
    """Derive a spec from one of the calibrated hand-built constructors.

    The tables are read off the constructed architecture, so
    ``spec.architecture()`` reassembles a value-identical (and therefore
    fingerprint-identical) machine description — the golden tests pin
    this byte-for-byte.
    """
    arch = factory()
    return ArchSpec(
        id=id,
        display_name=arch.name,
        generation=generation,
        chip=chip,
        compute_capability=compute_capability,
        year=year,
        pcie_gen=pcie_gen,
        calibrated=True,
        geometry=SmGeometry(
            num_sms=arch.num_sms,
            clock_ghz=arch.clock_ghz,
            warp_size=arch.warp_size,
            max_threads_per_sm=arch.max_threads_per_sm,
            max_blocks_per_sm=arch.max_blocks_per_sm,
            max_warps_per_sm=arch.max_warps_per_sm,
            registers_per_sm=arch.registers_per_sm,
            shared_mem_per_sm=arch.shared_mem_per_sm,
        ),
        memory=MemoryHierarchy(
            dram=dram,
            theoretical_bandwidth=theoretical_bandwidth,
            sustained_bandwidth=arch.mem_bandwidth,
            mem_latency_cycles=arch.mem_latency_cycles,
            l2_bytes=l2_bytes,
            coalesced_bytes_per_warp=arch.coalesced_bytes_per_warp,
            uncoal_transactions_per_warp=arch.uncoal_transactions_per_warp,
            strict_coalescing=arch.strict_coalescing,
        ),
        latencies=InstructionLatencies(
            issue_cycles=arch.issue_cycles,
            departure_del_coal=arch.departure_del_coal,
            departure_del_uncoal=arch.departure_del_uncoal,
            sync_cycles=arch.sync_cycles,
        ),
        notes=notes,
    )


# --------------------------------------------------------------------------
# The fleet, in chronological order.  The first three are the calibrated
# paper-era boards; the rest are datasheet-geometry generations with
# nominal memory figures (see the module docstring's calibration caveat).
# --------------------------------------------------------------------------

register(
    _spec_from_factory(
        quadro_fx_5600,
        id="quadro_fx_5600",
        generation="Tesla (G80)",
        chip="G80",
        compute_capability="1.0",
        year=2007,
        pcie_gen=1,
        dram="GDDR3",
        theoretical_bandwidth=76.8e9,
        l2_bytes=0,
        notes=(
            "The paper's Argonne testbed GPU; Hong & Kim ISCA'09 Table 3 "
            "parameters, PCIe v1 board."
        ),
    )
)

register(
    _spec_from_factory(
        tesla_c1060,
        id="tesla_c1060",
        generation="Tesla (GT200)",
        chip="GT200",
        compute_capability="1.3",
        year=2008,
        pcie_gen=2,
        dram="GDDR3",
        theoretical_bandwidth=102.0e9,
        l2_bytes=0,
        notes="The HPC board of the era; relaxed coalescing.",
    )
)

register(
    _spec_from_factory(
        gtx_280,
        id="gtx_280",
        generation="Tesla (GT200)",
        chip="GT200",
        compute_capability="1.3",
        year=2008,
        pcie_gen=2,
        dram="GDDR3",
        theoretical_bandwidth=141.7e9,
        l2_bytes=0,
        notes="GT200 consumer flagship; Hong & Kim's second testbed class.",
    )
)

register(
    ArchSpec(
        id="fermi_gtx_480",
        display_name="GeForce GTX 480",
        generation="Fermi",
        chip="GF100",
        compute_capability="2.0",
        year=2010,
        pcie_gen=2,
        calibrated=False,
        geometry=SmGeometry(
            num_sms=15,
            clock_ghz=1.401,
            warp_size=32,
            max_threads_per_sm=1536,
            max_blocks_per_sm=8,
            max_warps_per_sm=48,
            registers_per_sm=32768,
            shared_mem_per_sm=48 * 1024,
        ),
        memory=MemoryHierarchy(
            dram="GDDR5",
            theoretical_bandwidth=177.4e9,
            sustained_bandwidth=142.0e9,
            mem_latency_cycles=440.0,
            l2_bytes=768 * 1024,
            coalesced_bytes_per_warp=128,
            uncoal_transactions_per_warp=32,
            strict_coalescing=False,
        ),
        latencies=InstructionLatencies(
            issue_cycles=2.0,  # two 16-wide pipelines per SM
            departure_del_coal=4.0,
            departure_del_uncoal=40.0,
            sync_cycles=20.0,
        ),
        notes="First unified-L2 generation; nominal sustained figures.",
    )
)

register(
    ArchSpec(
        id="kepler_k20",
        display_name="Tesla K20",
        generation="Kepler",
        chip="GK110",
        compute_capability="3.5",
        year=2012,
        pcie_gen=2,
        calibrated=False,
        geometry=SmGeometry(
            num_sms=13,
            clock_ghz=0.706,
            warp_size=32,
            max_threads_per_sm=2048,
            max_blocks_per_sm=16,
            max_warps_per_sm=64,
            registers_per_sm=65536,
            shared_mem_per_sm=48 * 1024,
        ),
        memory=MemoryHierarchy(
            dram="GDDR5",
            theoretical_bandwidth=208.0e9,
            sustained_bandwidth=166.0e9,
            mem_latency_cycles=380.0,
            l2_bytes=1280 * 1024,
            coalesced_bytes_per_warp=128,
            uncoal_transactions_per_warp=32,
            strict_coalescing=False,
        ),
        latencies=InstructionLatencies(
            issue_cycles=1.0,  # warp-wide schedulers
            departure_del_coal=4.0,
            departure_del_uncoal=40.0,
            sync_cycles=16.0,
        ),
        notes="SMX-era HPC board (PCIe gen2); nominal sustained figures.",
    )
)

register(
    ArchSpec(
        id="maxwell_gtx_980",
        display_name="GeForce GTX 980",
        generation="Maxwell",
        chip="GM204",
        compute_capability="5.2",
        year=2014,
        pcie_gen=3,
        calibrated=False,
        geometry=SmGeometry(
            num_sms=16,
            clock_ghz=1.126,
            warp_size=32,
            max_threads_per_sm=2048,
            max_blocks_per_sm=32,
            max_warps_per_sm=64,
            registers_per_sm=65536,
            shared_mem_per_sm=96 * 1024,
        ),
        memory=MemoryHierarchy(
            dram="GDDR5",
            theoretical_bandwidth=224.0e9,
            sustained_bandwidth=179.0e9,
            mem_latency_cycles=368.0,
            l2_bytes=2048 * 1024,
            coalesced_bytes_per_warp=128,
            uncoal_transactions_per_warp=32,
            strict_coalescing=False,
        ),
        latencies=InstructionLatencies(
            issue_cycles=1.0,
            departure_del_coal=4.0,
            departure_del_uncoal=40.0,
            sync_cycles=16.0,
        ),
        notes="SMM generation; nominal sustained figures.",
    )
)

register(
    ArchSpec(
        id="pascal_p100",
        display_name="Tesla P100",
        generation="Pascal",
        chip="GP100",
        compute_capability="6.0",
        year=2016,
        pcie_gen=3,
        calibrated=False,
        geometry=SmGeometry(
            num_sms=56,
            clock_ghz=1.328,
            warp_size=32,
            max_threads_per_sm=2048,
            max_blocks_per_sm=32,
            max_warps_per_sm=64,
            registers_per_sm=65536,
            shared_mem_per_sm=64 * 1024,
        ),
        memory=MemoryHierarchy(
            dram="HBM2",
            theoretical_bandwidth=732.0e9,
            sustained_bandwidth=585.0e9,
            mem_latency_cycles=404.0,
            l2_bytes=4096 * 1024,
            coalesced_bytes_per_warp=128,
            uncoal_transactions_per_warp=32,
            strict_coalescing=False,
        ),
        latencies=InstructionLatencies(
            issue_cycles=1.0,
            departure_del_coal=4.0,
            departure_del_uncoal=40.0,
            sync_cycles=16.0,
        ),
        notes="HBM2 stacked-memory generation; nominal sustained figures.",
    )
)
