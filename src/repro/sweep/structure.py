"""Structural certificates shared across the points of one sweep.

Two kinds of per-sweep precompute live here:

- **kernel analyses** (:func:`shared_kernel_analyses`): certify that
  every point's :class:`~repro.transform.analysis.KernelAnalysis` is
  identical except for the exposed work-item count, so one analysis (and
  its cached per-config tails) can serve all points through
  :meth:`~repro.transform.analysis.KernelAnalysis.characteristics_at`;
- **transfer-plan templates** (:class:`PlanTemplate`): fit the exact
  anchor-point plans as affine functions of the size parameter, so
  non-anchor points skip the BRS walk entirely.

Every certificate is checked, never assumed; a failed check returns
``None`` and the engine runs the exact per-point pipeline instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datausage.transfers import Direction, Transfer, TransferPlan
from repro.skeleton.program import ProgramSkeleton
from repro.sweep.parametric import AffineInt, fit_affine
from repro.transform.analysis import KernelAnalysis, analyze_kernel


def shared_kernel_analyses(
    programs: Sequence[ProgramSkeleton],
    strict_coalescing: bool,
    anchors: Sequence[int],
) -> list[tuple[KernelAnalysis, list[int]]] | None:
    """One shared analysis + per-point work-item counts per kernel.

    Returns, for each kernel position, ``(analysis, parallel_iterations
    per point)`` where ``analysis`` is built at the first anchor point
    and certified — by :meth:`KernelAnalysis.signature` equality at
    every anchor — to produce bitwise-identical characteristics across
    the sweep; the per-point work-item counts are read straight off each
    point's skeleton.  Returns ``None`` — no sharing, caller falls back
    — when the anchors disagree on kernel structure or any anchor
    analysis fails to build (the per-point path must surface that error
    itself).

    Non-anchor points contribute only their kernel names and parallel
    trip counts to the certificate; a sweep whose *config-independent*
    kernel structure changes strictly between anchors would be
    mis-shared.  That is the same trust boundary as the transfer-plan
    template (see ``docs/SWEEP.md``) and what ``check=True`` exists
    to audit.
    """
    first = programs[0]
    names = tuple(k.name for k in first.kernels)
    for program in programs[1:]:
        if tuple(k.name for k in program.kernels) != names:
            return None
    shared: list[tuple[KernelAnalysis, list[int]]] = []
    for position in range(len(names)):
        analyses = []
        for index in anchors:
            try:
                analyses.append(
                    analyze_kernel(
                        programs[index].kernels[position],
                        programs[index].array_map,
                        strict_coalescing,
                    )
                )
            except ValueError:
                return None
        signature = analyses[0].signature()
        if any(a.signature() != signature for a in analyses[1:]):
            return None
        shared.append(
            (
                analyses[0],
                [
                    program.kernels[position].parallel_iterations
                    for program in programs
                ],
            )
        )
    return shared


@dataclass(frozen=True)
class _TransferShape:
    """The size-independent part of one transfer slot."""

    array: str
    direction: Direction
    bytes_per_element: int
    conservative: bool
    elements: AffineInt


@dataclass(frozen=True)
class PlanTemplate:
    """A transfer plan as a function of the sweep's size parameter.

    Built by :func:`fit_plan_template` from the exact plans of the
    anchor points; :meth:`instantiate` evaluates it at any size.  The
    template interpolates the anchors exactly — instantiating at an
    anchor size reproduces that anchor's plan field-for-field.
    """

    shapes: tuple[_TransferShape, ...]

    def instantiate(self, program: str, size: int) -> TransferPlan | None:
        """The plan at ``size``, or ``None`` where the fit breaks down
        (a fractional or non-positive element count)."""
        transfers = []
        for shape in self.shapes:
            elements = shape.elements.try_eval(size)
            if elements is None or elements <= 0:
                return None
            transfers.append(
                Transfer(
                    shape.array,
                    shape.direction,
                    elements * shape.bytes_per_element,
                    elements,
                    shape.conservative,
                )
            )
        return TransferPlan(program, tuple(transfers))


def fit_plan_template(
    sizes: Sequence[int], plans: Sequence[TransferPlan]
) -> PlanTemplate | None:
    """Fit anchor plans to a template, or ``None`` if they disagree.

    The anchors must share the transfer sequence — same arrays, same
    directions, same conservatism, same per-element byte width — with
    element counts that fit one affine function of the size each.
    """
    first = plans[0]
    shapes: list[_TransferShape] = []
    for slot, transfer in enumerate(first.transfers):
        counts = []
        for plan in plans:
            if len(plan.transfers) != len(first.transfers):
                return None
            other = plan.transfers[slot]
            if (
                other.array != transfer.array
                or other.direction is not transfer.direction
                or other.conservative != transfer.conservative
                or other.bytes * transfer.elements
                != transfer.bytes * other.elements
            ):
                return None
            counts.append(other.elements)
        if transfer.bytes % transfer.elements != 0:
            return None
        elements = fit_affine(list(sizes), counts)
        if elements is None:
            return None
        shapes.append(
            _TransferShape(
                transfer.array,
                transfer.direction,
                transfer.bytes // transfer.elements,
                transfer.conservative,
                elements,
            )
        )
    return PlanTemplate(tuple(shapes))
