"""Exact affine fits over integer sweep axes.

The sweep engine models per-point integer quantities (transfer element
counts, loop trip counts) as affine functions of the sweep's size
parameter.  Fits are exact — :class:`fractions.Fraction` arithmetic, and
a candidate line is only accepted when *every* supplied sample lies on
it — so evaluating the fit at a sample point reproduces the sample
bit-for-bit, and evaluation at a new point either yields an exact
integer or reports that the model does not apply there (the engine then
falls back to the exact per-point pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence


@dataclass(frozen=True)
class AffineInt:
    """``y = slope * x + intercept`` with exact rational coefficients."""

    slope: Fraction
    intercept: Fraction

    @property
    def is_constant(self) -> bool:
        return self.slope == 0

    def try_eval(self, x: int) -> int | None:
        """The value at ``x`` as an exact integer, or ``None``.

        ``None`` means the line passes between integers at this ``x``
        (e.g. slope 1/2 at odd ``x``) — the affine model cannot describe
        an integer quantity there, so the caller must fall back.
        """
        value = self.slope * x + self.intercept
        if value.denominator != 1:
            return None
        return int(value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.slope}*x + {self.intercept}"


def fit_affine(
    xs: Sequence[int], ys: Sequence[int]
) -> AffineInt | None:
    """Fit ``ys = f(xs)`` exactly, or ``None`` if no single line works.

    Requires at least one sample; a single sample (or all-equal ``ys``
    over distinct ``xs``) fits as a constant.  Duplicate ``xs`` with
    conflicting ``ys`` — or any sample off the candidate line — reject
    the fit.  A successful fit interpolates every sample exactly; it
    says nothing about points *between* samples, which is why the sweep
    engine anchors fits on actual sweep points and offers an oracle
    check mode (``docs/SWEEP.md``).
    """
    if len(xs) != len(ys):
        raise ValueError(
            f"mismatched sample lengths: {len(xs)} xs vs {len(ys)} ys"
        )
    if not xs:
        raise ValueError("cannot fit an affine function to no samples")
    base_x, base_y = xs[0], ys[0]
    slope: Fraction | None = None
    for x, y in zip(xs[1:], ys[1:]):
        if x == base_x:
            if y != base_y:
                return None
            continue
        candidate = Fraction(y - base_y, x - base_x)
        if slope is None:
            slope = candidate
        elif candidate != slope:
            return None
    if slope is None:
        slope = Fraction(0)
    intercept = base_y - slope * base_x
    fit = AffineInt(slope, intercept)
    # Collinearity of the first pair only constrains two points; verify
    # every sample (three anchors make a quadratic fail here).
    for x, y in zip(xs, ys):
        if fit.try_eval(x) != y:
            return None
    return fit
