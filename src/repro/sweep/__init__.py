"""Parametric sweep engine: analyze once, evaluate every point.

A parameter sweep (speedup vs data size, what-if bus studies, the
figure harness) re-runs the full GROPHECY++ pipeline per point even
though most of the work — the transformation-space walk, the BRS
transfer analysis — has the same *structure* at every point and only a
few numbers change.  :class:`~repro.sweep.engine.SweepEngine` certifies
that structural sharing per sweep (exactly, falling back to the
per-point pipeline whenever a certificate fails) and then evaluates all
points in one vectorized pass per kernel.  Results are numerically
identical to projecting each point individually; see ``docs/SWEEP.md``.
"""

from repro.sweep.engine import (
    ArchArgmin,
    ArchSweepPoint,
    ArchSweepRow,
    BusSweepPoint,
    SweepEngine,
)
from repro.sweep.parametric import AffineInt, fit_affine
from repro.sweep.structure import PlanTemplate, fit_plan_template

__all__ = [
    "AffineInt",
    "ArchArgmin",
    "ArchSweepPoint",
    "ArchSweepRow",
    "BusSweepPoint",
    "PlanTemplate",
    "SweepEngine",
    "fit_affine",
    "fit_plan_template",
]
