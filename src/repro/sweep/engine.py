"""The sweep engine: one structural precompute, cheap per-point evaluation.

:class:`SweepEngine` projects a whole parameter sweep — the same
application skeleton instantiated at many dataset sizes — in one pass:

1. **Certify sharing** (:mod:`repro.sweep.structure`): every point's
   kernel analyses must be identical except for the exposed work-item
   count; the anchor points' transfer plans must fit one affine template
   over the size axis.
2. **Evaluate**: the transformation grid of *all* points scores as a
   single :func:`~repro.gpu.vectorized.score_grid` NumPy pass per
   kernel; non-anchor transfer plans come from the template.

Every certificate failure degrades gracefully to the exact per-point
pipeline (never to a wrong answer), and both paths produce identical
:class:`~repro.core.prediction.Projection` objects — the equivalence
tests in ``tests/sweep/`` compare them with dataclass equality, and
``check=True`` runs that comparison inline as an oracle.  See
``docs/SWEEP.md`` for the design and the exactness argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.prediction import Projection
from repro.datausage.analyzer import analyze_transfers
from repro.datausage.hints import AnalysisHints
from repro.datausage.transfers import TransferPlan
from repro.gpu.arch import GPUArchitecture
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.registry import ArchSpec, get_arch, get_spec, spec_for_arch
from repro.gpu.vectorized import bound_min_grid, score_grid
from repro.obs.trace import span as trace_span
from repro.pcie.model import BusModel
from repro.skeleton.program import ProgramSkeleton
from repro.sweep.structure import fit_plan_template, shared_kernel_analyses
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    ProgramProjection,
    project_program,
)
from repro.transform.space import TransformationSpace
from repro.workloads.base import Dataset, Workload

#: Exact plans are computed at up to this many anchor points (smallest,
#: median, largest size); the affine template must interpolate all of
#: them, so a quadratic element count (e.g. an n x n grid swept over n)
#: is detected and sent down the exact path.
MAX_PLAN_ANCHORS = 3

#: The point-invariant characteristics fields, tiled across points by
#: :func:`_grid_columns`; ``threads`` and ``block_size`` (derived from
#: the per-point work-item count) are read per row instead.
_TILED_FIELDS = (
    ("registers_per_thread", np.int64),
    ("shared_mem_per_block", np.int64),
    ("bytes_per_access", np.int64),
    ("mem_insts_per_thread", np.float64),
    ("comp_insts_per_thread", np.float64),
    ("coalesced_fraction", np.float64),
    ("syncs_per_thread", np.float64),
)


def _grid_columns(grids: list[list]) -> dict[str, np.ndarray]:
    """Structure-of-arrays view of a full characteristics grid.

    Exploits the sweep's sharing certificate: every row of ``grids``
    holds the same per-config objects modulo ``threads`` and the block
    floor ``block_size`` depends on, so the other fields are read from
    the first point only and tiled — the scorer sees exactly the values
    it would have read from each row object.
    """
    points = len(grids)
    first = grids[0]
    columns = {
        name: np.tile(
            np.asarray([getattr(c, name) for c in first], dtype), points
        )
        for name, dtype in _TILED_FIELDS
    }
    flat = [c for row in grids for c in row]
    columns["threads"] = np.asarray(
        [c.threads for c in flat], dtype=np.int64
    )
    columns["block_size"] = np.asarray(
        [c.block_size for c in flat], dtype=np.int64
    )
    return columns


@dataclass(frozen=True)
class SweepArgmin:
    """The best point of a sweep, found without scoring every point.

    ``bounds`` holds the per-point provable lower bounds that drove the
    tile pruning (``None`` when the sharing certificate failed and every
    point was evaluated); ``evaluated`` lists the point indices that were
    fully projected — every other point was skipped because its whole
    tile's bound exceeded the incumbent.
    """

    #: Position of the winning point in the sweep's point order.
    index: int
    projection: Projection
    #: ``projection.total_seconds(1)`` — the quantity minimized.
    seconds: float
    bounds: tuple[float, ...] | None
    evaluated: tuple[int, ...]
    stats: dict[str, int]


@dataclass(frozen=True)
class ArchSweepPoint:
    """One architecture of a cross-generation what-if, with its bus.

    ``arch_id`` is the registry id when the axis entry resolved through
    :mod:`repro.gpu.registry` (``None`` for a hand-built architecture
    passed directly); ``bus`` is whatever the axis priced transfers on —
    the engine's bus by default, the registry-paired PCIe default with
    ``buses="paired"``.
    """

    arch_id: str | None
    arch: GPUArchitecture
    bus: BusModel
    projection: Projection

    @property
    def seconds(self) -> float:
        """``projection.total_seconds(1)`` — the quantity compared."""
        return self.projection.total_seconds(1)


@dataclass(frozen=True)
class ArchSweepRow:
    """One architecture's row of an arch x dataset grid sweep."""

    arch_id: str | None
    arch: GPUArchitecture
    bus: BusModel
    projections: tuple[Projection, ...]


@dataclass(frozen=True)
class ArchArgmin:
    """The winning architecture of a fleet sweep (first minimum)."""

    index: int
    point: ArchSweepPoint
    seconds: float
    stats: dict[str, int]


@dataclass(frozen=True)
class BusSweepPoint:
    """One bus of a what-if sweep priced against a fixed transfer plan."""

    bus: BusModel
    transfer_seconds: float
    per_transfer_seconds: tuple[float, ...]


class SweepEngine:
    """Projects parameter sweeps; point-for-point equal to the projector.

    Construction mirrors :class:`~repro.core.projector.GrophecyPlusPlus`
    (same architecture/bus/space/batched-transfers knobs, fast-path
    exploration with optional pruning); ``stats`` exposes how the last
    sweep was served (how many points rode the shared structure vs the
    exact fallback).
    """

    def __init__(
        self,
        gpu: GPUArchitecture | GpuPerformanceModel,
        bus: BusModel,
        space: TransformationSpace | None = None,
        batched_transfers: bool = False,
        prune: bool = False,
    ) -> None:
        self._model = (
            gpu
            if isinstance(gpu, GpuPerformanceModel)
            else GpuPerformanceModel(gpu)
        )
        self._bus = bus
        self._space = space or TransformationSpace.default()
        self._batched = batched_transfers
        self._prune = prune
        self.stats: dict[str, int] = {}

    @property
    def model(self) -> GpuPerformanceModel:
        return self._model

    @property
    def bus(self) -> BusModel:
        return self._bus

    # Public sweeps ---------------------------------------------------------
    def sweep_workload(
        self,
        workload: Workload,
        datasets: Sequence[Dataset] | None = None,
        check: bool = False,
    ) -> list[Projection]:
        """Project every dataset of a workload, in dataset order."""
        points = list(datasets) if datasets is not None else list(
            workload.datasets()
        )
        return self.sweep(
            [workload.skeleton(d) for d in points],
            hints=[workload.hints(d) for d in points],
            sizes=[d.size for d in points],
            check=check,
        )

    def sweep(
        self,
        programs: Sequence[ProgramSkeleton],
        hints: Sequence[AnalysisHints | None] | None = None,
        sizes: Sequence[int] | None = None,
        check: bool = False,
    ) -> list[Projection]:
        """Project every program, in input order.

        ``sizes`` is the sweep's numeric axis (one value per program);
        without it transfer plans are computed exactly at every point
        (only kernel scoring is shared).  ``check=True`` additionally
        projects every point through the per-point pipeline and raises
        ``AssertionError`` on any mismatch — the oracle mode the
        equivalence tests and the CLI's ``sweep --check`` use.
        """
        programs = list(programs)
        if not programs:
            return []
        hints_list = (
            list(hints) if hints is not None else [None] * len(programs)
        )
        if len(hints_list) != len(programs):
            raise ValueError(
                f"hints do not match programs: {len(hints_list)} vs "
                f"{len(programs)}"
            )
        if sizes is not None and len(sizes) != len(programs):
            raise ValueError(
                f"sizes do not match programs: {len(sizes)} vs "
                f"{len(programs)}"
            )

        with trace_span(
            "sweep", category="sweep", points=len(programs)
        ) as root:
            anchors = self._anchor_indices(len(programs), sizes)
            kernels = self._sweep_kernels(programs, anchors)
            with trace_span(
                "transfer-planning", category="sweep", points=len(programs)
            ):
                plans, template_points = self._sweep_plans(
                    programs, hints_list, sizes, anchors
                )
            self.stats = {
                "points": len(programs),
                "kernels_shared": int(kernels is not None),
                "plans_from_template": template_points,
                "plans_exact": len(programs) - template_points,
            }
            root.set(
                kernels_shared=bool(kernels is not None),
                plans_from_template=template_points,
            )

            projections: list[Projection] = []
            with trace_span(
                "integrate", category="sweep", points=len(programs)
            ):
                for index, program in enumerate(programs):
                    kernel_projection = (
                        kernels[index]
                        if kernels is not None
                        else project_program(
                            program,
                            self._model,
                            self._space,
                            prune=self._prune,
                        )
                    )
                    plan = plans[index]
                    if plan is None:
                        plan = self._exact_plan(program, hints_list[index])
                    per_transfer = tuple(
                        self._bus.predict_plan_by_transfer(plan)
                    )
                    projections.append(
                        Projection(
                            program=program.name,
                            kernel_seconds=kernel_projection.seconds,
                            transfer_seconds=sum(per_transfer),
                            plan=plan,
                            per_transfer_seconds=per_transfer,
                            kernels=kernel_projection,
                        )
                    )
        if check:
            for index, program in enumerate(programs):
                exact = self._project_exact(program, hints_list[index])
                assert projections[index] == exact, (
                    f"sweep point {index} ({program.name}) diverged from "
                    f"the per-point pipeline"
                )
        return projections

    # Tile-pruned argmin ----------------------------------------------------
    def argmin_workload(
        self,
        workload: Workload,
        datasets: Sequence[Dataset] | None = None,
        tile: int = 4,
    ) -> SweepArgmin:
        """:meth:`argmin` over a workload's datasets (in dataset order)."""
        points = list(datasets) if datasets is not None else list(
            workload.datasets()
        )
        return self.argmin(
            [workload.skeleton(d) for d in points],
            hints=[workload.hints(d) for d in points],
            sizes=[d.size for d in points],
            tile=tile,
        )

    def argmin(
        self,
        programs: Sequence[ProgramSkeleton],
        hints: Sequence[AnalysisHints | None] | None = None,
        sizes: Sequence[int] | None = None,
        tile: int = 4,
    ) -> SweepArgmin:
        """The sweep point with the smallest ``total_seconds(1)``,
        pruning whole tiles the bounds prove cannot win.

        The sweep grid is cut into contiguous tiles of ``tile`` points.
        Each point gets a provable lower bound: the per-kernel floor from
        :func:`~repro.gpu.vectorized.bound_min_grid` (min over legal
        configs of the branch-and-bound floor — below any mapping's true
        time) plus the point's *exact* transfer seconds (anchors run the
        exact analyzer; other points instantiate the Fraction-affine
        :class:`~repro.sweep.structure.PlanTemplate`, which equals the
        exact plan wherever it certifies).  The tile with the smallest
        bound is evaluated first to seed the incumbent; a tile whose
        bound strictly exceeds the incumbent is skipped whole — every
        point in it has ``true >= bound > incumbent >= global min``, so
        it can neither win nor tie, and the returned argmin (first
        minimum in point order) is identical to evaluating every point.

        Same contract as :meth:`sweep` otherwise: every evaluated point's
        projection equals the per-point pipeline's, and a point with no
        legal mapping raises.  When the sharing certificate fails, every
        tile is evaluated (graceful degradation, never a wrong answer).
        """
        programs = list(programs)
        if not programs:
            raise ValueError("argmin needs at least one sweep point")
        if tile < 1:
            raise ValueError(f"tile must be >= 1, got {tile}")
        hints_list = (
            list(hints) if hints is not None else [None] * len(programs)
        )
        if len(hints_list) != len(programs):
            raise ValueError(
                f"hints do not match programs: {len(hints_list)} vs "
                f"{len(programs)}"
            )
        if sizes is not None and len(sizes) != len(programs):
            raise ValueError(
                f"sizes do not match programs: {len(sizes)} vs "
                f"{len(programs)}"
            )
        count = len(programs)
        with trace_span(
            "sweep-argmin", category="sweep", points=count, tile=tile
        ) as root:
            bounds = self._point_bounds(programs, hints_list, sizes)
            tiles = [
                (lo, min(lo + tile, count)) for lo in range(0, count, tile)
            ]
            if bounds is None:
                order = list(range(len(tiles)))
                tile_bounds = None
            else:
                tile_bounds = [
                    min(bounds[lo:hi]) for lo, hi in tiles
                ]
                seed = tile_bounds.index(min(tile_bounds))
                order = [seed] + [
                    t for t in range(len(tiles)) if t != seed
                ]

            best_index = -1
            best_seconds = float("inf")
            best_projection: Projection | None = None
            evaluated: list[int] = []
            pruned_tiles = 0
            for t in order:
                lo, hi = tiles[t]
                if tile_bounds is not None and tile_bounds[t] > best_seconds:
                    pruned_tiles += 1
                    continue
                projections = self.sweep(
                    programs[lo:hi],
                    hints_list[lo:hi],
                    sizes[lo:hi] if sizes is not None else None,
                )
                for offset, projection in enumerate(projections):
                    index = lo + offset
                    evaluated.append(index)
                    seconds = projection.total_seconds(1)
                    # Strict < with (seconds, index) ordering: the first
                    # minimum in point order wins, exactly as a full
                    # sweep's min() would pick it.
                    if seconds < best_seconds or (
                        seconds == best_seconds and index < best_index
                    ):
                        best_index = index
                        best_seconds = seconds
                        best_projection = projection
            assert best_projection is not None  # count >= 1 and tiles cover
            evaluated.sort()
            stats = {
                "points": count,
                "tiles": len(tiles),
                "tiles_pruned": pruned_tiles,
                "points_evaluated": len(evaluated),
                "points_pruned": count - len(evaluated),
                "bounded": int(bounds is not None),
            }
            self.stats = stats
            root.set(**stats)
        return SweepArgmin(
            index=best_index,
            projection=best_projection,
            seconds=best_seconds,
            bounds=tuple(bounds) if bounds is not None else None,
            evaluated=tuple(evaluated),
            stats=stats,
        )

    def _point_bounds(
        self,
        programs: list[ProgramSkeleton],
        hints_list: list[AnalysisHints | None],
        sizes: Sequence[int] | None,
    ) -> list[float] | None:
        """Provable per-point lower bounds on ``total_seconds(1)``.

        ``None`` when the kernel-sharing certificate fails (no cheap
        bound exists without per-point analysis — the caller then
        evaluates every tile).
        """
        anchors = self._anchor_indices(len(programs), sizes)
        shared = shared_kernel_analyses(
            programs, self._model.arch.strict_coalescing, anchors
        )
        if shared is None:
            return None
        configs = list(self._space.configs())
        count = len(programs)
        kernel_floor = [0.0] * count
        for analysis, point_iterations in shared:
            # One stacked bound pass per kernel: each point's columns are
            # concatenated and reduced segment-wise.
            per_point = [
                analysis.config_columns(configs, iterations)[0]
                for iterations in point_iterations
            ]
            stacked = {
                field: np.concatenate([c[field] for c in per_point])
                for field in per_point[0]
            }
            segments = []
            offset = 0
            for point_columns in per_point:
                rows = int(point_columns["block_size"].shape[0])
                segments.append((offset, offset + rows))
                offset += rows
            for point, floor in enumerate(
                bound_min_grid(self._model, stacked, segments)
            ):
                kernel_floor[point] += floor
        plans, _template_points = self._sweep_plans(
            programs, hints_list, sizes, anchors
        )
        bounds = []
        for index, program in enumerate(programs):
            plan = plans[index]
            if plan is None:
                plan = self._exact_plan(program, hints_list[index])
            transfer = sum(self._bus.predict_plan_by_transfer(plan))
            bounds.append(kernel_floor[index] + transfer)
        return bounds

    def sweep_buses(
        self, plan: TransferPlan, buses: Sequence[BusModel]
    ) -> list[BusSweepPoint]:
        """Price one fixed transfer plan on many buses (what-if studies).

        The transfer set is bus-independent, so a bus sweep never
        re-explores or re-analyzes — this is the sweep-engine face of
        the paper's PCIe-generation what-if.
        """
        points = []
        for bus in buses:
            per_transfer = tuple(bus.predict_plan_by_transfer(plan))
            points.append(
                BusSweepPoint(bus, sum(per_transfer), per_transfer)
            )
        return points

    # Architecture axis -----------------------------------------------------
    def sweep_arches_workload(
        self,
        workload: Workload,
        arches: Sequence["str | ArchSpec | GPUArchitecture"],
        dataset: Dataset | None = None,
        buses: "Sequence[BusModel] | str | None" = None,
        check: bool = False,
    ) -> list[ArchSweepPoint]:
        """:meth:`sweep_arches` on one workload dataset (largest by
        default — the porting decision is usually asked at full size)."""
        if dataset is None:
            dataset = max(workload.datasets(), key=lambda d: d.size)
        return self.sweep_arches(
            workload.skeleton(dataset),
            arches,
            hints=workload.hints(dataset),
            buses=buses,
            check=check,
        )

    def sweep_arches(
        self,
        program: ProgramSkeleton,
        arches: Sequence["str | ArchSpec | GPUArchitecture"],
        hints: AnalysisHints | None = None,
        buses: "Sequence[BusModel] | str | None" = None,
        check: bool = False,
    ) -> list[ArchSweepPoint]:
        """Score one program across an architecture fleet, in axis order.

        The transfer plan is architecture-independent, so it is analyzed
        once and re-priced per point; kernel analyses and characteristics
        grids are shared across every architecture with the same
        coalescing rules, so only the vectorized scoring pass runs per
        architecture.  ``arches`` entries are registry ids, specs, or
        explicit architectures; ``buses`` is ``None`` (engine bus for
        every point), ``"paired"`` (each registry arch's PCIe-generation
        default), or one explicit bus per axis entry.  ``check=True``
        re-projects every point through a fresh per-arch pipeline and
        asserts equality — the oracle mode.
        """
        rows = self.sweep_arch_grid(
            [program], arches, hints=[hints], buses=buses, check=check
        )
        return [
            ArchSweepPoint(row.arch_id, row.arch, row.bus, row.projections[0])
            for row in rows
        ]

    def argmin_arches(
        self,
        program: ProgramSkeleton,
        arches: Sequence["str | ArchSpec | GPUArchitecture"],
        hints: AnalysisHints | None = None,
        buses: "Sequence[BusModel] | str | None" = None,
    ) -> ArchArgmin:
        """The fleet's fastest architecture for one program.

        The fleet is small (registry-sized), so every point is evaluated;
        the strict ``<`` keeps the first minimum in axis order, exactly
        as a full sweep's ``min()`` would pick it.
        """
        points = self.sweep_arches(program, arches, hints=hints, buses=buses)
        best_index = -1
        best_seconds = float("inf")
        best: ArchSweepPoint | None = None
        for index, point in enumerate(points):
            seconds = point.seconds
            if seconds < best_seconds:
                best_index, best_seconds, best = index, seconds, point
        assert best is not None  # axis validated non-empty by the sweep
        stats = dict(self.stats)
        stats["points_evaluated"] = len(points)
        self.stats = stats
        return ArchArgmin(
            index=best_index, point=best, seconds=best_seconds, stats=stats
        )

    def sweep_arch_grid(
        self,
        programs: Sequence[ProgramSkeleton],
        arches: Sequence["str | ArchSpec | GPUArchitecture"],
        hints: Sequence[AnalysisHints | None] | None = None,
        sizes: Sequence[int] | None = None,
        buses: "Sequence[BusModel] | str | None" = None,
        check: bool = False,
    ) -> list[ArchSweepRow]:
        """A full architecture x point grid, one row per architecture.

        Reuse across the grid: transfer plans are computed once for the
        point axis (they do not depend on the architecture at all) and
        re-priced per row; kernel analyses and characteristics grids are
        built once per coalescing-rule group and scored per architecture.
        A failed sharing certificate degrades that group to the per-point
        exact pipeline, never to a wrong answer.
        """
        programs = list(programs)
        if not programs:
            raise ValueError("arch sweep needs at least one program")
        entries = self._resolve_arch_axis(arches, buses)
        hints_list = (
            list(hints) if hints is not None else [None] * len(programs)
        )
        if len(hints_list) != len(programs):
            raise ValueError(
                f"hints do not match programs: {len(hints_list)} vs "
                f"{len(programs)}"
            )
        if sizes is not None and len(sizes) != len(programs):
            raise ValueError(
                f"sizes do not match programs: {len(sizes)} vs "
                f"{len(programs)}"
            )
        models = [
            self._model
            if entry[1] == self._model.arch
            else GpuPerformanceModel(entry[1])
            for entry in entries
        ]
        with trace_span(
            "sweep-arches",
            category="sweep",
            arches=len(entries),
            points=len(programs),
        ) as root:
            anchors = self._anchor_indices(len(programs), sizes)
            with trace_span(
                "transfer-planning", category="sweep", points=len(programs)
            ):
                maybe_plans, template_points = self._sweep_plans(
                    programs, hints_list, sizes, anchors
                )
                plans = [
                    plan
                    if plan is not None
                    else self._exact_plan(programs[i], hints_list[i])
                    for i, plan in enumerate(maybe_plans)
                ]

            groups: dict[bool, list[int]] = {}
            for index, (_aid, arch, _bus) in enumerate(entries):
                groups.setdefault(arch.strict_coalescing, []).append(index)
            kernels: list[list[ProgramProjection] | None] = (
                [None] * len(entries)
            )
            shared_groups = 0
            for flag, members in groups.items():
                group_rows = self._arch_group_kernels(
                    programs, anchors, flag, [models[i] for i in members]
                )
                if group_rows is None:
                    for i in members:
                        kernels[i] = [
                            project_program(
                                program,
                                models[i],
                                self._space,
                                prune=self._prune,
                            )
                            for program in programs
                        ]
                else:
                    shared_groups += 1
                    for offset, i in enumerate(members):
                        kernels[i] = group_rows[offset]

            rows: list[ArchSweepRow] = []
            for index, (arch_id, arch, bus) in enumerate(entries):
                projections = []
                for p, program in enumerate(programs):
                    per_transfer = tuple(bus.predict_plan_by_transfer(plans[p]))
                    row_kernels = kernels[index]
                    assert row_kernels is not None  # every group filled
                    projections.append(
                        Projection(
                            program=program.name,
                            kernel_seconds=row_kernels[p].seconds,
                            transfer_seconds=sum(per_transfer),
                            plan=plans[p],
                            per_transfer_seconds=per_transfer,
                            kernels=row_kernels[p],
                        )
                    )
                rows.append(
                    ArchSweepRow(arch_id, arch, bus, tuple(projections))
                )
            self.stats = {
                "arches": len(entries),
                "points": len(programs),
                "coalescing_groups": len(groups),
                "groups_shared": shared_groups,
                "plans_computed": len(programs),
                "plans_from_template": template_points,
                "plans_reused_across_arches": (
                    (len(entries) - 1) * len(programs)
                ),
            }
            root.set(**self.stats)
        if check:
            for row in rows:
                fresh = GpuPerformanceModel(row.arch)
                for p, program in enumerate(programs):
                    exact = self._project_exact(
                        program, hints_list[p], model=fresh, bus=row.bus
                    )
                    assert row.projections[p] == exact, (
                        f"arch sweep point ({row.arch.name}, {program.name})"
                        " diverged from the per-arch pipeline"
                    )
        return rows

    def _resolve_arch_axis(
        self,
        arches: Sequence["str | ArchSpec | GPUArchitecture"],
        buses: "Sequence[BusModel] | str | None",
    ) -> list[tuple["str | None", GPUArchitecture, BusModel]]:
        """Coerce the axis to (registry id, arch, bus) triples.

        Unknown registry ids raise
        :class:`~repro.gpu.registry.UnknownArchitectureError` (which
        every serving surface renders as the structured ``{error, field,
        hint}`` payload).
        """
        resolved: list[tuple["str | None", GPUArchitecture, "ArchSpec | None"]]
        resolved = []
        for item in arches:
            if isinstance(item, GPUArchitecture):
                spec = spec_for_arch(item)
                resolved.append((spec.id if spec else None, item, spec))
            elif isinstance(item, ArchSpec):
                resolved.append((item.id, item.architecture(), item))
            else:
                spec = get_spec(item)
                resolved.append((spec.id, get_arch(spec.id), spec))
        if not resolved:
            raise ValueError("arch sweep needs at least one architecture")
        if buses is None:
            bus_list: list[BusModel] = [self._bus] * len(resolved)
        elif isinstance(buses, str):
            if buses != "paired":
                raise ValueError(
                    f"unknown bus pairing {buses!r}; know 'paired'"
                )
            bus_list = [
                spec.bus() if spec is not None else self._bus
                for _aid, _arch, spec in resolved
            ]
        else:
            bus_list = list(buses)
            if len(bus_list) != len(resolved):
                raise ValueError(
                    f"buses do not match arches: {len(bus_list)} vs "
                    f"{len(resolved)}"
                )
        return [
            (arch_id, arch, bus)
            for (arch_id, arch, _spec), bus in zip(resolved, bus_list)
        ]

    def _arch_group_kernels(
        self,
        programs: list[ProgramSkeleton],
        anchors: list[int],
        strict_coalescing: bool,
        models: list[GpuPerformanceModel],
    ) -> list[list[ProgramProjection]] | None:
        """Kernel projections for every (model, point) of one coalescing
        group via a single shared analysis, or ``None`` when the sharing
        certificate fails (caller degrades to the per-point pipeline).

        The characteristics grid depends on the coalescing rules but not
        on the rest of the machine table, so it is synthesized once and
        scored once per architecture — the same grid/columns objects feed
        every :func:`~repro.gpu.vectorized.score_grid` pass (the batch
        reads them, never writes).
        """
        shared = shared_kernel_analyses(programs, strict_coalescing, anchors)
        if shared is None:
            return None
        configs = list(self._space.configs())
        per_model_point: list[list[list[KernelProjection]]] = [
            [[] for _ in programs] for _ in models
        ]
        for analysis, point_iterations in shared:
            grids, synthesis_errors = analysis.characteristics_grid(
                configs, point_iterations
            )
            if synthesis_errors:
                compact = [
                    [c for c in chars if c is not None] for chars in grids
                ]
                columns = None
            else:
                compact = grids
                columns = _grid_columns(grids)
            for m, model in enumerate(models):
                scored = score_grid(
                    model, compact, prune=self._prune, columns=columns
                )
                for point, (chars, results) in enumerate(zip(grids, scored)):
                    per_model_point[m][point].append(
                        self._assemble_kernel(
                            analysis.kernel.name,
                            configs,
                            chars,
                            synthesis_errors,
                            results,
                            model=model,
                        )
                    )
        return [
            [
                ProgramProjection(
                    program=program.name,
                    kernels=tuple(per_model_point[m][p]),
                )
                for p, program in enumerate(programs)
            ]
            for m in range(len(models))
        ]

    @staticmethod
    def _anchor_indices(
        count: int, sizes: Sequence[int] | None
    ) -> list[int]:
        """Points where structure is certified exactly.

        Without a size axis there is nothing to interpolate along, so
        every point anchors; with one, the smallest, median, and largest
        points do (all of them when the sweep has at most
        :data:`MAX_PLAN_ANCHORS` points — a figure-style sweep is then
        certified at every point).
        """
        if sizes is None or count <= MAX_PLAN_ANCHORS:
            return list(range(count))
        order = sorted(range(count), key=lambda i: sizes[i])
        return sorted({order[0], order[count // 2], order[-1]})

    # Kernel side -----------------------------------------------------------
    def _sweep_kernels(
        self, programs: list[ProgramSkeleton], anchors: list[int]
    ) -> list[ProgramProjection] | None:
        """All points' kernel projections via shared analyses, or None."""
        shared = shared_kernel_analyses(
            programs, self._model.arch.strict_coalescing, anchors
        )
        if shared is None:
            return None
        configs = list(self._space.configs())
        per_point: list[list[KernelProjection]] = [[] for _ in programs]
        for analysis, point_iterations in shared:
            # Per-config synthesis errors do not depend on the work-item
            # count, so the grid reports each failing config once.
            grids, synthesis_errors = analysis.characteristics_grid(
                configs, point_iterations
            )
            if synthesis_errors:
                scored = score_grid(
                    self._model,
                    [[c for c in chars if c is not None] for chars in grids],
                    prune=self._prune,
                )
            else:
                # Full grid: every field except threads/block_size is
                # point-invariant (that is what the sharing certificate
                # guarantees), so read those once from the first point
                # and tile instead of per-row attribute sweeps.
                scored = score_grid(
                    self._model,
                    grids,
                    prune=self._prune,
                    columns=_grid_columns(grids),
                )
            for point, (chars, results) in enumerate(zip(grids, scored)):
                projection = self._assemble_kernel(
                    analysis.kernel.name, configs, chars,
                    synthesis_errors, results,
                )
                per_point[point].append(projection)
        return [
            ProgramProjection(
                program=program.name, kernels=tuple(per_point[index])
            )
            for index, program in enumerate(programs)
        ]

    def _assemble_kernel(
        self,
        kernel_name: str,
        configs: list,
        chars: list,
        synthesis_errors: dict[int, str],
        results: list[tuple[str, object]],
        model: GpuPerformanceModel | None = None,
    ) -> KernelProjection:
        """Mirror of the fast path's per-kernel result assembly."""
        model = model if model is not None else self._model
        candidates: list[CandidateResult] = []
        skipped: list[tuple] = []
        pruned: list[tuple] = []
        best: CandidateResult | None = None
        best_seconds = float("inf")
        # CandidateResult is a frozen dataclass; bypassing its
        # per-field ``object.__setattr__`` construction (as the scorer's
        # materialize step does) keeps this per-point loop cheap.  The
        # strict ``<`` replays min()'s first-minimum tie-break.
        new = object.__new__
        add_candidate = candidates.append
        if synthesis_errors:
            scored: list[tuple] = []
            results_iter = iter(results)
            for index, config in enumerate(configs):
                if index in synthesis_errors:
                    skipped.append((config, synthesis_errors[index]))
                else:
                    scored.append((config, chars[index], next(results_iter)))
        else:
            scored = list(zip(configs, chars, results))
        for config, characteristics, (kind, payload) in scored:
            if kind == "candidate":
                candidate = new(CandidateResult)
                fields = candidate.__dict__
                fields["config"] = config
                fields["characteristics"] = characteristics
                fields["breakdown"] = payload
                add_candidate(candidate)
                if payload.seconds < best_seconds:
                    best = candidate
                    best_seconds = payload.seconds
            elif kind == "illegal":
                skipped.append((config, payload))
            else:
                pruned.append((config, payload))
        if best is None:
            raise ValueError(
                f"no legal mapping for kernel {kernel_name!r} on "
                f"{model.arch.name} (tried {len(skipped)})"
            )
        return KernelProjection(
            kernel=kernel_name,
            best=best,
            candidates=tuple(candidates),
            skipped=tuple(skipped),
            pruned=tuple(pruned),
        )

    # Transfer side ---------------------------------------------------------
    def _exact_plan(
        self, program: ProgramSkeleton, hints: AnalysisHints | None
    ) -> TransferPlan:
        plan = analyze_transfers(program, hints)
        if self._batched:
            plan = plan.batched()
        return plan

    def _sweep_plans(
        self,
        programs: list[ProgramSkeleton],
        hints_list: list[AnalysisHints | None],
        sizes: Sequence[int] | None,
        anchors: list[int],
    ) -> tuple[list[TransferPlan | None], int]:
        """Plans plus how many came from the template; ``None`` slots
        (and the anchors themselves) run the exact analyzer.

        Anchors always get exact plans; the template fitted through them
        serves the rest, unless the anchors reject it (non-affine
        element counts, differing transfer sequences) or a point's
        evaluation falls off the integer lattice.
        """
        count = len(programs)
        plans: list[TransferPlan | None] = [None] * count
        if sizes is None:
            return plans, 0
        for index in anchors:
            plans[index] = self._exact_plan(
                programs[index], hints_list[index]
            )
        if count <= len(anchors):
            return plans, 0
        template = fit_plan_template(
            [sizes[i] for i in anchors], [plans[i] for i in anchors]
        )
        if template is None:
            return plans, 0
        template_points = 0
        for index in range(count):
            if plans[index] is None:
                plans[index] = template.instantiate(
                    programs[index].name, sizes[index]
                )
                template_points += plans[index] is not None
        return plans, template_points

    # Oracle ----------------------------------------------------------------
    def _project_exact(
        self,
        program: ProgramSkeleton,
        hints: AnalysisHints | None,
        model: GpuPerformanceModel | None = None,
        bus: BusModel | None = None,
    ) -> Projection:
        """The per-point pipeline (the ``check=True`` oracle); ``model``
        and ``bus`` override the engine's for per-arch oracle runs."""
        model = model if model is not None else self._model
        bus = bus if bus is not None else self._bus
        kernels = project_program(
            program, model, self._space, prune=self._prune
        )
        plan = self._exact_plan(program, hints)
        per_transfer = tuple(bus.predict_plan_by_transfer(plan))
        return Projection(
            program=program.name,
            kernel_seconds=kernels.seconds,
            transfer_seconds=sum(per_transfer),
            plan=plan,
            per_transfer_seconds=per_transfer,
            kernels=kernels,
        )
