"""GROPHECY++: GPU performance projection with data-transfer modeling.

A complete reproduction of Boyer, Meng & Kumaran, *Improving GPU
Performance Prediction with Data Transfer Modeling* (IPDPS 2013): project
a CPU code's end-to-end GPU speedup — kernel time **and** PCIe transfer
time — from an abstract code skeleton, without writing GPU code.

Quick orientation (full tour in ``docs/API.md``):

- :mod:`repro.skeleton` — describe CPU code (builders or the text format);
- :mod:`repro.core` — :class:`~repro.core.projector.GrophecyPlusPlus`
  turns a skeleton + calibrated bus into a projection;
- :mod:`repro.pcie` — the ``T(d) = α + β·d`` bus model and its 2-point
  calibration;
- :mod:`repro.workloads` — the paper's benchmarks with NumPy reference
  implementations;
- :mod:`repro.harness` — every table/figure of the paper's evaluation;
- :mod:`repro.sim` — the virtual Argonne testbed standing in for the
  2013 hardware;
- :mod:`repro.service` — the batched, cached, parallel projection
  engine (``python -m repro batch``), for sweeps and heavy traffic.

The most common entry points are importable from the top level:

>>> from repro import GrophecyPlusPlus, calibrate_bus, argonne_testbed
>>> from repro import ProgramBuilder, KernelBuilder
"""

from repro.core.projector import Grophecy, GrophecyPlusPlus
from repro.core.prediction import Projection
from repro.datausage.analyzer import analyze_transfers
from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.gpu.arch import GPUArchitecture, gtx_280, quadro_fx_5600
from repro.pcie.calibration import calibrate_bus
from repro.pcie.channel import MemoryKind, TransferChannel
from repro.pcie.model import BusModel, LinearTransferModel
from repro.core.serialize import ProjectionSummary, summarize_projection
from repro.service.cache import ProjectionCache
from repro.service.engine import (
    ProjectionEngine,
    ProjectionRequest,
    ProjectionResponse,
)
from repro.service.jobs import run_batch
from repro.service.metrics import ServiceMetrics
from repro.sim.machine import VirtualTestbed, argonne_testbed
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.parser import parse_skeleton, parse_skeleton_file
from repro.version import package_version
from repro.workloads.registry import (
    all_workloads,
    get_workload,
    paper_workloads,
)

__version__ = package_version()

__all__ = [
    "__version__",
    "Grophecy",
    "GrophecyPlusPlus",
    "Projection",
    "analyze_transfers",
    "AnalysisHints",
    "SparseExtentHint",
    "GPUArchitecture",
    "quadro_fx_5600",
    "gtx_280",
    "calibrate_bus",
    "MemoryKind",
    "TransferChannel",
    "BusModel",
    "LinearTransferModel",
    "ProjectionSummary",
    "summarize_projection",
    "ProjectionCache",
    "ProjectionEngine",
    "ProjectionRequest",
    "ProjectionResponse",
    "ServiceMetrics",
    "run_batch",
    "VirtualTestbed",
    "argonne_testbed",
    "KernelBuilder",
    "ProgramBuilder",
    "parse_skeleton",
    "parse_skeleton_file",
    "all_workloads",
    "get_workload",
    "paper_workloads",
]
