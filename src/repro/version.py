"""The package version, resolved from packaging metadata.

:func:`package_version` is what ``python -m repro --version`` (and the
``version`` CLI verb, and the daemon's ``/v1/version`` endpoint) report,
so clients can assert daemon/CLI compatibility.  Resolution order:

1. installed distribution metadata (:mod:`importlib.metadata`) — the
   authoritative answer for a ``pip install``-ed package;
2. the ``pyproject.toml`` at the repository root — the source-tree case
   (``PYTHONPATH=src`` runs, which is how the test suite and CI work);
3. the fallback sentinel ``0.0.0+unknown`` — never an exception.
"""

from __future__ import annotations

import re
from importlib import metadata
from pathlib import Path

#: Reported when neither distribution metadata nor pyproject.toml is
#: reachable; parseable as a version so clients can still compare.
UNKNOWN_VERSION = "0.0.0+unknown"


def _pyproject_version(pyproject: Path) -> str | None:
    """``project.version`` from a pyproject.toml, or None.

    Uses :mod:`tomllib` when available (3.11+); otherwise a narrow
    regex over the ``[project]`` table keeps 3.10 working without a
    TOML dependency.
    """
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        import tomllib
    except ImportError:
        match = re.search(
            r"^\[project\].*?^version\s*=\s*\"([^\"]+)\"",
            text,
            re.MULTILINE | re.DOTALL,
        )
        return match.group(1) if match else None
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return None
    version = data.get("project", {}).get("version")
    return str(version) if version is not None else None


def package_version() -> str:
    """The ``repro`` package version string (never raises)."""
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        pass
    # src layout: src/repro/version.py -> repository root two levels up.
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    return _pyproject_version(pyproject) or UNKNOWN_VERSION
