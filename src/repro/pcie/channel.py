"""The measurement interface the calibrator runs against."""

from __future__ import annotations

import enum
from typing import Protocol, runtime_checkable

from repro.datausage.transfers import Direction


class MemoryKind(enum.Enum):
    """Host allocation type for the transfer staging buffer.

    Pinned (page-locked, ``cudaHostAlloc``) memory can be DMA'd directly;
    pageable (``malloc``) memory is staged through a driver-side pinned
    buffer, costing bandwidth.  The paper assumes pinned for predictions
    (Section III-C) since it wins in almost all cases.
    """

    PINNED = "pinned"
    PAGEABLE = "pageable"


@runtime_checkable
class TransferChannel(Protocol):
    """Anything that can time one CPU<->GPU copy of ``size`` bytes.

    Implementations: :class:`repro.sim.pcie_sim.SimulatedPcieBus` (the
    virtual testbed) — on a machine with a real GPU one would wrap a
    ``cudaMemcpy`` timing loop instead.  Each call represents one
    *measured run*; the calibrator averages ten of them, mirroring the
    paper's methodology.
    """

    def transfer_time(
        self,
        size_bytes: int,
        direction: Direction,
        memory: MemoryKind = MemoryKind.PINNED,
    ) -> float:
        """Seconds for one transfer of ``size_bytes`` in ``direction``."""
        ...
