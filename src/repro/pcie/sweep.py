"""Transfer-size sweeps: the measurement grid behind Figs. 2-4."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import Direction
from repro.pcie.channel import MemoryKind, TransferChannel
from repro.util.stats import arithmetic_mean
from repro.util.units import MiB
from repro.util.validation import check_positive


def power_of_two_sizes(
    smallest: int = 1, largest: int = 512 * MiB
) -> list[int]:
    """All powers of two from ``smallest`` to ``largest`` inclusive.

    The paper's validation sweep runs from 1 B to 512 MB (30 sizes).
    """
    check_positive("smallest", smallest)
    check_positive("largest", largest)
    if smallest & (smallest - 1) or largest & (largest - 1):
        raise ValueError("sweep endpoints must be powers of two")
    if largest < smallest:
        raise ValueError("largest must be >= smallest")
    sizes = []
    size = smallest
    while size <= largest:
        sizes.append(size)
        size *= 2
    return sizes


@dataclass(frozen=True)
class TransferSample:
    """Mean measured time for one (size, direction, memory) grid point."""

    size_bytes: int
    direction: Direction
    memory: MemoryKind
    mean_time: float
    times: tuple[float, ...]

    @property
    def repetitions(self) -> int:
        return len(self.times)


def measure_sweep(
    channel: TransferChannel,
    sizes: list[int] | None = None,
    direction: Direction = Direction.H2D,
    memory: MemoryKind = MemoryKind.PINNED,
    repetitions: int = 10,
) -> list[TransferSample]:
    """Measure a sweep of transfer sizes, ``repetitions`` runs per size.

    Matches the methodology of Fig. 2: each reported time is the
    arithmetic mean of ten separate transfers.
    """
    check_positive("repetitions", repetitions)
    if sizes is None:
        sizes = power_of_two_sizes()
    samples = []
    for size in sizes:
        times = tuple(
            channel.transfer_time(size, direction, memory)
            for _ in range(repetitions)
        )
        samples.append(
            TransferSample(
                size_bytes=size,
                direction=direction,
                memory=memory,
                mean_time=arithmetic_mean(times),
                times=times,
            )
        )
    return samples
