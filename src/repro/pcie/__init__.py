"""PCIe bus transfer-time modeling (paper Section III-C).

The model is deliberately simple: ``T(d) = alpha + beta * d`` with the two
parameters measured empirically per system — ``alpha`` from a 1-byte
transfer and ``beta`` from a 512 MB transfer, each averaged over ten runs.
:class:`~repro.pcie.calibration.Calibrator` automates the procedure against
any object implementing the :class:`~repro.pcie.channel.TransferChannel`
protocol (the simulated testbed in :mod:`repro.sim`, or real hardware if
you have it).
"""

from repro.pcie.channel import MemoryKind, TransferChannel
from repro.pcie.model import BusModel, LinearTransferModel
from repro.pcie.calibration import (
    CalibrationConfig,
    Calibrator,
    calibrate_bus,
)
from repro.pcie.sweep import (
    TransferSample,
    measure_sweep,
    power_of_two_sizes,
)
from repro.pcie.allocation import (
    AllocationCost,
    AllocationModel,
    cuda23_era_allocation_model,
)
from repro.pcie.presets import (
    bus_for_generation,
    pcie_gen1_bus,
    pcie_gen2_bus,
    pcie_gen3_bus,
)

__all__ = [
    "MemoryKind",
    "TransferChannel",
    "BusModel",
    "LinearTransferModel",
    "CalibrationConfig",
    "Calibrator",
    "calibrate_bus",
    "TransferSample",
    "measure_sweep",
    "power_of_two_sizes",
    "AllocationCost",
    "AllocationModel",
    "cuda23_era_allocation_model",
    "bus_for_generation",
    "pcie_gen1_bus",
    "pcie_gen2_bus",
    "pcie_gen3_bus",
]
