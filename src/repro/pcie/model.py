"""The linear transfer-time model ``T(d) = alpha + beta * d``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.datausage.transfers import Direction, TransferPlan
from repro.util.fingerprint import stable_digest
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LinearTransferModel:
    """Equation 1 of the paper: ``T(d) = alpha + beta * d``.

    ``alpha`` (seconds) is the fixed per-transfer latency — the time to
    send the first byte; ``beta`` (seconds/byte) is the inverse of the
    sustained bandwidth.  For small transfers (<1 KB) the alpha term
    dominates; above ~1 MB the beta term does.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        check_non_negative("alpha", self.alpha)
        check_positive("beta", self.beta)

    @property
    def bandwidth(self) -> float:
        """Sustained bandwidth in bytes/second (``1 / beta``)."""
        return 1.0 / self.beta

    def predict(self, size_bytes: float) -> float:
        """Predicted transfer time in seconds for ``size_bytes``."""
        check_non_negative("size_bytes", size_bytes)
        return self.alpha + self.beta * size_bytes

    def predict_many(self, sizes: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`predict`."""
        arr = np.asarray(sizes, dtype=float)
        if (arr < 0).any():
            raise ValueError("transfer sizes must be non-negative")
        return self.alpha + self.beta * arr

    # Fitting -----------------------------------------------------------------
    @staticmethod
    def from_two_points(
        t_small: float, t_large: float, large_size: int
    ) -> "LinearTransferModel":
        """The paper's 2-measurement fit.

        ``alpha = t_small`` (the 1-byte time) and ``beta = t_large /
        large_size``.  The single byte inside ``t_small`` and the alpha
        inside ``t_large`` are both negligible at the scales used (10 us
        vs 200 ms), which is why the paper doesn't bother subtracting
        them.
        """
        check_positive("t_small", t_small)
        check_positive("t_large", t_large)
        check_positive("large_size", large_size)
        return LinearTransferModel(alpha=t_small, beta=t_large / large_size)

    @staticmethod
    def least_squares(
        sizes: Sequence[float], times: Sequence[float]
    ) -> "LinearTransferModel":
        """Ordinary least-squares fit over a full sweep (ablation baseline).

        Note this is *worse* than the 2-point fit for the paper's purpose:
        unweighted OLS over sizes spanning nine orders of magnitude is
        dominated by the largest transfers and can produce a negative
        intercept; we clamp alpha at the smallest observed time's scale.
        """
        sizes_arr = np.asarray(sizes, dtype=float)
        times_arr = np.asarray(times, dtype=float)
        if sizes_arr.shape != times_arr.shape or sizes_arr.ndim != 1:
            raise ValueError("sizes and times must be equal-length 1-D")
        if sizes_arr.size < 2:
            raise ValueError("least squares needs at least two points")
        a = np.vstack([np.ones_like(sizes_arr), sizes_arr]).T
        (alpha, beta), *_ = np.linalg.lstsq(a, times_arr, rcond=None)
        alpha = max(float(alpha), 0.0)
        beta = float(beta)
        if beta <= 0:
            raise ValueError("fit produced non-positive bandwidth")
        return LinearTransferModel(alpha=alpha, beta=beta)

    def to_dict(self) -> dict[str, float]:
        return {"alpha": self.alpha, "beta": self.beta}

    @staticmethod
    def from_dict(data: Mapping[str, float]) -> "LinearTransferModel":
        return LinearTransferModel(float(data["alpha"]), float(data["beta"]))

    def fingerprint(self) -> str:
        """Stable content hash of the fitted (alpha, beta) pair."""
        return stable_digest(self.to_dict())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"T(d) = {self.alpha * 1e6:.2f}us + d / "
            f"{self.bandwidth / 1e9:.2f}GB/s"
        )


@dataclass(frozen=True)
class BusModel:
    """A calibrated bus: one linear model per transfer direction.

    The paper calibrates H2D and D2H separately (their bandwidths differ
    on real hardware; see Fig. 2's two panels).
    """

    h2d: LinearTransferModel
    d2h: LinearTransferModel

    def for_direction(self, direction: Direction) -> LinearTransferModel:
        return self.h2d if direction is Direction.H2D else self.d2h

    def fingerprint(self) -> str:
        """Stable content hash over both directions' (alpha, beta).

        Any recalibration — a different alpha or beta in either direction
        — changes the digest, so the projection service never serves a
        result computed against a stale bus model.
        """
        return stable_digest(
            {"h2d": self.h2d.to_dict(), "d2h": self.d2h.to_dict()}
        )

    def predict_transfer(self, size_bytes: float, direction: Direction) -> float:
        return self.for_direction(direction).predict(size_bytes)

    def predict_plan(self, plan: TransferPlan) -> float:
        """Total predicted transfer time of a plan.

        Each array is transferred separately (one alpha each), matching
        the paper's assumption in Section III-B.
        """
        return sum(
            self.for_direction(t.direction).predict(t.bytes)
            for t in plan.transfers
        )

    def predict_plan_by_transfer(self, plan: TransferPlan) -> list[float]:
        """Per-transfer predicted times, in plan order (Fig. 5 needs this)."""
        return [
            self.for_direction(t.direction).predict(t.bytes)
            for t in plan.transfers
        ]
