"""Automatic per-system calibration of the bus model (Section III-C).

GROPHECY++ runs a tiny synthetic benchmark on each new system: ten 1-byte
transfers give ``alpha``; ten 512 MB transfers give ``beta``.  The
:class:`Calibrator` reproduces that procedure against any
:class:`~repro.pcie.channel.TransferChannel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import Direction
from repro.pcie.channel import MemoryKind, TransferChannel
from repro.pcie.model import BusModel, LinearTransferModel
from repro.util.stats import arithmetic_mean
from repro.util.units import MiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CalibrationConfig:
    """Knobs of the calibration benchmark.

    Defaults are the paper's: 1 B small transfer, 512 MB large transfer,
    10 repetitions, pinned memory.  The paper notes the large size is
    arbitrary — anything beyond a few MB suffices — and that choosing a
    size near the largest the system supports is a reasonable default.
    """

    small_size: int = 1
    large_size: int = 512 * MiB
    repetitions: int = 10
    memory: MemoryKind = MemoryKind.PINNED

    def __post_init__(self) -> None:
        check_positive("small_size", self.small_size)
        check_positive("large_size", self.large_size)
        check_positive("repetitions", self.repetitions)
        if self.large_size <= self.small_size:
            raise ValueError(
                "large_size must exceed small_size "
                f"({self.large_size} <= {self.small_size})"
            )


class Calibrator:
    """Measures alpha and beta on a channel and builds the bus model."""

    def __init__(
        self,
        channel: TransferChannel,
        config: CalibrationConfig | None = None,
    ) -> None:
        self._channel = channel
        self._config = config or CalibrationConfig()

    @property
    def config(self) -> CalibrationConfig:
        return self._config

    def _mean_time(self, size: int, direction: Direction) -> float:
        cfg = self._config
        samples = [
            self._channel.transfer_time(size, direction, cfg.memory)
            for _ in range(cfg.repetitions)
        ]
        return arithmetic_mean(samples)

    def calibrate_direction(self, direction: Direction) -> LinearTransferModel:
        """Run the 2-point benchmark for one direction."""
        cfg = self._config
        t_small = self._mean_time(cfg.small_size, direction)
        t_large = self._mean_time(cfg.large_size, direction)
        return LinearTransferModel.from_two_points(
            t_small, t_large, cfg.large_size
        )

    def calibrate(self) -> BusModel:
        """Calibrate both directions (the full synthetic benchmark)."""
        return BusModel(
            h2d=self.calibrate_direction(Direction.H2D),
            d2h=self.calibrate_direction(Direction.D2H),
        )


def calibrate_bus(
    channel: TransferChannel, config: CalibrationConfig | None = None
) -> BusModel:
    """One-call calibration, as GROPHECY++ does on a new system."""
    return Calibrator(channel, config).calibrate()
