"""Bus-model presets for later PCIe generations (what-if analyses).

The paper (Section II-B) quotes effective PCIe bandwidths of ~3, 6, and
12 GB/s for generations 1, 2, and 3.  The testbed calibrates generation 1
empirically; these analytic presets let users ask how the conclusions
shift on newer buses without a testbed for them.
"""

from __future__ import annotations

from repro.pcie.model import BusModel, LinearTransferModel
from repro.util.units import us


def pcie_gen1_bus() -> BusModel:
    """Nominal PCIe v1 x16 (the paper's bus class, ~2.5-3 GB/s)."""
    return BusModel(
        h2d=LinearTransferModel(alpha=us(10), beta=1 / 2.5e9),
        d2h=LinearTransferModel(alpha=us(9), beta=1 / 2.6e9),
    )


def pcie_gen2_bus() -> BusModel:
    """Nominal PCIe v2 x16 (~6 GB/s effective, slightly lower latency)."""
    return BusModel(
        h2d=LinearTransferModel(alpha=us(8), beta=1 / 6.0e9),
        d2h=LinearTransferModel(alpha=us(8), beta=1 / 6.2e9),
    )


def pcie_gen3_bus() -> BusModel:
    """Nominal PCIe v3 x16 (~12 GB/s effective)."""
    return BusModel(
        h2d=LinearTransferModel(alpha=us(7), beta=1 / 12.0e9),
        d2h=LinearTransferModel(alpha=us(7), beta=1 / 12.3e9),
    )


def bus_for_generation(generation: int) -> BusModel:
    """Bus model for PCIe generation 1, 2, or 3."""
    factories = {1: pcie_gen1_bus, 2: pcie_gen2_bus, 3: pcie_gen3_bus}
    if generation not in factories:
        raise ValueError(
            f"unknown PCIe generation {generation}; know {sorted(factories)}"
        )
    return factories[generation]()
