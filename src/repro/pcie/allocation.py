"""Memory-allocation overhead modeling (the paper's stated future work).

The paper's conclusion lists "account for the overhead of memory
allocation" as future work: before any transfer can happen, the port must
``cudaMalloc`` device buffers and — if it wants fast transfers —
``cudaHostAlloc`` pinned host buffers, which page-lock memory and are an
order of magnitude more expensive than ``malloc``.  For applications that
run few iterations, allocation can rival the transfers themselves.

Like the transfer model, allocation cost is modeled linearly per call:
``T(n) = alpha + beta * n``.  The preset constants are CUDA-2.3-era
estimates (documented per field); on real hardware they would be
calibrated by the same kind of micro-benchmark as the bus model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datausage.transfers import TransferPlan
from repro.pcie.channel import MemoryKind
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class AllocationCost:
    """Linear per-call cost: ``alpha + beta * bytes``."""

    alpha: float  # seconds per call
    beta: float  # seconds per byte

    def __post_init__(self) -> None:
        check_non_negative("alpha", self.alpha)
        check_non_negative("beta", self.beta)

    def time(self, size_bytes: float) -> float:
        check_non_negative("size_bytes", size_bytes)
        return self.alpha + self.beta * size_bytes


@dataclass(frozen=True)
class AllocationModel:
    """Allocation costs for the three buffer classes a port needs."""

    device: AllocationCost
    pinned_host: AllocationCost
    pageable_host: AllocationCost

    def host_cost(self, memory: MemoryKind) -> AllocationCost:
        return (
            self.pinned_host
            if memory is MemoryKind.PINNED
            else self.pageable_host
        )

    def plan_setup_time(
        self, plan: TransferPlan, memory: MemoryKind = MemoryKind.PINNED
    ) -> float:
        """One-time allocation cost of implementing a transfer plan.

        One device buffer per distinct array in the plan, plus one host
        buffer of the matching kind per distinct array (the port re-homes
        its host arrays into pinned buffers to get pinned transfer rates).
        """
        sizes: dict[str, int] = {}
        for transfer in plan.transfers:
            sizes[transfer.array] = max(
                sizes.get(transfer.array, 0), transfer.bytes
            )
        host = self.host_cost(memory)
        return sum(
            self.device.time(n) + host.time(n) for n in sizes.values()
        )


def cuda23_era_allocation_model() -> AllocationModel:
    """Plausible CUDA 2.3 / G80-era allocation costs.

    - ``cudaMalloc``: ~90 us driver round trip, ~50 us/GiB bookkeeping;
    - ``cudaHostAlloc``: ~230 us plus page-locking at ~400 us/GiB;
    - ``malloc``: ~8 us, lazily mapped (per-byte cost negligible until
      first touch, which the CPU baseline pays anyway).
    """
    return AllocationModel(
        device=AllocationCost(alpha=90e-6, beta=5e-14),
        pinned_host=AllocationCost(alpha=230e-6, beta=4e-13),
        pageable_host=AllocationCost(alpha=8e-6, beta=0.0),
    )
