"""JSONL batch runner: N request records in, N result records out.

Request records are one JSON object per line.  Exactly one skeleton
source is required:

- ``{"workload": "SRAD", "dataset": "503 x 458"}`` — a registry
  workload (``dataset`` optional: defaults to the largest); the
  workload's own analysis hints apply;
- ``{"skeleton_file": "examples/skeletons/jacobi2d.skel"}`` — a text
  skeleton on disk (relative paths resolve against the requests file);
- ``{"skeleton": "program p\\n..."}`` — an inline text skeleton.

Optional fields: ``id`` (echoed in the result; defaults to the line
number), ``iterations``, ``cpu_ms`` (enables a speedup verdict),
``arch`` (``quadro_fx_5600`` | ``tesla_c1060`` | ``gtx_280``),
``pcie_gen`` (1 | 2 | 3 — an analytic bus preset instead of the
engine's calibrated bus), ``batched_transfers``, ``temporaries`` (extra
temporary-array hints), and ``sparse_extents`` (array name -> referenced
element count).

Every request is isolated: a malformed line, an unknown workload, an
unparsable skeleton, or a timeout produces an *error record* in the
output — never an aborted batch.  Results are written in input order.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.gpu.arch import (
    GPUArchitecture,
    gtx_280,
    quadro_fx_5600,
    tesla_c1060,
)
from repro.pcie.presets import bus_for_generation
from repro.service.engine import (
    ProjectionEngine,
    ProjectionRequest,
    ProjectionResponse,
)
from repro.skeleton.parser import parse_skeleton, parse_skeleton_file
from repro.workloads.registry import get_workload

_ARCHS: dict[str, Callable[[], GPUArchitecture]] = {
    "quadro_fx_5600": quadro_fx_5600,
    "tesla_c1060": tesla_c1060,
    "gtx_280": gtx_280,
}

_SOURCE_FIELDS = ("workload", "skeleton_file", "skeleton")


class BadRequestError(ValueError):
    """A single malformed batch record (isolated, never fatal)."""


@dataclass(frozen=True)
class BatchRecord:
    """One output row: a response or an isolated error."""

    request_id: str
    ok: bool
    response: ProjectionResponse | None = None
    error: str = ""

    def to_dict(self) -> dict[str, Any]:
        if self.ok:
            assert self.response is not None
            return self.response.to_dict()
        return {"id": self.request_id, "ok": False, "error": self.error}


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run."""

    records: tuple[BatchRecord, ...]
    elapsed: float
    metrics: dict[str, Any]
    output_path: str

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def hit_count(self) -> int:
        return sum(
            1 for r in self.records if r.ok and r.response.cached
        )

    def report(self) -> str:
        """One-paragraph human summary of the run."""
        lines = [
            f"batch: {len(self.records)} request(s) -> {self.output_path}",
            f"  ok {self.ok_count}, errors {self.error_count}, "
            f"cache hits {self.hit_count}/{len(self.records)}",
            f"  wall time {self.elapsed:.3f}s",
        ]
        for record in self.records:
            if not record.ok:
                lines.append(f"  error [{record.request_id}]: {record.error}")
        return "\n".join(lines)


def parse_request(
    data: Any, index: int, base_dir: Path
) -> ProjectionRequest:
    """Turn one decoded JSONL record into a :class:`ProjectionRequest`.

    Raises :class:`BadRequestError` with a one-line message on any
    malformed field; the caller converts that into an error record.
    """
    if not isinstance(data, dict):
        raise BadRequestError(
            f"record must be a JSON object, got {type(data).__name__}"
        )
    request_id = str(data.get("id") or f"request-{index + 1}")
    sources = [f for f in _SOURCE_FIELDS if f in data]
    if len(sources) != 1:
        raise BadRequestError(
            "need exactly one of 'workload', 'skeleton_file', 'skeleton'"
            f" (got {sources or 'none'})"
        )

    hints: AnalysisHints | None = None
    try:
        if sources[0] == "workload":
            workload = get_workload(str(data["workload"]))
            label = data.get("dataset")
            dataset = (
                workload.dataset(str(label))
                if label is not None
                else max(workload.datasets(), key=lambda d: d.size)
            )
            program = workload.skeleton(dataset)
            hints = workload.hints(dataset)
        elif sources[0] == "skeleton_file":
            path = Path(str(data["skeleton_file"]))
            if not path.is_absolute():
                path = base_dir / path
            program = parse_skeleton_file(str(path))
        else:
            program = parse_skeleton(str(data["skeleton"]))
    except (KeyError, OSError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        raise BadRequestError(str(message)) from exc

    extra_temporaries = data.get("temporaries", ())
    sparse_extents = data.get("sparse_extents", {})
    if extra_temporaries or sparse_extents:
        base = hints or AnalysisHints.none()
        try:
            hints = AnalysisHints(
                extra_temporaries=base.extra_temporaries
                | frozenset(str(n) for n in extra_temporaries),
                sparse_extents=base.sparse_extents
                + tuple(
                    SparseExtentHint(str(name), int(count))
                    for name, count in dict(sparse_extents).items()
                ),
            )
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"bad hints: {exc}") from exc

    arch = None
    if "arch" in data:
        name = str(data["arch"]).lower()
        if name not in _ARCHS:
            raise BadRequestError(
                f"unknown arch {data['arch']!r}; know {sorted(_ARCHS)}"
            )
        arch = _ARCHS[name]()
    bus = None
    if "pcie_gen" in data:
        try:
            bus = bus_for_generation(int(data["pcie_gen"]))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(str(exc)) from exc

    try:
        iterations = int(data.get("iterations", 1))
        cpu_ms = data.get("cpu_ms")
        cpu_seconds = float(cpu_ms) * 1e-3 if cpu_ms is not None else None
        return ProjectionRequest(
            program=program,
            hints=hints,
            arch=arch,
            bus=bus,
            batched_transfers=bool(data.get("batched_transfers", False)),
            iterations=iterations,
            cpu_seconds=cpu_seconds,
            request_id=request_id,
        )
    except (TypeError, ValueError) as exc:
        raise BadRequestError(str(exc)) from exc


def run_batch(
    requests_path: str | Path,
    output_path: str | Path | None = None,
    engine: ProjectionEngine | None = None,
    max_workers: int = 4,
    timeout: float | None = None,
) -> BatchResult:
    """Project every record of a JSONL file with bounded concurrency.

    ``timeout`` (seconds) bounds each request's wall time; a request
    that exceeds it yields an error record while the rest of the batch
    completes.  The output file (default: ``<input>.results.jsonl``)
    receives one JSON line per input record, in input order.
    """
    requests_path = Path(requests_path)
    if output_path is None:
        output_path = requests_path.with_suffix(
            requests_path.suffix + ".results.jsonl"
        )
    output_path = Path(output_path)
    engine = engine or ProjectionEngine(max_workers=max_workers)

    start = time.perf_counter()
    with open(requests_path, encoding="utf-8") as fh:
        lines = fh.readlines()

    # Parse every record first; parse failures become error records.
    parsed: list[tuple[str, ProjectionRequest | None, str]] = []
    for index, line in enumerate(line for line in lines if line.strip()):
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            parsed.append((f"request-{index + 1}", None, f"bad JSON: {exc}"))
            continue
        try:
            request = parse_request(data, index, requests_path.parent)
        except BadRequestError as exc:
            request_id = (
                str(data.get("id") or f"request-{index + 1}")
                if isinstance(data, dict)
                else f"request-{index + 1}"
            )
            parsed.append((request_id, None, str(exc)))
            continue
        parsed.append((request.request_id, request, ""))

    # Project the valid ones with bounded concurrency; isolate failures.
    records: list[BatchRecord | None] = [None] * len(parsed)
    pending: list[tuple[int, Future[ProjectionResponse]]] = []
    pool = ThreadPoolExecutor(max_workers=max(1, max_workers))
    try:
        for slot, (request_id, request, error) in enumerate(parsed):
            if request is None:
                records[slot] = BatchRecord(request_id, False, error=error)
            else:
                pending.append(
                    (slot, pool.submit(engine.project, request, 1))
                )
        for slot, future in pending:
            request_id = parsed[slot][0]
            try:
                response = future.result(timeout=timeout)
                records[slot] = BatchRecord(
                    request_id, True, response=response
                )
            except TimeoutError:
                future.cancel()
                records[slot] = BatchRecord(
                    request_id,
                    False,
                    error=f"timed out after {timeout:g}s",
                )
                engine.metrics.incr("timeouts")
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                message = str(exc.args[0] if exc.args else exc)
                records[slot] = BatchRecord(
                    request_id,
                    False,
                    error=message.splitlines()[0] if message else repr(exc),
                )
                engine.metrics.incr("errors")
    finally:
        # Don't block the batch on a worker that outlived its timeout —
        # its thread finishes in the background, the record already says
        # "timed out".
        pool.shutdown(wait=False, cancel_futures=True)

    done = tuple(r for r in records if r is not None)
    with open(output_path, "w", encoding="utf-8") as fh:
        for record in done:
            fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    return BatchResult(
        records=done,
        elapsed=time.perf_counter() - start,
        metrics=engine.metrics.snapshot(),
        output_path=str(output_path),
    )
