"""JSONL batch runner: N request records in, N result records out.

Request records are one JSON object per line.  Exactly one skeleton
source is required:

- ``{"workload": "SRAD", "dataset": "503 x 458"}`` — a registry
  workload (``dataset`` optional: defaults to the largest); the
  workload's own analysis hints apply;
- ``{"skeleton_file": "examples/skeletons/jacobi2d.skel"}`` — a text
  skeleton on disk (relative paths resolve against the requests file);
- ``{"skeleton": "program p\\n..."}`` — an inline text skeleton.

Optional fields: ``id`` (echoed in the result; defaults to the line
number), ``iterations``, ``cpu_ms`` (enables a speedup verdict),
``arch`` (any :mod:`repro.gpu.registry` id — ``python -m repro arch
list`` shows the fleet),
``pcie_gen`` (1 | 2 | 3 — an analytic bus preset instead of the
engine's calibrated bus), ``batched_transfers``, ``temporaries`` (extra
temporary-array hints), and ``sparse_extents`` (array name -> referenced
element count).

Every request is isolated: a malformed line, an unknown workload, an
unparsable skeleton, or a timeout produces an *error record* in the
output — never an aborted batch.  Parse failures carry a structured
``{error, field, hint}`` form (see :class:`BadRequestError`) that the
CLI prints on stderr and the daemon returns as HTTP 400 bodies, so
every surface reports the same diagnosis.  Results are written in input
order.

The parsing/projection halves are exposed separately
(:func:`parse_jsonl` / :func:`parse_objects` and
:func:`project_parsed`) so the long-running daemon
(:mod:`repro.daemon`) can serve the exact record shapes this module
writes without going through a file.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import Future, TimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.datausage.hints import AnalysisHints, SparseExtentHint
from repro.gpu.registry import (
    UnknownArchitectureError,
    get_arch,
)
from repro.obs.metrics import nearest_rank
from repro.pcie.presets import bus_for_generation
from repro.service.engine import (
    ProjectionEngine,
    ProjectionRequest,
    ProjectionResponse,
)
from repro.service.parallel import shared_pool
from repro.skeleton.parser import parse_skeleton, parse_skeleton_file
from repro.workloads.registry import get_workload

_SOURCE_FIELDS = ("workload", "skeleton_file", "skeleton")


class BadRequestError(ValueError):
    """A single malformed batch record (isolated, never fatal).

    Carries the offending ``field`` (when one is identifiable) and a
    remediation ``hint`` alongside the message; :meth:`to_dict` is the
    shared ``{error, field, hint}`` JSON form that batch error records,
    CLI stderr, and daemon 400 responses all print.
    """

    def __init__(
        self,
        message: str,
        *,
        field: str | None = None,
        hint: str | None = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.hint = hint

    def to_dict(self) -> dict[str, str]:
        """The structured ``{error, field, hint}`` form (Nones omitted)."""
        record = {"error": str(self)}
        if self.field is not None:
            record["field"] = self.field
        if self.hint is not None:
            record["hint"] = self.hint
        return record


@dataclass(frozen=True)
class ParsedRecord:
    """One request record after parsing: a request or its diagnosis."""

    request_id: str
    request: ProjectionRequest | None = None
    error: BadRequestError | None = None


@dataclass(frozen=True)
class BatchRecord:
    """One output row: a response or an isolated error."""

    request_id: str
    ok: bool
    response: ProjectionResponse | None = None
    error: str = ""
    field: str | None = None
    hint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        if self.ok:
            assert self.response is not None
            return self.response.to_dict()
        record: dict[str, Any] = {
            "id": self.request_id,
            "ok": False,
            "error": self.error,
        }
        if self.field is not None:
            record["field"] = self.field
        if self.hint is not None:
            record["hint"] = self.hint
        return record

    @classmethod
    def from_bad_request(
        cls, request_id: str, exc: BadRequestError
    ) -> "BatchRecord":
        return cls(
            request_id,
            False,
            error=str(exc),
            field=exc.field,
            hint=exc.hint,
        )


def summary_lines(
    total: int,
    ok: int,
    errors: int,
    hits: int,
    p95_seconds: float | None,
    elapsed: float | None = None,
) -> list[str]:
    """The shared batch/daemon summary block (counts + cache + p95).

    ``python -m repro batch`` and ``python -m repro daemon status``
    print exactly these lines, so operators read one format everywhere.
    """
    line = f"  ok {ok}, errors {errors}, cache hits {hits}/{total}"
    if ok:
        line += f" ({hits / ok:.1%} hit rate)"
    lines = [line]
    timing = ""
    if elapsed is not None:
        timing = f"  wall time {elapsed:.3f}s"
    if p95_seconds is not None:
        timing += ("," if timing else " ") + (
            f" p95 per-request {p95_seconds * 1e3:.2f} ms"
        )
    if timing:
        lines.append(timing)
    return lines


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run."""

    records: tuple[BatchRecord, ...]
    elapsed: float
    metrics: dict[str, Any]
    output_path: str

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def hit_count(self) -> int:
        return sum(
            1 for r in self.records if r.ok and r.response.cached
        )

    def p95_seconds(self) -> float | None:
        """p95 serving latency over the ok records (None without any)."""
        seconds = [
            r.response.seconds for r in self.records if r.ok
        ]
        if not seconds:
            return None
        return nearest_rank(seconds, 0.95)

    def report(self) -> str:
        """One-paragraph human summary of the run."""
        lines = [
            f"batch: {len(self.records)} request(s) -> {self.output_path}",
            *summary_lines(
                len(self.records),
                self.ok_count,
                self.error_count,
                self.hit_count,
                self.p95_seconds(),
                self.elapsed,
            ),
        ]
        for record in self.records:
            if not record.ok:
                lines.append(f"  error [{record.request_id}]: {record.error}")
        return "\n".join(lines)


def parse_request(
    data: Any, index: int, base_dir: Path
) -> ProjectionRequest:
    """Turn one decoded JSONL record into a :class:`ProjectionRequest`.

    Raises :class:`BadRequestError` — with the offending field and a
    hint where identifiable — on any malformed record; the caller
    converts that into an error record (or a daemon 400 response).
    """
    if not isinstance(data, dict):
        raise BadRequestError(
            f"record must be a JSON object, got {type(data).__name__}",
            hint="write one {...} request per line",
        )
    request_id = str(data.get("id") or f"request-{index + 1}")
    sources = [f for f in _SOURCE_FIELDS if f in data]
    if len(sources) != 1:
        raise BadRequestError(
            "need exactly one of 'workload', 'skeleton_file', 'skeleton'"
            f" (got {sources or 'none'})",
            hint="pick a registry workload, a skeleton file, or an "
            "inline skeleton — not several, not none",
        )

    hints: AnalysisHints | None = None
    source = sources[0]
    try:
        if source == "workload":
            workload = get_workload(str(data["workload"]))
            label = data.get("dataset")
            try:
                dataset = (
                    workload.dataset(str(label))
                    if label is not None
                    else max(workload.datasets(), key=lambda d: d.size)
                )
            except (KeyError, ValueError) as exc:
                raise BadRequestError(
                    str(exc.args[0] if exc.args else exc),
                    field="dataset",
                    hint="`python -m repro list` shows each workload's "
                    "datasets",
                ) from exc
            program = workload.skeleton(dataset)
            hints = workload.hints(dataset)
        elif source == "skeleton_file":
            path = Path(str(data["skeleton_file"]))
            if not path.is_absolute():
                path = base_dir / path
            program = parse_skeleton_file(str(path))
        else:
            program = parse_skeleton(str(data["skeleton"]))
    except BadRequestError:
        raise
    except (KeyError, OSError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        hint = None
        if source == "workload":
            hint = "`python -m repro list` shows the registry"
        raise BadRequestError(
            str(message), field=source, hint=hint
        ) from exc

    extra_temporaries = data.get("temporaries", ())
    sparse_extents = data.get("sparse_extents", {})
    if extra_temporaries or sparse_extents:
        base = hints or AnalysisHints.none()
        try:
            hints = AnalysisHints(
                extra_temporaries=base.extra_temporaries
                | frozenset(str(n) for n in extra_temporaries),
                sparse_extents=base.sparse_extents
                + tuple(
                    SparseExtentHint(str(name), int(count))
                    for name, count in dict(sparse_extents).items()
                ),
            )
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"bad hints: {exc}",
                field="sparse_extents" if sparse_extents else "temporaries",
                hint="sparse_extents maps array name -> element count; "
                "temporaries is a list of array names",
            ) from exc

    arch = None
    if "arch" in data:
        try:
            arch = get_arch(str(data["arch"]).lower())
        except UnknownArchitectureError as exc:
            raise BadRequestError(
                str(exc), field="arch", hint=exc.hint
            ) from exc
    bus = None
    if "pcie_gen" in data:
        try:
            bus = bus_for_generation(int(data["pcie_gen"]))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                str(exc), field="pcie_gen", hint="1, 2, or 3"
            ) from exc

    try:
        iterations = int(data.get("iterations", 1))
        cpu_ms = data.get("cpu_ms")
        cpu_seconds = float(cpu_ms) * 1e-3 if cpu_ms is not None else None
        return ProjectionRequest(
            program=program,
            hints=hints,
            arch=arch,
            bus=bus,
            batched_transfers=bool(data.get("batched_transfers", False)),
            iterations=iterations,
            cpu_seconds=cpu_seconds,
            request_id=request_id,
        )
    except (TypeError, ValueError) as exc:
        message = str(exc.args[0] if exc.args else exc)
        field = "cpu_ms" if "cpu_seconds" in message else "iterations"
        raise BadRequestError(
            message,
            field=field,
            hint="iterations is a positive integer; cpu_ms a positive "
            "number of milliseconds",
        ) from exc


def parse_objects(
    objects: Iterable[Any], base_dir: Path
) -> list[ParsedRecord]:
    """Parse decoded request objects; failures become diagnoses."""
    parsed: list[ParsedRecord] = []
    for index, data in enumerate(objects):
        try:
            request = parse_request(data, index, base_dir)
        except BadRequestError as exc:
            request_id = (
                str(data.get("id") or f"request-{index + 1}")
                if isinstance(data, dict)
                else f"request-{index + 1}"
            )
            parsed.append(ParsedRecord(request_id, error=exc))
            continue
        parsed.append(ParsedRecord(request.request_id, request=request))
    return parsed


def parse_jsonl(
    lines: Iterable[str], base_dir: Path
) -> list[ParsedRecord]:
    """Decode + parse JSONL request lines (blank lines skipped)."""
    parsed: list[ParsedRecord] = []
    index = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            parsed.append(
                ParsedRecord(
                    f"request-{index + 1}",
                    error=BadRequestError(
                        f"bad JSON: {exc}",
                        hint="each line must be one JSON object",
                    ),
                )
            )
            index += 1
            continue
        try:
            request = parse_request(data, index, base_dir)
        except BadRequestError as exc:
            request_id = (
                str(data.get("id") or f"request-{index + 1}")
                if isinstance(data, dict)
                else f"request-{index + 1}"
            )
            parsed.append(ParsedRecord(request_id, error=exc))
        else:
            parsed.append(
                ParsedRecord(request.request_id, request=request)
            )
        index += 1
    return parsed


def project_parsed(
    parsed: Sequence[ParsedRecord],
    engine: ProjectionEngine,
    max_workers: int = 1,
    timeout: float | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> tuple[BatchRecord, ...]:
    """Project parsed records with bounded concurrency, in input order.

    Parse diagnoses pass straight through as error records; projection
    failures and timeouts are isolated per record.  ``should_stop`` is
    polled before each *submission* — when it turns true the remaining
    records become ``cancelled`` error records (the daemon's
    cooperative job cancellation; a one-shot batch never passes it).

    Work fans out through the module-level shared pool
    (:func:`repro.service.parallel.shared_pool`), so successive batches
    — and the daemon scheduler between them — reuse one warm executor
    instead of paying pool construction per call.  With no pool
    available (or ``max_workers <= 1``) requests run serially inline.
    """
    records: list[BatchRecord | None] = [None] * len(parsed)
    pending: list[tuple[int, Future[ProjectionResponse]]] = []
    pool = shared_pool(max(1, max_workers)) if max_workers > 1 else None

    def _serial(request: ProjectionRequest) -> Future:
        future: Future = Future()
        try:
            future.set_result(engine.project(request, 1))
        except BaseException as exc:  # noqa: BLE001 - isolated per record
            future.set_exception(exc)
        return future

    try:
        for slot, item in enumerate(parsed):
            if item.error is not None:
                records[slot] = BatchRecord.from_bad_request(
                    item.request_id, item.error
                )
            elif should_stop is not None and should_stop():
                records[slot] = BatchRecord(
                    item.request_id, False, error="cancelled"
                )
            elif pool is None:
                pending.append((slot, _serial(item.request)))
            else:
                try:
                    future = pool.submit(engine.project, item.request, 1)
                except RuntimeError:  # raced an explicit shutdown_pool()
                    pool = None
                    future = _serial(item.request)
                pending.append((slot, future))
        for slot, future in pending:
            request_id = parsed[slot].request_id
            try:
                response = future.result(timeout=timeout)
                records[slot] = BatchRecord(
                    request_id, True, response=response
                )
            except TimeoutError:
                future.cancel()
                records[slot] = BatchRecord(
                    request_id,
                    False,
                    error=f"timed out after {timeout:g}s",
                )
                engine.metrics.incr("timeouts")
            except Exception as exc:  # noqa: BLE001 - per-request isolation
                message = str(exc.args[0] if exc.args else exc)
                records[slot] = BatchRecord(
                    request_id,
                    False,
                    error=message.splitlines()[0] if message else repr(exc),
                )
                engine.metrics.incr("errors")
    finally:
        # The pool is shared and stays up; just make sure nothing this
        # batch queued keeps running after we've already written its
        # record (a worker that outlived its timeout finishes in the
        # background — the record already says "timed out").
        for _slot, future in pending:
            if not future.done():
                future.cancel()

    return tuple(r for r in records if r is not None)


def run_batch(
    requests_path: str | Path,
    output_path: str | Path | None = None,
    engine: ProjectionEngine | None = None,
    max_workers: int = 4,
    timeout: float | None = None,
) -> BatchResult:
    """Project every record of a JSONL file with bounded concurrency.

    ``timeout`` (seconds) bounds each request's wall time; a request
    that exceeds it yields an error record while the rest of the batch
    completes.  The output file (default: ``<input>.results.jsonl``)
    receives one JSON line per input record, in input order.
    """
    requests_path = Path(requests_path)
    if output_path is None:
        output_path = requests_path.with_suffix(
            requests_path.suffix + ".results.jsonl"
        )
    output_path = Path(output_path)
    engine = engine or ProjectionEngine(max_workers=max_workers)

    start = time.perf_counter()
    with open(requests_path, encoding="utf-8") as fh:
        lines = fh.readlines()

    parsed = parse_jsonl(lines, requests_path.parent)
    records = project_parsed(
        parsed, engine, max_workers=max_workers, timeout=timeout
    )
    with open(output_path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    return BatchResult(
        records=records,
        elapsed=time.perf_counter() - start,
        metrics=engine.metrics.snapshot(),
        output_path=str(output_path),
    )
