"""The projection engine: batched, cached, parallel GROPHECY++.

:class:`ProjectionEngine` serves :class:`ProjectionRequest`s — single or
batched — and returns structured :class:`ProjectionResponse`s.  Compared
to calling :class:`~repro.core.projector.GrophecyPlusPlus` directly it
adds:

- **content-addressed caching**: results are keyed by a stable
  fingerprint of skeleton + GPU architecture + bus model + explorer
  options, so repeated projections (parameter sweeps, what-if studies,
  the figure harness) cost a dictionary lookup instead of a
  transformation-space search;
- **parallelism**: independent kernels — or, for single-kernel
  programs, chunks of the transformation space — fan out across a
  worker pool with deterministic result ordering;
- **metrics**: every request feeds counters (requests, cache hits and
  misses, candidates explored) and per-stage timers (explore, analyze,
  predict).

The iteration count deliberately stays *out* of the cache key: a
projection is iteration-independent (kernel time scales, the transfer
set does not — paper Section IV-B), so asking for 1 and 500 iterations
of the same skeleton is one exploration and two cheap reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.prediction import Projection
from repro.core.serialize import ProjectionSummary, summarize_projection
from repro.datausage.analyzer import analyze_transfers
from repro.datausage.hints import AnalysisHints
from repro.gpu.arch import GPUArchitecture, quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.obs.provenance import build_provenance
from repro.obs.trace import span as trace_span
from repro.pcie.model import BusModel
from repro.pcie.presets import pcie_gen1_bus
from repro.service.cache import KernelProjectionCache, ProjectionCache
from repro.service.metrics import ServiceMetrics
from repro.service.parallel import (
    explore_kernel_parallel,
    map_ordered,
    project_kernels_parallel,
    shutdown_pool,
    shutdown_stream_pool,
)
from repro.skeleton.arrays import ArrayDecl
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton, kernel_fingerprint
from repro.transform.explorer import KernelProjection, ProgramProjection
from repro.transform.space import TransformationSpace
from repro.transform.stream import StreamingExplorer
from repro.util.fingerprint import stable_digest
from repro.util.validation import check_positive

#: Fingerprint schema version; bump when the key derivation changes.
KEY_FORMAT = 1


@dataclass(frozen=True)
class ProjectionRequest:
    """One unit of work for the engine.

    ``arch``, ``bus``, and ``space`` override the engine defaults when
    given; ``iterations`` and ``cpu_seconds`` only shape the response
    (total time, speedup verdict) and never affect the cache key.
    """

    program: ProgramSkeleton
    hints: AnalysisHints | None = None
    arch: GPUArchitecture | None = None
    bus: BusModel | None = None
    space: TransformationSpace | None = None
    batched_transfers: bool = False
    iterations: int = 1
    cpu_seconds: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations)
        if self.cpu_seconds is not None:
            check_positive("cpu_seconds", self.cpu_seconds)


@dataclass(frozen=True)
class ProjectionResponse:
    """The engine's answer: summary + provenance + serving cost."""

    request_id: str
    fingerprint: str
    summary: ProjectionSummary
    cached: bool
    seconds: float  # wall time spent serving this request
    iterations: int
    cpu_seconds: float | None = None
    #: The full projection object — only populated on a cache miss (a
    #: hit reconstructs the summary, which is all the cache stores).
    projection: Projection | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def total_seconds(self) -> float:
        """Projected end-to-end GPU time at the requested iterations."""
        return self.summary.total_seconds(self.iterations)

    @property
    def speedup(self) -> float | None:
        """Projected speedup vs the supplied CPU time (None without)."""
        if self.cpu_seconds is None:
            return None
        return self.summary.speedup(self.cpu_seconds, self.iterations)

    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready record (the batch runner's output row)."""
        record: dict[str, Any] = {
            "id": self.request_id,
            "ok": True,
            "cached": self.cached,
            "seconds": self.seconds,
            "fingerprint": self.fingerprint,
            "iterations": self.iterations,
            "total_seconds": self.total_seconds,
            "projection": self.summary.to_dict(),
        }
        if self.speedup is not None:
            record["speedup"] = self.speedup
        return record


class ProjectionEngine:
    """Serves projection requests with caching, fan-out, and metrics."""

    def __init__(
        self,
        arch: GPUArchitecture | None = None,
        bus: BusModel | None = None,
        space: TransformationSpace | None = None,
        cache: ProjectionCache | None = None,
        metrics: ServiceMetrics | None = None,
        max_workers: int = 1,
        explorer: str = "fast",
        prune: bool = False,
        kernel_cache: KernelProjectionCache | None = None,
        kernel_cache_capacity: int = 512,
        provenance: bool = False,
    ) -> None:
        """``cache=None`` disables result caching; ``bus=None`` uses the
        nominal PCIe gen-1 preset (the paper's bus class) — pass a
        calibrated :class:`BusModel` for real projections.

        ``explorer``/``prune`` select the exploration path (see
        ``docs/EXPLORER.md``): ``fast`` (vectorized, full candidate
        table), ``reference`` (the scalar oracle), or ``stream`` (the
        fused argmin-only scorer).  fast/reference never enter the
        *request* cache key: both produce the identical
        :class:`ProjectionSummary` (same best mapping, same seconds,
        same ``search_width`` — pruned configs still count toward the
        width), so cached entries stay valid across those switches.
        ``stream`` summaries carry argmin-only tables and are keyed
        separately (see :meth:`fingerprint`).

        A second, finer cache sits under the request cache: exploration
        results are kept per *kernel*, keyed by kernel content + arch +
        space (``prune`` included — it shapes the candidate tables; the
        bus deliberately excluded — kernel time is bus-independent).  A
        what-if study that re-projects the same program over PCIe
        generations misses the request cache (the bus is in its key) but
        skips every transformation-space search.  Pass ``kernel_cache``
        to share one across engines, or ``kernel_cache_capacity=0`` to
        disable the tier.

        ``provenance=True`` attaches a
        :class:`~repro.obs.provenance.ProjectionProvenance` record to
        every freshly computed summary (see ``docs/OBSERVABILITY.md``).
        Provenance never enters the request fingerprint — cache keys are
        identical with it on or off; a cache hit serves whatever the
        storing engine recorded.
        """
        check_positive("max_workers", max_workers)
        if kernel_cache_capacity < 0:
            raise ValueError(
                f"kernel_cache_capacity must be >= 0, got "
                f"{kernel_cache_capacity}"
            )
        if explorer not in ("fast", "reference", "stream"):
            raise ValueError(
                f"unknown explorer {explorer!r}: expected 'fast', "
                f"'reference', or 'stream'"
            )
        self._arch = arch or quadro_fx_5600()
        self._bus = bus or pcie_gen1_bus()
        self._space = space or TransformationSpace.default()
        self._cache = cache
        if kernel_cache is not None:
            self._kernel_cache: KernelProjectionCache | None = kernel_cache
        elif kernel_cache_capacity > 0:
            self._kernel_cache = KernelProjectionCache(kernel_cache_capacity)
        else:
            self._kernel_cache = None
        self._max_workers = max_workers
        self._explorer = explorer
        self._prune = prune
        self._provenance = provenance
        self.metrics = metrics or ServiceMetrics()
        self._models: dict[str, GpuPerformanceModel] = {}
        #: arch name -> warm streaming explorer (``explorer="stream"``);
        #: keeps analyses, column grids, and the scratch arena hot across
        #: requests for the same architecture.
        self._stream_explorers: dict[str, StreamingExplorer] = {}

    # Defaults ------------------------------------------------------------
    @property
    def arch(self) -> GPUArchitecture:
        return self._arch

    @property
    def bus(self) -> BusModel:
        return self._bus

    @property
    def space(self) -> TransformationSpace:
        return self._space

    @property
    def cache(self) -> ProjectionCache | None:
        return self._cache

    @property
    def kernel_cache(self) -> KernelProjectionCache | None:
        return self._kernel_cache

    @property
    def provenance_enabled(self) -> bool:
        """Whether fresh summaries carry a provenance record.

        The surrogate front-end reads this to route provenance-requesting
        engines to the exact path in ``auto`` mode — provenance is an
        exact-pipeline artifact, there is nothing a learned estimate
        could honestly put in one.
        """
        return self._provenance

    # Keying --------------------------------------------------------------
    def fingerprint(self, request: ProjectionRequest) -> str:
        """Cache key: everything that determines the projection result."""
        arch = request.arch or self._arch
        bus = request.bus or self._bus
        space = request.space or self._space
        hints = request.hints or AnalysisHints.none()
        options: dict[str, Any] = {
            "batched_transfers": request.batched_transfers
        }
        if self._explorer == "stream":
            # fast/reference summaries are interchangeable (identical
            # best mapping, seconds, and search_width), so the explorer
            # stays out of their keys.  Stream summaries carry argmin-only
            # tables (search_width 1) — key them separately so neither
            # side serves the other's entries.
            options["explorer"] = "stream"
        return stable_digest(
            {
                "format": KEY_FORMAT,
                "skeleton": request.program.fingerprint(),
                "hints": hints.fingerprint(),
                "arch": arch.fingerprint(),
                "bus": bus.fingerprint(),
                "space": space.fingerprint(),
                "options": options,
            }
        )

    def _kernel_key(
        self,
        kernel: KernelSkeleton,
        array_map: Mapping[str, ArrayDecl],
        arch: GPUArchitecture,
        space: TransformationSpace,
    ) -> str:
        """Kernel-level cache key: everything one exploration reads.

        Bus and explorer stay out — kernel time is bus-independent, and
        fast/reference produce bitwise-identical projections.  ``prune``
        is *in*: pruning moves configs between the candidate and pruned
        tables, so projections from different prune modes are distinct
        objects even though the best mapping agrees.
        """
        return stable_digest(
            {
                "format": KEY_FORMAT,
                "kernel": kernel_fingerprint(kernel, array_map),
                "arch": arch.fingerprint(),
                "space": space.fingerprint(),
                "options": {"prune": self._prune},
            }
        )

    # Serving -------------------------------------------------------------
    def project(
        self, request: ProjectionRequest, workers: int | None = None
    ) -> ProjectionResponse:
        """Serve one request, from cache when possible.

        ``workers`` overrides the engine's intra-request fan-out (the
        batch runner passes 1: it parallelizes across requests instead).
        """
        start = time.perf_counter()
        self.metrics.incr("requests")
        with trace_span(
            "project",
            category="service",
            program=request.program.name,
            request=request.request_id,
        ) as root:
            key = self.fingerprint(request)
            root.set(fingerprint=key)

            if self._cache is not None:
                with self.metrics.timer("cache_lookup"):
                    entry = self._cache.get(key)
                if entry is not None:
                    self.metrics.incr("cache_hits")
                    root.set(cached=True)
                    summary = ProjectionSummary.from_dict(entry)
                    return ProjectionResponse(
                        request_id=request.request_id,
                        fingerprint=key,
                        summary=summary,
                        cached=True,
                        seconds=time.perf_counter() - start,
                        iterations=request.iterations,
                        cpu_seconds=request.cpu_seconds,
                    )
                self.metrics.incr("cache_misses")

            root.set(cached=False)
            projection = self._compute(
                request, self._max_workers if workers is None else workers
            )
            provenance = (
                build_provenance(projection, request.bus or self._bus)
                if self._provenance
                else None
            )
            summary = summarize_projection(projection, provenance)
            if self._cache is not None:
                with self.metrics.timer("cache_store"):
                    self._cache.put(key, summary.to_dict())
            return ProjectionResponse(
                request_id=request.request_id,
                fingerprint=key,
                summary=summary,
                cached=False,
                seconds=time.perf_counter() - start,
                iterations=request.iterations,
                cpu_seconds=request.cpu_seconds,
                projection=projection,
            )

    def project_batch(
        self, requests: Iterable[ProjectionRequest]
    ) -> list[ProjectionResponse]:
        """Serve many requests, fanning out across the worker pool.

        Responses come back in request order.  Within a batch the
        parallelism budget moves to the request level, so each request
        explores serially.  Duplicate requests in one batch are
        deduplicated through the cache when one is attached (concurrent
        duplicates may both compute; both store the same entry, which is
        idempotent by construction).
        """
        batch: Sequence[ProjectionRequest] = list(requests)
        return map_ordered(
            lambda request: self.project(request, workers=1),
            batch,
            self._max_workers,
        )

    # Internals -----------------------------------------------------------
    def _model_for(self, arch: GPUArchitecture) -> GpuPerformanceModel:
        model = self._models.get(arch.name)
        if model is None or model.arch is not arch:
            model = GpuPerformanceModel(arch)
            self._models[arch.name] = model
        return model

    def _explore(
        self,
        program: ProgramSkeleton,
        model: GpuPerformanceModel,
        space: TransformationSpace,
        workers: int,
    ) -> ProgramProjection:
        """Explore every kernel, reusing kernel-level cache entries.

        ``candidates_explored`` counts only searches actually run; a
        kernel served from the cache adds to ``kernel_cache_hits``
        instead.  The assembled :class:`ProgramProjection` is identical
        either way — cached entries are the very objects a fresh search
        would rebuild (dataclass-equal by the explorer's determinism).

        The streaming explorer bypasses the kernel cache entirely: its
        projections are argmin-only (no candidate table), so they are
        not interchangeable with fast/reference entries, and the warm
        :class:`StreamingExplorer` already caches the expensive halves
        (analysis + column grids) itself.
        """
        if self._explorer == "stream":
            return self._explore_stream(program, model, space)
        cache = self._kernel_cache
        if cache is None:
            projection = project_kernels_parallel(
                program,
                model,
                space,
                max_workers=workers,
                explorer=self._explorer,
                prune=self._prune,
            )
            self.metrics.incr(
                "candidates_explored",
                sum(kp.search_width for kp in projection.kernels),
            )
            return projection

        array_map = program.array_map
        keys = [
            self._kernel_key(kernel, array_map, model.arch, space)
            for kernel in program.kernels
        ]
        found: dict[int, KernelProjection] = {}
        for index, key in enumerate(keys):
            entry = cache.get(key)
            if entry is not None:
                found[index] = entry
        missing = [i for i in range(len(keys)) if i not in found]
        self.metrics.incr("kernel_cache_hits", len(found))
        self.metrics.incr("kernel_cache_misses", len(missing))

        if not missing:
            return ProgramProjection(
                program=program.name,
                kernels=tuple(found[i] for i in range(len(keys))),
            )
        if not found:
            # All kernels miss: the existing whole-program fan-out picks
            # the best split (per-kernel tasks, or chunked space for a
            # single-kernel program).
            projection = project_kernels_parallel(
                program,
                model,
                space,
                max_workers=workers,
                explorer=self._explorer,
                prune=self._prune,
            )
            self.metrics.incr(
                "candidates_explored",
                sum(kp.search_width for kp in projection.kernels),
            )
            for key, kernel_projection in zip(keys, projection.kernels):
                cache.put(key, kernel_projection)
            return projection

        # Partial hit: explore only the missing kernels.  A single miss
        # gets the whole worker budget as chunk parallelism; several
        # misses fan out one task per kernel.
        inner = workers if len(missing) == 1 else 1
        computed = map_ordered(
            lambda i: explore_kernel_parallel(
                program.kernels[i],
                program,
                model,
                space,
                max_workers=inner,
                explorer=self._explorer,
                prune=self._prune,
            ),
            missing,
            1 if len(missing) == 1 else workers,
        )
        for index, kernel_projection in zip(missing, computed):
            cache.put(keys[index], kernel_projection)
            self.metrics.incr(
                "candidates_explored", kernel_projection.search_width
            )
            found[index] = kernel_projection
        return ProgramProjection(
            program=program.name,
            kernels=tuple(found[i] for i in range(len(keys))),
        )

    def _explore_stream(
        self,
        program: ProgramSkeleton,
        model: GpuPerformanceModel,
        space: TransformationSpace,
    ) -> ProgramProjection:
        """One fused streaming pass per kernel, arena and caches warm."""
        explorer = self._stream_explorers.get(model.arch.name)
        if explorer is None or explorer.model is not model:
            explorer = StreamingExplorer(model)
            self._stream_explorers[model.arch.name] = explorer
        result = explorer.project_program(program, space)
        self.metrics.incr(
            "candidates_explored",
            sum(kernel.search_width for kernel in result.kernels),
        )
        return ProgramProjection(
            program=program.name,
            kernels=tuple(
                kernel.projection() for kernel in result.kernels
            ),
        )

    def close(self) -> None:
        """Release the process-wide worker pools.

        Shuts down the shared thread pool and the shared-memory
        streaming pool (both module-level singletons, recreated lazily
        on next use).  The daemon calls this on drain; one-shot scripts
        can call it for a clean exit.  Idempotent.
        """
        shutdown_pool()
        shutdown_stream_pool()

    def _compute(
        self, request: ProjectionRequest, workers: int
    ) -> Projection:
        """The GROPHECY++ pipeline, staged and instrumented."""
        program = request.program
        arch = request.arch or self._arch
        bus = request.bus or self._bus
        space = request.space or self._space
        model = self._model_for(arch)

        with self.metrics.timer("explore"):
            kernels = self._explore(program, model, space, workers)
        with self.metrics.timer("analyze"):
            with trace_span(
                "transfer-planning", program=program.name
            ) as planning:
                plan = analyze_transfers(program, request.hints)
                if request.batched_transfers:
                    plan = plan.batched()
                planning.set(
                    transfers=plan.transfer_count,
                    bytes=plan.total_bytes,
                )
        with self.metrics.timer("predict"):
            with trace_span("integrate", program=program.name):
                per_transfer = tuple(bus.predict_plan_by_transfer(plan))
                return Projection(
                    program=program.name,
                    kernel_seconds=kernels.seconds,
                    transfer_seconds=sum(per_transfer),
                    plan=plan,
                    per_transfer_seconds=per_transfer,
                    kernels=kernels,
                )
