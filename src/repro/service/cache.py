"""Content-addressed result cache for the projection service.

Results are stored under the request fingerprint (see
:meth:`repro.service.engine.ProjectionEngine.fingerprint`) as the plain
dict form of a :class:`~repro.core.serialize.ProjectionSummary`, which
round-trips exactly — a hit is provably equivalent to recomputation.

Two tiers:

- an in-memory **LRU** tier (always on) bounded by ``capacity`` entries;
- an optional **on-disk JSON** tier (``disk_dir``) that persists across
  processes — one ``<fingerprint>.json`` file per entry, written
  atomically so concurrent writers can never leave a torn file.

Disk hits are promoted into the memory tier.  Corrupt or unreadable disk
entries are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any

#: Schema version of on-disk entries; bump on incompatible change.
DISK_FORMAT = 1

_SUFFIX = ".json"


class ProjectionCache:
    """Two-tier (memory LRU + optional disk) cache of summary dicts."""

    def __init__(
        self,
        capacity: int = 256,
        disk_dir: str | Path | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._hits_memory = 0
        self._hits_disk = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        if self._disk_dir is not None:
            self._disk_dir.mkdir(parents=True, exist_ok=True)

    # Properties ----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def disk_dir(self) -> Path | None:
        return self._disk_dir

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # Core API ------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """Look up ``key``: memory first, then disk (with promotion)."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self._hits_memory += 1
                return self._memory[key]
        entry = self._disk_get(key)
        if entry is not None:
            with self._lock:
                self._hits_disk += 1
                self._memory_put(key, entry)
            return entry
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: str, summary: dict[str, Any]) -> None:
        """Store ``summary`` under ``key`` in both tiers."""
        with self._lock:
            self._puts += 1
            self._memory_put(key, summary)
        self._disk_put(key, summary)

    def clear(self) -> None:
        """Drop every entry from both tiers (counters are kept)."""
        with self._lock:
            self._memory.clear()
        if self._disk_dir is not None and self._disk_dir.is_dir():
            for path in self._disk_dir.glob(f"*{_SUFFIX}"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def stats(self) -> dict[str, Any]:
        """Counter snapshot plus tier sizes, JSON-safe.

        ``hit_rate`` is hits over lookups in [0, 1], or ``None`` before
        the first lookup (never a zero-division).
        """
        with self._lock:
            hits = self._hits_memory + self._hits_disk
            stats: dict[str, Any] = {
                "hits": hits,
                "hits_memory": self._hits_memory,
                "hits_disk": self._hits_disk,
                "misses": self._misses,
                "hit_rate": hit_rate(hits, self._misses),
                "puts": self._puts,
                "evictions": self._evictions,
                "memory_entries": len(self._memory),
                "capacity": self._capacity,
            }
        if self._disk_dir is not None:
            stats["disk"] = disk_cache_stats(self._disk_dir)
        return stats

    # Memory tier (callers hold the lock) ---------------------------------
    def _memory_put(self, key: str, summary: dict[str, Any]) -> None:
        self._memory[key] = summary
        self._memory.move_to_end(key)
        while len(self._memory) > self._capacity:
            self._memory.popitem(last=False)
            self._evictions += 1

    # Disk tier -----------------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        assert self._disk_dir is not None
        return self._disk_dir / f"{key}{_SUFFIX}"

    def _disk_get(self, key: str) -> dict[str, Any] | None:
        if self._disk_dir is None:
            return None
        try:
            with open(self._disk_path(key), encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != DISK_FORMAT
            or record.get("key") != key
            or not isinstance(record.get("summary"), dict)
        ):
            return None
        return record["summary"]

    def _disk_put(self, key: str, summary: dict[str, Any]) -> None:
        if self._disk_dir is None:
            return
        record = {"format": DISK_FORMAT, "key": key, "summary": summary}
        path = self._disk_path(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"cache: {stats['memory_entries']}/{stats['capacity']} in "
            f"memory, {stats['hits']} hits / {stats['misses']} misses"
        )


class KernelProjectionCache:
    """Thread-safe in-memory LRU of live kernel projections.

    The kernel side of a projection is bus-independent, so the engine
    keys entries by kernel content + architecture + space + pruning
    (see :meth:`repro.service.engine.ProjectionEngine._kernel_key`) and
    entries stay valid across bus what-ifs — and across *programs* that
    share a kernel.  Values are the immutable
    :class:`~repro.transform.explorer.KernelProjection` dataclasses
    themselves: sharing them is safe, and a hit compares equal to the
    recomputation it replaces (the sweep-engine equivalence tests lean
    on exactly that dataclass equality).

    This tier is memory-only: entries hold live object graphs (every
    candidate's characteristics and timing breakdown), which the JSON
    disk tier of :class:`ProjectionCache` could not round-trip.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Any | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: str, projection: Any) -> None:
        with self._lock:
            self._entries[key] = projection
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": hit_rate(self._hits, self._misses),
                "evictions": self._evictions,
                "entries": len(self._entries),
                "capacity": self._capacity,
            }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"kernel cache: {stats['entries']}/{stats['capacity']} "
            f"entries, {stats['hits']} hits / {stats['misses']} misses"
        )


def hit_rate(hits: int, misses: int) -> float | None:
    """Hits over lookups, or None when nothing was ever looked up."""
    lookups = hits + misses
    if lookups <= 0:
        return None
    return hits / lookups


#: Sidecar accumulating hit/miss counters across batch runs.  Not
#: ``*.json`` on purpose: :func:`disk_cache_stats` globs ``*.json`` to
#: count cache entries, and the sidecar is bookkeeping, not an entry.
META_FILENAME = "stats.meta"


def record_run_meta(
    path: str | Path,
    projection_stats: dict[str, Any],
    kernel_stats: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold one run's hit/miss counters into the cache's ``stats.meta``.

    Keeps lifetime totals across processes so ``repro cache-stats`` can
    report hit rates for a directory, not just one run.  Returns the
    accumulated record.  A torn or missing sidecar restarts the totals;
    an unwritable directory degrades to returning the would-be record.
    """
    directory = Path(path)
    meta = read_run_meta(directory) or {
        "format": DISK_FORMAT,
        "runs": 0,
        "projection": {"hits": 0, "misses": 0},
        "kernel": {"hits": 0, "misses": 0},
    }
    meta["runs"] += 1
    meta["projection"]["hits"] += int(projection_stats.get("hits", 0))
    meta["projection"]["misses"] += int(projection_stats.get("misses", 0))
    if kernel_stats is not None:
        meta["kernel"]["hits"] += int(kernel_stats.get("hits", 0))
        meta["kernel"]["misses"] += int(kernel_stats.get("misses", 0))
    target = directory / META_FILENAME
    tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, sort_keys=True)
        os.replace(tmp, target)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
    return meta


def read_run_meta(path: str | Path) -> dict[str, Any] | None:
    """Load the accumulated ``stats.meta`` sidecar, or None if absent
    (never raises — a corrupt sidecar reads as absent)."""
    try:
        with open(Path(path) / META_FILENAME, encoding="utf-8") as fh:
            meta = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(meta, dict)
        or meta.get("format") != DISK_FORMAT
        or not isinstance(meta.get("projection"), dict)
        or not isinstance(meta.get("kernel"), dict)
    ):
        return None
    return meta


def disk_cache_stats(path: str | Path) -> dict[str, Any]:
    """Inspect an on-disk cache directory without opening every file.

    Returns entry count, total bytes, and the directory path; a missing
    directory reports zero entries rather than raising, so ``repro
    cache-stats`` is safe to run before any batch has populated it.
    """
    directory = Path(path)
    entries = 0
    total_bytes = 0
    if directory.is_dir():
        for file in directory.glob(f"*{_SUFFIX}"):
            try:
                total_bytes += file.stat().st_size
            except OSError:
                continue
            entries += 1
    return {
        "path": str(directory),
        "entries": entries,
        "total_bytes": total_bytes,
    }
