"""The projection service: batched, cached, parallel GROPHECY++.

The library's single-shot entry point
(:class:`~repro.core.projector.GrophecyPlusPlus`) re-explores the full
transformation space and re-runs the data-usage analysis on every call.
Analytical models earn their keep by being fast enough to run at scale —
over parameter sweeps, what-if studies, and large candidate spaces — so
this package amortizes that work across requests:

- :mod:`~repro.service.engine` — :class:`ProjectionEngine` serves single
  or batched :class:`ProjectionRequest`s;
- :mod:`~repro.service.cache` — a content-addressed result cache
  (in-memory LRU + optional on-disk JSON tier) keyed by stable
  fingerprints of skeleton + architecture + bus + explorer options,
  plus a bus-independent per-kernel tier
  (:class:`KernelProjectionCache`) that lets what-if studies skip the
  transformation-space search;
- :mod:`~repro.service.parallel` — deterministic fan-out of kernels and
  transformation-space chunks over a worker pool;
- :mod:`~repro.service.metrics` — counters and per-stage timers;
- :mod:`~repro.service.jobs` — a JSONL batch runner with per-request
  error isolation (``python -m repro batch``).

See ``docs/SERVICE.md`` for the full tour.
"""

from repro.service.cache import (
    KernelProjectionCache,
    ProjectionCache,
    disk_cache_stats,
)
from repro.service.engine import (
    ProjectionEngine,
    ProjectionRequest,
    ProjectionResponse,
)
from repro.service.jobs import (
    BatchRecord,
    BatchResult,
    parse_request,
    run_batch,
)
from repro.service.metrics import ServiceMetrics
from repro.service.parallel import (
    explore_kernel_parallel,
    map_ordered,
    project_kernels_parallel,
    space_chunks,
)

__all__ = [
    "KernelProjectionCache",
    "ProjectionCache",
    "disk_cache_stats",
    "ProjectionEngine",
    "ProjectionRequest",
    "ProjectionResponse",
    "BatchRecord",
    "BatchResult",
    "parse_request",
    "run_batch",
    "ServiceMetrics",
    "explore_kernel_parallel",
    "map_ordered",
    "project_kernels_parallel",
    "space_chunks",
]
