"""Deterministic fan-out of projection work across a worker pool.

Two axes of parallelism, both embarrassingly parallel and both merged in
a fixed order so parallel and serial execution produce *identical*
results:

- **kernels**: each kernel of a multi-kernel program explores its
  transformation space independently;
- **transformation-space chunks**: a single kernel's candidate grid is
  split into contiguous chunks scored concurrently and merged back in
  grid order, so the best-candidate tie-breaking (first minimum wins)
  matches the serial explorer exactly.

The pool is a ``concurrent.futures.ThreadPoolExecutor``; the exploration
is pure computation over immutable dataclasses, so threads are safe, and
``max_workers <= 1`` (or a pool that cannot be created) falls back to a
plain serial loop.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.gpu.model import GpuPerformanceModel
from repro.obs.trace import span as trace_span
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.transform.analysis import analyze_kernel
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    ProgramProjection,
    explore_configs,
)
from repro.transform.fastpath import explore_configs_fast
from repro.transform.space import MappingConfig, TransformationSpace

T = TypeVar("T")
R = TypeVar("R")


def map_ordered(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` with optional thread fan-out.

    Results always come back in input order regardless of completion
    order.  Runs serially when ``max_workers`` is None/<=1, when there is
    at most one item, or when the pool cannot be created (e.g. a
    thread-limited environment) — the serial fallback is semantically
    identical.
    """
    work = list(items)
    if max_workers is None or max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        pool = ThreadPoolExecutor(max_workers=min(max_workers, len(work)))
    except (OSError, RuntimeError):
        return [fn(item) for item in work]
    with pool:
        futures = [pool.submit(fn, item) for item in work]
        return [future.result() for future in futures]


def space_chunks(
    configs: Sequence[MappingConfig], chunk_count: int
) -> list[tuple[MappingConfig, ...]]:
    """Split a candidate list into <= ``chunk_count`` contiguous chunks.

    Chunks preserve grid order, so concatenating the per-chunk results
    reproduces the serial enumeration exactly.
    """
    if chunk_count < 1:
        raise ValueError(f"chunk_count must be >= 1, got {chunk_count}")
    configs = tuple(configs)
    if not configs:
        return []
    chunk_count = min(chunk_count, len(configs))
    size, extra = divmod(len(configs), chunk_count)
    chunks: list[tuple[MappingConfig, ...]] = []
    start = 0
    for index in range(chunk_count):
        end = start + size + (1 if index < extra else 0)
        chunks.append(configs[start:end])
        start = end
    return chunks


def explore_kernel_parallel(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    max_workers: int | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> KernelProjection:
    """:func:`~repro.transform.explorer.explore_kernel`, chunk-parallel.

    Splits the space into one chunk per worker, scores chunks on the
    pool, and merges candidates/skipped/pruned in grid order.  ``min``
    keeps the first of tied minima, so the selected best mapping is
    identical to the serial explorer's.

    On the fast path the per-kernel :class:`KernelAnalysis` precompute
    is built once and shared across chunks (its profile cache is safe
    under CPython threads).  With ``prune=True`` each chunk prunes
    against its own incumbent; a chunk incumbent is a real candidate
    time, so any global-best tie still satisfies ``bound <= time <=
    incumbent`` and survives — the selected best never changes.
    """
    if explorer not in ("fast", "reference"):
        raise ValueError(
            f"unknown explorer {explorer!r}: expected 'fast' or 'reference'"
        )
    space = space or TransformationSpace.default()
    configs = space.configs()
    chunks = space_chunks(configs, max_workers or 1)
    pruned: list[tuple[MappingConfig, str]] = []
    with trace_span(
        "search",
        kernel=kernel.name,
        explorer=explorer,
        chunks=len(chunks),
    ) as search:
        if explorer == "fast":
            try:
                analysis = analyze_kernel(
                    kernel, program.array_map, model.arch.strict_coalescing
                )
            except ValueError:
                raise ValueError(
                    f"no legal mapping for kernel {kernel.name!r} on "
                    f"{model.arch.name} (tried {len(configs)})"
                ) from None
            results = map_ordered(
                lambda chunk: explore_configs_fast(
                    kernel,
                    program,
                    model,
                    chunk,
                    analysis=analysis,
                    prune=prune,
                ),
                chunks,
                max_workers,
            )
            candidates: list[CandidateResult] = []
            skipped: list[tuple[MappingConfig, str]] = []
            for chunk_candidates, chunk_skipped, chunk_pruned in results:
                candidates.extend(chunk_candidates)
                skipped.extend(chunk_skipped)
                pruned.extend(chunk_pruned)
        else:
            reference = map_ordered(
                lambda chunk: explore_configs(kernel, program, model, chunk),
                chunks,
                max_workers,
            )
            candidates = []
            skipped = []
            for chunk_candidates, chunk_skipped in reference:
                candidates.extend(chunk_candidates)
                skipped.extend(chunk_skipped)
        search.set(
            explored=len(candidates),
            illegal=len(skipped),
            pruned=len(pruned),
        )
    if not candidates:
        raise ValueError(
            f"no legal mapping for kernel {kernel.name!r} on "
            f"{model.arch.name} (tried {len(skipped)})"
        )
    best = min(candidates, key=lambda c: c.seconds)
    return KernelProjection(
        kernel=kernel.name,
        best=best,
        candidates=tuple(candidates),
        skipped=tuple(skipped),
        pruned=tuple(pruned),
    )


def project_kernels_parallel(
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    max_workers: int | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> ProgramProjection:
    """:func:`~repro.transform.explorer.project_program`, pool-backed.

    Multi-kernel programs fan out one task per kernel; a single-kernel
    program instead splits its transformation space across the pool.
    Either way the returned projection is byte-for-byte the serial one.
    """
    kernels = program.kernels
    if len(kernels) == 1:
        projections = (
            explore_kernel_parallel(
                kernels[0],
                program,
                model,
                space,
                max_workers,
                explorer=explorer,
                prune=prune,
            ),
        )
    else:
        projections = tuple(
            map_ordered(
                lambda kernel: explore_kernel_parallel(
                    kernel,
                    program,
                    model,
                    space,
                    max_workers=1,
                    explorer=explorer,
                    prune=prune,
                ),
                kernels,
                max_workers,
            )
        )
    return ProgramProjection(program=program.name, kernels=projections)
