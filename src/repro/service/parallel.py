"""Deterministic fan-out of projection work across persistent pools.

Two axes of parallelism, both embarrassingly parallel and both merged in
a fixed order so parallel and serial execution produce *identical*
results:

- **kernels**: each kernel of a multi-kernel program explores its
  transformation space independently;
- **transformation-space chunks**: a single kernel's candidate grid is
  split into contiguous chunks scored concurrently and merged back in
  grid order, so the best-candidate tie-breaking (first minimum wins)
  matches the serial explorer exactly.

Two persistent pools live here, both created lazily and reused across
calls instead of being rebuilt per request:

- a module-level ``ThreadPoolExecutor`` behind :func:`map_ordered` and
  :func:`submit_shared` — the daemon scheduler, the batch runner, and
  the parallel explorer all share it (the exploration is pure
  computation over immutable dataclasses, so threads are safe);
- a fork-based **streaming worker pool** (:class:`StreamWorkerPool`)
  whose workers attach ``multiprocessing.shared_memory`` column blocks
  once and score chunks zero-copy, returning only ``(argmin, seconds,
  legal)`` triples — no candidate grids ever cross the pipe.

``max_workers <= 1`` (or a pool that cannot be created) falls back to a
plain serial loop; :func:`shutdown_pool` / :func:`shutdown_stream_pool`
release everything explicitly (the daemon calls them on drain).
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import (
    COLUMN_FIELDS,
    ScoreArena,
    fused_argmin,
)
from repro.obs.trace import span as trace_span
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.transform.analysis import analyze_kernel
from repro.transform.explorer import (
    CandidateResult,
    KernelProjection,
    ProgramProjection,
    explore_configs,
    no_legal_mapping,
)
from repro.transform.fastpath import explore_configs_fast
from repro.transform.space import MappingConfig, TransformationSpace

T = TypeVar("T")
R = TypeVar("R")

# --------------------------------------------------------------------- #
# Shared thread pool
# --------------------------------------------------------------------- #
_POOL: ThreadPoolExecutor | None = None
_POOL_WORKERS = 0
_POOL_LOCK = threading.Lock()


def shared_pool(max_workers: int) -> ThreadPoolExecutor | None:
    """The module-level reusable thread pool, grown to ``max_workers``.

    Created on first use and reused by every subsequent caller — the
    daemon scheduler, ``run_batch``, and the chunk-parallel explorer all
    draw from the same warm pool instead of paying executor construction
    (thread spawn + queue setup) per call.  When a caller asks for more
    workers than the pool has, a larger pool replaces it; the old one
    finishes its queued work in the background (``shutdown(wait=False)``
    cancels nothing).  Returns ``None`` when the pool cannot be created
    (thread-limited environment) — callers fall back to serial.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None and _POOL_WORKERS >= max_workers:
            return _POOL
        try:
            pool = ThreadPoolExecutor(
                max_workers=max_workers,
                thread_name_prefix="repro-shared",
            )
        except (OSError, RuntimeError):
            return _POOL
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = pool
        _POOL_WORKERS = max_workers
        return pool


def shutdown_pool(wait: bool = True) -> None:
    """Release the shared thread pool (recreated lazily on next use)."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        pool, _POOL, _POOL_WORKERS = _POOL, None, 0
    if pool is not None:
        pool.shutdown(wait=wait)


def submit_shared(fn: Callable[..., R], *args, **kwargs) -> Future:
    """Submit one task to the shared pool (serial Future if pool-less)."""
    pool = shared_pool(max(2, _POOL_WORKERS))
    if pool is not None:
        try:
            return pool.submit(fn, *args, **kwargs)
        except RuntimeError:
            pass  # pool raced a shutdown; run inline below
    future: Future = Future()
    try:
        future.set_result(fn(*args, **kwargs))
    except BaseException as exc:  # noqa: BLE001 - mirror executor behavior
        future.set_exception(exc)
    return future


def map_ordered(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` with optional thread fan-out.

    Results always come back in input order regardless of completion
    order.  Runs serially when ``max_workers`` is None/<=1, when there is
    at most one item, or when the shared pool cannot be created (e.g. a
    thread-limited environment) — the serial fallback is semantically
    identical.  Fan-out goes through :func:`shared_pool`, so repeated
    calls reuse one warm executor instead of building one per call.
    """
    work = list(items)
    if max_workers is None or max_workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    pool = shared_pool(min(max_workers, len(work)))
    if pool is None:
        return [fn(item) for item in work]
    try:
        futures = [pool.submit(fn, item) for item in work]
    except RuntimeError:  # raced an explicit shutdown_pool()
        return [fn(item) for item in work]
    return [future.result() for future in futures]


# --------------------------------------------------------------------- #
# Persistent shared-memory streaming pool
# --------------------------------------------------------------------- #

#: Worker-side caches (one per forked process): attached segments keyed
#: by name, plus a scoring arena.  Workers attach a segment once and
#: reuse the mapping for every chunk of every batch streamed through it.
_WORKER_SEGMENTS: dict[str, tuple[object, dict[str, np.ndarray]]] = {}
_WORKER_SEGMENT_CAP = 4
_WORKER_ARENA: ScoreArena | None = None


def _attach_segment(name: str, capacity: int) -> dict[str, np.ndarray]:
    """Map a column block into this worker, caching the attachment."""
    from multiprocessing import resource_tracker, shared_memory

    cached = _WORKER_SEGMENTS.get(name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=name)
    # The parent owns the segment's lifetime; without this, the worker's
    # resource tracker would unlink it again on worker exit (the 3.11/3.12
    # attach-registers-too behavior) and spam leak warnings.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals
        pass
    views = {}
    for position, (field, dtype) in enumerate(COLUMN_FIELDS):
        views[field] = np.ndarray(
            (capacity,),
            dtype=dtype,
            buffer=shm.buf,
            offset=position * 8 * capacity,
        )
    if len(_WORKER_SEGMENTS) >= _WORKER_SEGMENT_CAP:
        oldest = next(iter(_WORKER_SEGMENTS))
        old_shm, old_views = _WORKER_SEGMENTS.pop(oldest)
        old_views.clear()
        old_shm.close()  # type: ignore[attr-defined]
    _WORKER_SEGMENTS[name] = (shm, views)
    return views


def _stream_worker_score(
    name: str,
    capacity: int,
    lo: int,
    hi: int,
    model: GpuPerformanceModel,
) -> tuple[int, float, int]:
    """Score rows ``[lo, hi)`` of a shared column block, zero-copy.

    Runs inside a pool worker; returns the chunk's first-minimum argmin
    (relative to ``lo``), its seconds, and the legal-row count — three
    scalars, regardless of chunk size.
    """
    global _WORKER_ARENA
    views = _attach_segment(name, capacity)
    if _WORKER_ARENA is None:
        _WORKER_ARENA = ScoreArena()
    columns = {field: view[lo:hi] for field, view in views.items()}
    return fused_argmin(model, columns, _WORKER_ARENA)


class StreamWorkerPool:
    """A persistent fork pool scoring shared-memory candidate columns.

    The parent writes a kernel's structure-of-arrays candidate grid into
    one shared-memory block (fields laid out back to back, each strided
    to the block's row capacity), dispatches ``(segment, lo, hi)`` chunk
    descriptors, and merges the workers' ``(argmin, seconds, legal)``
    triples with the explorer's first-minimum tie-break.  Workers attach
    each segment once and keep their arena warm, so steady-state
    streaming moves no candidate data at all — only descriptors out and
    three scalars back.

    Construction raises ``RuntimeError`` when no ``fork`` start method is
    available (the pool relies on cheap fork + inherited imports);
    callers treat that as "stream serially instead".
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("no fork start method; streaming pool unavailable")
        context = multiprocessing.get_context("fork")
        self._pool = context.Pool(processes=workers)
        self.workers = workers
        self._lock = threading.Lock()
        self._shm = None
        self._capacity = 0
        self._views: dict[str, np.ndarray] = {}
        # A shared-memory segment is a kernel object, not process memory:
        # if the process exits with the pool still warm (daemon SIGTERM,
        # ^C mid-batch) the block would outlive it in /dev/shm.  Unlink
        # at interpreter exit; close() unregisters for the normal path.
        atexit.register(self._atexit_release)

    def _ensure_capacity(self, rows: int) -> None:
        if self._shm is not None and rows <= self._capacity:
            return
        from multiprocessing import shared_memory

        capacity = max(rows, self._capacity * 2, 1024)
        segment = shared_memory.SharedMemory(
            create=True, size=len(COLUMN_FIELDS) * 8 * capacity
        )
        if self._shm is not None:
            # No chunk is in flight outside score_columns (it waits for
            # every result), so the old block has no parent-side users;
            # workers drop their stale attachments via their LRU cap.
            self._views.clear()
            self._shm.close()
            self._shm.unlink()
        self._shm = segment
        self._capacity = capacity
        self._views = {
            field: np.ndarray(
                (capacity,),
                dtype=dtype,
                buffer=segment.buf,
                offset=position * 8 * capacity,
            )
            for position, (field, dtype) in enumerate(COLUMN_FIELDS)
        }

    def score_columns(
        self,
        model: GpuPerformanceModel,
        columns: dict[str, np.ndarray],
        chunk_rows: int = 16384,
    ) -> tuple[int, float, int]:
        """Stream one candidate grid through the pool.

        Returns the global ``(argmin, seconds, legal_count)`` over all
        rows — ``(-1, inf, 0)`` when nothing is legal.  Chunks are merged
        in row order with strict ``<``, so ties keep the earliest row,
        matching the serial explorer exactly.
        """
        rows = int(columns["block_size"].shape[0])
        if rows == 0:
            return -1, float("inf"), 0
        chunk_rows = max(1, chunk_rows)
        with self._lock:
            self._ensure_capacity(rows)
            for field, _dtype in COLUMN_FIELDS:
                np.copyto(self._views[field][:rows], columns[field])
            name = self._shm.name
            pending = [
                self._pool.apply_async(
                    _stream_worker_score,
                    (name, self._capacity, lo, min(lo + chunk_rows, rows), model),
                )
                for lo in range(0, rows, chunk_rows)
            ]
            best_index, best_seconds, legal_total = -1, float("inf"), 0
            for task, lo in zip(pending, range(0, rows, chunk_rows)):
                relative, seconds, legal = task.get()
                legal_total += legal
                if relative >= 0 and seconds < best_seconds:
                    best_index, best_seconds = lo + relative, seconds
            return best_index, best_seconds, legal_total

    def close(self) -> None:
        """Terminate the workers and release the shared segment."""
        atexit.unregister(self._atexit_release)
        with self._lock:
            self._pool.terminate()
            self._pool.join()
            if self._shm is not None:
                self._views.clear()
                self._shm.close()
                self._shm.unlink()
                self._shm = None
            self._capacity = 0

    def _atexit_release(self) -> None:
        """Last-chance cleanup when the process never called close()."""
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass


_STREAM_POOL: StreamWorkerPool | None = None
_STREAM_POOL_LOCK = threading.Lock()


def stream_pool(workers: int = 2) -> StreamWorkerPool | None:
    """The persistent module-level streaming pool (``None`` if unavailable).

    Created warm on first use and shared by every streaming explorer in
    the process; :func:`shutdown_stream_pool` releases it.  An existing
    pool is reused even when ``workers`` differs — worker count is a
    startup hint, not a per-call contract.
    """
    global _STREAM_POOL
    with _STREAM_POOL_LOCK:
        if _STREAM_POOL is None:
            try:
                _STREAM_POOL = StreamWorkerPool(workers)
            except (RuntimeError, OSError, ValueError):
                return None
        return _STREAM_POOL


def shutdown_stream_pool() -> None:
    """Release the streaming pool (recreated lazily on next use)."""
    global _STREAM_POOL
    with _STREAM_POOL_LOCK:
        pool, _STREAM_POOL = _STREAM_POOL, None
    if pool is not None:
        pool.close()


def space_chunks(
    configs: Sequence[MappingConfig], chunk_count: int
) -> list[tuple[MappingConfig, ...]]:
    """Split a candidate list into <= ``chunk_count`` contiguous chunks.

    Chunks preserve grid order, so concatenating the per-chunk results
    reproduces the serial enumeration exactly.
    """
    if chunk_count < 1:
        raise ValueError(f"chunk_count must be >= 1, got {chunk_count}")
    configs = tuple(configs)
    if not configs:
        return []
    chunk_count = min(chunk_count, len(configs))
    size, extra = divmod(len(configs), chunk_count)
    chunks: list[tuple[MappingConfig, ...]] = []
    start = 0
    for index in range(chunk_count):
        end = start + size + (1 if index < extra else 0)
        chunks.append(configs[start:end])
        start = end
    return chunks


def explore_kernel_parallel(
    kernel: KernelSkeleton,
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    max_workers: int | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> KernelProjection:
    """:func:`~repro.transform.explorer.explore_kernel`, chunk-parallel.

    Splits the space into one chunk per worker, scores chunks on the
    pool, and merges candidates/skipped/pruned in grid order.  ``min``
    keeps the first of tied minima, so the selected best mapping is
    identical to the serial explorer's.

    On the fast path the per-kernel :class:`KernelAnalysis` precompute
    is built once and shared across chunks (its profile cache is safe
    under CPython threads).  With ``prune=True`` each chunk prunes
    against its own incumbent; a chunk incumbent is a real candidate
    time, so any global-best tie still satisfies ``bound <= time <=
    incumbent`` and survives — the selected best never changes.
    """
    if explorer not in ("fast", "reference"):
        raise ValueError(
            f"unknown explorer {explorer!r}: expected 'fast' or 'reference'"
        )
    space = space or TransformationSpace.default()
    configs = space.configs()
    chunks = space_chunks(configs, max_workers or 1)
    pruned: list[tuple[MappingConfig, str]] = []
    with trace_span(
        "search",
        kernel=kernel.name,
        explorer=explorer,
        chunks=len(chunks),
    ) as search:
        if explorer == "fast":
            try:
                analysis = analyze_kernel(
                    kernel, program.array_map, model.arch.strict_coalescing
                )
            except ValueError:
                raise no_legal_mapping(
                    kernel.name, model.arch.name, len(configs)
                ) from None
            results = map_ordered(
                lambda chunk: explore_configs_fast(
                    kernel,
                    program,
                    model,
                    chunk,
                    analysis=analysis,
                    prune=prune,
                ),
                chunks,
                max_workers,
            )
            candidates: list[CandidateResult] = []
            skipped: list[tuple[MappingConfig, str]] = []
            for chunk_candidates, chunk_skipped, chunk_pruned in results:
                candidates.extend(chunk_candidates)
                skipped.extend(chunk_skipped)
                pruned.extend(chunk_pruned)
        else:
            reference = map_ordered(
                lambda chunk: explore_configs(kernel, program, model, chunk),
                chunks,
                max_workers,
            )
            candidates = []
            skipped = []
            for chunk_candidates, chunk_skipped in reference:
                candidates.extend(chunk_candidates)
                skipped.extend(chunk_skipped)
        search.set(
            explored=len(candidates),
            illegal=len(skipped),
            pruned=len(pruned),
        )
    if not candidates:
        raise no_legal_mapping(kernel.name, model.arch.name, len(skipped))
    best = min(candidates, key=lambda c: c.seconds)
    return KernelProjection(
        kernel=kernel.name,
        best=best,
        candidates=tuple(candidates),
        skipped=tuple(skipped),
        pruned=tuple(pruned),
    )


def project_kernels_parallel(
    program: ProgramSkeleton,
    model: GpuPerformanceModel,
    space: TransformationSpace | None = None,
    max_workers: int | None = None,
    explorer: str = "fast",
    prune: bool = False,
) -> ProgramProjection:
    """:func:`~repro.transform.explorer.project_program`, pool-backed.

    Multi-kernel programs fan out one task per kernel; a single-kernel
    program instead splits its transformation space across the pool.
    Either way the returned projection is byte-for-byte the serial one.
    """
    kernels = program.kernels
    if len(kernels) == 1:
        projections = (
            explore_kernel_parallel(
                kernels[0],
                program,
                model,
                space,
                max_workers,
                explorer=explorer,
                prune=prune,
            ),
        )
    else:
        projections = tuple(
            map_ordered(
                lambda kernel: explore_kernel_parallel(
                    kernel,
                    program,
                    model,
                    space,
                    max_workers=1,
                    explorer=explorer,
                    prune=prune,
                ),
                kernels,
                max_workers,
            )
        )
    return ProgramProjection(program=program.name, kernels=projections)
