"""Counters, stage timers, and latency histograms for the service.

:class:`ServiceMetrics` is a small, thread-safe metrics sink shared by
the engine, the cache, and the batch runner.  It tracks monotonically
increasing counters (requests served, cache hits/misses, candidates
explored, errors) and per-stage wall time (explore, analyze, predict,
...) — both the exact accumulated total and a
:class:`~repro.obs.metrics.Histogram` per stage, so the snapshot reports
p50/p95/p99 stage latencies alongside the totals.

Three views: :meth:`snapshot` (plain dict, machine-readable),
:meth:`report` (human multi-line), and :meth:`to_prometheus` (text
exposition for a scrape endpoint; see ``docs/OBSERVABILITY.md``).

A stage that raises inside :meth:`timer` still records its wall time
*and* increments ``<stage>_errors``, so failed work is distinguishable
from slow work.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import Histogram

#: Retained observations per stage for the percentile window.
HISTOGRAM_CAPACITY = 2048


class ServiceMetrics:
    """Thread-safe counters + per-stage wall-time accumulators."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._timer_seconds: defaultdict[str, float] = defaultdict(float)
        self._timer_calls: Counter[str] = Counter()
        self._histograms: dict[str, Histogram] = {}

    # Counters ------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters[name]

    # Timers --------------------------------------------------------------
    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``stage``.

        On an exception inside the block the elapsed time still counts
        (slow failures show up in the latency view) and
        ``<stage>_errors`` is incremented, so error rates are readable
        per stage.
        """
        start = time.perf_counter()
        try:
            yield
        except BaseException:
            self.add_time(stage, time.perf_counter() - start)
            self.incr(f"{stage}_errors")
            raise
        else:
            self.add_time(stage, time.perf_counter() - start)

    def add_time(self, stage: str, seconds: float) -> None:
        """Record ``seconds`` of wall time against ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {stage!r}")
        with self._lock:
            self._timer_seconds[stage] += seconds
            self._timer_calls[stage] += 1
            histogram = self._histograms.get(stage)
            if histogram is None:
                histogram = Histogram(HISTOGRAM_CAPACITY)
                self._histograms[stage] = histogram
            histogram.observe(seconds)

    def stage_seconds(self, stage: str) -> float:
        """Accumulated wall time of ``stage`` (0.0 if never timed)."""
        with self._lock:
            return self._timer_seconds[stage]

    def percentile(self, stage: str, quantile: float) -> float:
        """Latency percentile of ``stage`` over the retained window."""
        with self._lock:
            histogram = self._histograms.get(stage)
        if histogram is None:
            raise KeyError(f"no recorded durations for stage {stage!r}")
        return histogram.percentile(quantile)

    # Views ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of every counter and timer, JSON-safe.

        Each timer entry carries the exact ``seconds``/``calls`` totals
        plus the histogram view (``min``/``max``/``p50``/``p95``/``p99``
        over the retained window).
        """
        with self._lock:
            counters = dict(self._counters)
            stages = sorted(self._timer_seconds)
            entries = {}
            for stage in stages:
                entry: dict[str, Any] = {
                    "seconds": self._timer_seconds[stage],
                    "calls": self._timer_calls[stage],
                }
                histogram = self._histograms.get(stage)
                if histogram is not None:
                    hist = histogram.snapshot()
                    for key in ("min", "max", "p50", "p95", "p99"):
                        if key in hist:
                            entry[key] = hist[key]
                entries[stage] = entry
        return {"counters": counters, "timers": entries}

    def report(self) -> str:
        """Human-readable multi-line account of the snapshot."""
        snap = self.snapshot()
        lines = ["service metrics:"]
        if snap["counters"]:
            lines.append("  counters:")
            for name in sorted(snap["counters"]):
                lines.append(f"    {name:<24} {snap['counters'][name]}")
        if snap["timers"]:
            lines.append("  stage wall time:")
            for stage, entry in snap["timers"].items():
                mean = entry["seconds"] / entry["calls"]
                line = (
                    f"    {stage:<24} {entry['seconds'] * 1e3:10.2f} ms "
                    f"over {entry['calls']} call(s) "
                    f"({mean * 1e3:.2f} ms each)"
                )
                if "p95" in entry:
                    line += (
                        f"  p50 {entry['p50'] * 1e3:.2f} / "
                        f"p95 {entry['p95'] * 1e3:.2f} / "
                        f"p99 {entry['p99'] * 1e3:.2f} ms"
                    )
                lines.append(line)
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    def to_prometheus(self, namespace: str = "repro") -> str:
        """The snapshot in Prometheus text-exposition format."""
        from repro.obs.prometheus import render_snapshot

        return render_snapshot(self.snapshot(), namespace)

    def reset(self) -> None:
        """Zero every counter, timer, and histogram."""
        with self._lock:
            self._counters.clear()
            self._timer_seconds.clear()
            self._timer_calls.clear()
            self._histograms.clear()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.report()
