"""Counters and stage timers for the projection service.

:class:`ServiceMetrics` is a small, thread-safe metrics sink shared by
the engine, the cache, and the batch runner.  It tracks monotonically
increasing counters (requests served, cache hits/misses, candidates
explored, errors) and accumulated wall time per named stage (explore,
analyze, predict, ...), and exposes both as a plain-dict snapshot — for
machine consumption — and a human-readable report.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, defaultdict
from contextlib import contextmanager
from typing import Any, Iterator


class ServiceMetrics:
    """Thread-safe counters + per-stage wall-time accumulators."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Counter[str] = Counter()
        self._timer_seconds: defaultdict[str, float] = defaultdict(float)
        self._timer_calls: Counter[str] = Counter()

    # Counters ------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters[name]

    # Timers --------------------------------------------------------------
    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Context manager accumulating wall time under ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(stage, time.perf_counter() - start)

    def add_time(self, stage: str, seconds: float) -> None:
        """Record ``seconds`` of wall time against ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {stage!r}")
        with self._lock:
            self._timer_seconds[stage] += seconds
            self._timer_calls[stage] += 1

    def stage_seconds(self, stage: str) -> float:
        """Accumulated wall time of ``stage`` (0.0 if never timed)."""
        with self._lock:
            return self._timer_seconds[stage]

    # Views ---------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of every counter and timer, JSON-safe."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    stage: {
                        "seconds": self._timer_seconds[stage],
                        "calls": self._timer_calls[stage],
                    }
                    for stage in sorted(self._timer_seconds)
                },
            }

    def report(self) -> str:
        """Human-readable multi-line account of the snapshot."""
        snap = self.snapshot()
        lines = ["service metrics:"]
        if snap["counters"]:
            lines.append("  counters:")
            for name in sorted(snap["counters"]):
                lines.append(f"    {name:<24} {snap['counters'][name]}")
        if snap["timers"]:
            lines.append("  stage wall time:")
            for stage, entry in snap["timers"].items():
                mean = entry["seconds"] / entry["calls"]
                lines.append(
                    f"    {stage:<24} {entry['seconds'] * 1e3:10.2f} ms "
                    f"over {entry['calls']} call(s) "
                    f"({mean * 1e3:.2f} ms each)"
                )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter and timer."""
        with self._lock:
            self._counters.clear()
            self._timer_seconds.clear()
            self._timer_calls.clear()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.report()
