"""INTERSECT / UNION-support / SUBTRACT operators on sections.

Intersection of strided intervals is exact, via gcd/CRT arithmetic on
arithmetic progressions.  Subtraction is exact for unit-stride boxes and
for equal-stride aligned sections (reduced to the dense case in progression
index space); other partial overlaps of strided sections fall back to
returning the minuend unchanged, a *conservative over-approximation*: the
data-usage analyzer only ever uses subtraction to remove already-produced
data from the transfer set, so keeping more means transferring more, never
missing a required transfer.
"""

from __future__ import annotations

import math

from repro.brs.section import DimSection, Section


def _crt_first(a: DimSection, b: DimSection) -> tuple[int, int] | None:
    """First common point and combined stride of two progressions.

    Returns ``(first, lcm_stride)`` ignoring the upper bounds, or ``None``
    if the progressions share no point at all.
    """
    g = math.gcd(a.stride, b.stride)
    diff = b.lower - a.lower
    if diff % g != 0:
        return None
    lcm = a.stride // g * b.stride
    # Solve x = a.lower (mod a.stride), x = b.lower (mod b.stride).
    # pow() computes the modular inverse of (a.stride/g) mod (b.stride/g).
    m = b.stride // g
    if m == 1:
        x0 = a.lower
    else:
        inv = pow(a.stride // g, -1, m)
        k = (diff // g) * inv % m
        x0 = a.lower + k * a.stride
    return x0, lcm


def dim_intersect(a: DimSection, b: DimSection) -> DimSection | None:
    """Exact intersection of two strided intervals (or None if empty)."""
    first_lcm = _crt_first(a, b)
    if first_lcm is None:
        return None
    x0, lcm = first_lcm
    start = max(a.lower, b.lower)
    # Smallest progression point >= start.
    if x0 < start:
        x0 += -(-(start - x0) // lcm) * lcm
    upper = min(a.upper, b.upper)
    if x0 > upper:
        return None
    last = x0 + (upper - x0) // lcm * lcm
    return DimSection(x0, last, lcm)


def dim_contains(outer: DimSection, inner: DimSection) -> bool:
    """Is every point of ``inner`` a point of ``outer``?"""
    if inner.lower < outer.lower or inner.upper > outer.upper:
        return False
    if (inner.lower - outer.lower) % outer.stride != 0:
        return False
    if inner.is_point:
        return True
    return inner.stride % outer.stride == 0


def dim_union(a: DimSection, b: DimSection) -> DimSection | None:
    """*Exact* union of two progressions as one progression, or ``None``.

    Unlike :func:`hull` this never over-approximates: a result is
    returned only when the union really is a single arithmetic
    progression — containment, a point extending a progression by one
    stride, or two congruent equal-stride progressions that overlap or
    touch.  The section-set coalescer relies on this exactness to merge
    without changing the represented point set.  Two lone points are
    deliberately NOT fused into a new coarser-stride progression (only
    adjacent points merge, via the point/progression rule below, since
    points normalize to stride 1): inventing a stride would push later
    subtractions against dense sections onto the conservative fallback.
    """
    if a == b:
        return a
    if dim_contains(a, b):
        return a
    if dim_contains(b, a):
        return b
    if a.is_point or b.is_point:
        point, prog = (a, b) if a.is_point else (b, a)
        if (point.lower - prog.lower) % prog.stride == 0 and (
            prog.lower - prog.stride
            <= point.lower
            <= prog.upper + prog.stride
        ):
            return DimSection(
                min(prog.lower, point.lower),
                max(prog.upper, point.lower),
                prog.stride,
            )
        return None
    if a.stride == b.stride and (a.lower - b.lower) % a.stride == 0:
        first, second = (a, b) if a.lower <= b.lower else (b, a)
        if second.lower <= first.upper + first.stride:
            return DimSection(
                first.lower, max(first.upper, second.upper), first.stride
            )
    return None


def try_merge(a: Section, b: Section) -> Section | None:
    """Merge two sections into one exactly, or ``None`` if impossible.

    Sections merge when they agree on every dimension but (at most) one,
    and that dimension's progressions union exactly
    (:func:`dim_union`) — e.g. two halves of a row, or successive
    stencil columns.  Equal sections merge to themselves.
    """
    if a.rank != b.rank:
        return None
    differing = [
        i for i, (da, db) in enumerate(zip(a.dims, b.dims)) if da != db
    ]
    if not differing:
        return a
    if len(differing) != 1:
        return None
    i = differing[0]
    union = dim_union(a.dims[i], b.dims[i])
    if union is None:
        return None
    return Section(a.dims[:i] + (union,) + a.dims[i + 1 :])


def intersect(a: Section, b: Section) -> Section | None:
    """Exact intersection of two sections, or None if disjoint."""
    _check_ranks(a, b)
    dims: list[DimSection] = []
    for da, db in zip(a.dims, b.dims):
        inter = dim_intersect(da, db)
        if inter is None:
            return None
        dims.append(inter)
    return Section(tuple(dims))


def contains(outer: Section, inner: Section) -> bool:
    """Is ``inner`` entirely covered by ``outer``?"""
    _check_ranks(outer, inner)
    return all(dim_contains(o, i) for o, i in zip(outer.dims, inner.dims))


def hull(a: Section, b: Section) -> Section:
    """Smallest single BRS containing both sections (may over-approximate)."""
    _check_ranks(a, b)
    dims: list[DimSection] = []
    for da, db in zip(a.dims, b.dims):
        lower = min(da.lower, db.lower)
        upper = max(da.upper, db.upper)
        if da.is_point and db.is_point:
            stride = abs(da.lower - db.lower) or 1
        else:
            strides = [s.stride for s in (da, db) if not s.is_point]
            offs = abs(da.lower - db.lower)
            stride = math.gcd(*strides, offs) if offs else math.gcd(*strides)
        dims.append(DimSection(lower, upper, max(stride, 1)))
    return Section(tuple(dims))


def subtract(a: Section, b: Section) -> list[Section]:
    """``a`` minus ``b`` as a list of disjoint sections.

    Exact when the overlap can be decomposed (dense boxes, or equal-stride
    aligned progressions); otherwise returns ``[a]`` (conservative: keeps
    everything).  Returns ``[]`` when ``b`` covers ``a``.
    """
    _check_ranks(a, b)
    if contains(b, a):
        return []
    overlap = intersect(a, b)
    if overlap is None:
        return [a]

    if a.is_dense and b.is_dense:
        return _subtract_dense(a, b)

    if _strides_compatible(a, b):
        base = a  # map both into a's progression index space
        a_idx = _to_index_space(a, base)
        b_clip = intersect(b, a)
        assert b_clip is not None  # overlap was non-empty
        b_idx = _to_index_space(b_clip, base)
        parts = _subtract_dense(a_idx, b_idx)
        return [_from_index_space(p, base) for p in parts]

    # Partial overlap of incompatible strided sections: keep everything.
    return [a]


# Internal helpers ---------------------------------------------------------


def _check_ranks(a: Section, b: Section) -> None:
    if a.rank != b.rank:
        raise ValueError(f"rank mismatch: {a.rank} vs {b.rank}")


def _strides_compatible(a: Section, b: Section) -> bool:
    """True when b's points all lie on a's per-dim progressions."""
    for da, db in zip(a.dims, b.dims):
        if db.stride % da.stride != 0 and not db.is_point:
            return False
        if (db.lower - da.lower) % da.stride != 0:
            return False
        if not db.is_point and db.stride != da.stride:
            # Same lattice but coarser stride in b: the dense-space image of
            # b would itself be strided; only handle equal strides exactly.
            return False
    return True


def _to_index_space(section: Section, base: Section) -> Section:
    dims = []
    for d, bd in zip(section.dims, base.dims):
        lo = (d.lower - bd.lower) // bd.stride
        hi = (d.upper - bd.lower) // bd.stride
        dims.append(DimSection.dense(lo, hi))
    return Section(tuple(dims))


def _from_index_space(section: Section, base: Section) -> Section:
    dims = []
    for d, bd in zip(section.dims, base.dims):
        lo = bd.lower + d.lower * bd.stride
        hi = bd.lower + d.upper * bd.stride
        dims.append(DimSection(lo, hi, bd.stride if hi > lo else 1))
    return Section(tuple(dims))


def _subtract_dense(a: Section, b: Section) -> list[Section]:
    """Standard box decomposition of ``a - b`` for unit-stride boxes."""
    out: list[Section] = []
    # Clip b to a first so per-dim splits are well-formed.
    clipped = intersect(a, b)
    if clipped is None:
        return [a]
    remaining = list(a.dims)
    result_prefix: list[DimSection] = []
    for dim in range(a.rank):
        da, db = a.dims[dim], clipped.dims[dim]
        below: DimSection | None = None
        above: DimSection | None = None
        if da.lower < db.lower:
            below = DimSection.dense(da.lower, db.lower - 1)
        if db.upper < da.upper:
            above = DimSection.dense(db.upper + 1, da.upper)
        suffix = [a.dims[j] for j in range(dim + 1, a.rank)]
        for part in (below, above):
            if part is not None:
                out.append(Section(tuple([*result_prefix, part, *suffix])))
        result_prefix.append(db)
    return out
