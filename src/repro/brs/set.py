"""Disjoint unions of sections (the UNION operator's result type)."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.brs.ops import contains, intersect, subtract, try_merge
from repro.brs.section import Section

#: Largest overlap-component size the exact inclusion-exclusion volume
#: enumerates (2^cap subset intersections worst case); bigger clusters
#: fall back to the additive upper bound.
_IE_COMPONENT_CAP = 16


class SectionSet:
    """A union of sections, kept disjoint where subtraction is exact.

    ``add`` subtracts the existing coverage from each incoming section
    before storing it, then coalesces members whose union is exactly one
    section (two halves of a row, successive stencil columns) so repeated
    adds do not fragment the set.  When the subtraction had to fall back
    to the conservative path (partial overlap of incompatible strided
    sections), members may overlap and :attr:`is_exact` turns False —
    ``volume`` then switches to inclusion-exclusion over the (exact)
    pairwise intersections, so overlap is never double-counted.
    """

    def __init__(self, sections: Iterable[Section] = ()) -> None:
        self._sections: list[Section] = []
        self._exact = True
        for section in sections:
            self.add(section)

    # Mutation -------------------------------------------------------------
    def add(self, section: Section) -> None:
        """Union one section into the set."""
        pending = [section]
        for existing in self._sections:
            next_pending: list[Section] = []
            for piece in pending:
                remainder = subtract(piece, existing)
                if remainder == [piece] and intersect(piece, existing) is not None:
                    if not contains(existing, piece):
                        # Conservative path: piece kept whole despite overlap.
                        self._exact = False
                next_pending.extend(remainder)
            pending = next_pending
            if not pending:
                return
        self._sections.extend(pending)
        self._coalesce()

    def _coalesce(self) -> None:
        """Merge members whose union is exactly one section, to fixpoint.

        Merging never changes the represented point set
        (:func:`~repro.brs.ops.try_merge` only fires on exact unions), so
        membership, coverage, and the inclusion-exclusion volume are all
        preserved; an exact (disjoint) set additionally keeps its
        additive volume because disjoint mergeable sections partition
        their union.
        """
        sections = self._sections
        merged = len(sections) > 1
        while merged:
            merged = False
            out: list[Section] = []
            for section in sections:
                for i, existing in enumerate(out):
                    union = try_merge(existing, section)
                    if union is not None:
                        out[i] = union
                        merged = True
                        break
                else:
                    out.append(section)
            sections = out
            if len(sections) <= 1:
                break
        self._sections = sections

    def update(self, other: "SectionSet") -> None:
        for section in other:
            self.add(section)

    def subtract_section(self, section: Section) -> "SectionSet":
        """Return a new set with ``section`` removed from every member."""
        out = SectionSet()
        out._exact = self._exact
        for member in self._sections:
            remainder = subtract(member, section)
            if remainder == [member] and intersect(member, section) is not None:
                if not contains(section, member):
                    out._exact = False
            for piece in remainder:
                out._sections.append(piece)
        return out

    def subtract_set(self, other: "SectionSet") -> "SectionSet":
        result = self
        for section in other:
            result = result.subtract_section(section)
        return result

    # Queries ----------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._sections

    @property
    def is_exact(self) -> bool:
        """False if members may overlap (volume is then an upper bound)."""
        return self._exact

    @property
    def volume(self) -> int:
        """Total element count of the union.

        Exact when members are disjoint (the common case) and, since the
        intersection operator is always exact, also for overlapping
        members via inclusion-exclusion over each connected overlap
        cluster — so ``volume`` never double-counts an overlap.  Only
        pathological clusters of more than ``_IE_COMPONENT_CAP`` mutually
        overlapping sections fall back to the additive upper bound (the
        safe direction for transfer sizing).
        """
        if self._exact:
            return sum(s.volume for s in self._sections)
        return self._union_volume()

    def _union_volume(self) -> int:
        sections = self._sections
        n = len(sections)
        overlaps: dict[int, list[int]] = {i: [] for i in range(n)}
        for i in range(n):
            for j in range(i + 1, n):
                if intersect(sections[i], sections[j]) is not None:
                    overlaps[i].append(j)
                    overlaps[j].append(i)
        total = 0
        seen: set[int] = set()
        for start in range(n):
            if start in seen:
                continue
            # Connected component of the overlap graph (iterative DFS).
            component: list[int] = []
            stack = [start]
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbour in overlaps[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            if len(component) == 1:
                total += sections[component[0]].volume
            elif len(component) <= _IE_COMPONENT_CAP:
                total += _ie_volume([sections[i] for i in component])
            else:  # pragma: no cover - adversarial cluster sizes only
                total += sum(sections[i].volume for i in component)
        return total

    def covers(self, section: Section) -> bool:
        """True if the set provably covers ``section`` entirely.

        Exact for single-member coverage and for dense decompositions;
        may return False negatives for adversarial strided covers (safe
        direction for transfer analysis).
        """
        pending = [section]
        for existing in self._sections:
            next_pending: list[Section] = []
            for piece in pending:
                next_pending.extend(subtract(piece, existing))
            pending = next_pending
            if not pending:
                return True
        return False

    def contains_point(self, point: tuple[int, ...]) -> bool:
        return any(s.contains_point(point) for s in self._sections)

    def __iter__(self) -> Iterator[Section]:
        return iter(self._sections)

    def __len__(self) -> int:
        return len(self._sections)

    def __bool__(self) -> bool:
        return bool(self._sections)

    def copy(self) -> "SectionSet":
        out = SectionSet()
        out._sections = list(self._sections)
        out._exact = self._exact
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = " U ".join(str(s) for s in self._sections) or "{}"
        marker = "" if self._exact else " (conservative)"
        return inner + marker


def _ie_volume(sections: list[Section]) -> int:
    """Exact union volume by inclusion-exclusion.

    Enumerates subsets recursively, carrying the running intersection so a
    branch dies as soon as it goes empty (most do: only connected overlap
    clusters reach here, but triple-wise intersections are often empty).
    """

    def expand(start: int, running: Section, sign: int) -> int:
        total = sign * running.volume
        for i in range(start, len(sections)):
            deeper = intersect(running, sections[i])
            if deeper is not None:
                total += expand(i + 1, deeper, -sign)
        return total

    return sum(expand(i + 1, sections[i], 1) for i in range(len(sections)))
