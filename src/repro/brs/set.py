"""Disjoint unions of sections (the UNION operator's result type)."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.brs.ops import contains, intersect, subtract
from repro.brs.section import Section


class SectionSet:
    """A union of sections, kept disjoint where subtraction is exact.

    ``add`` subtracts the existing coverage from each incoming section
    before storing it.  When the subtraction had to fall back to the
    conservative path (partial overlap of incompatible strided sections),
    members may overlap and :attr:`is_exact` turns False — ``volume`` is
    then an upper bound, which for transfer-size estimation errs on the
    safe (pessimistic) side, mirroring the paper's conservative treatment
    of irregular accesses.
    """

    def __init__(self, sections: Iterable[Section] = ()) -> None:
        self._sections: list[Section] = []
        self._exact = True
        for section in sections:
            self.add(section)

    # Mutation -------------------------------------------------------------
    def add(self, section: Section) -> None:
        """Union one section into the set."""
        pending = [section]
        for existing in self._sections:
            next_pending: list[Section] = []
            for piece in pending:
                remainder = subtract(piece, existing)
                if remainder == [piece] and intersect(piece, existing) is not None:
                    if not contains(existing, piece):
                        # Conservative path: piece kept whole despite overlap.
                        self._exact = False
                next_pending.extend(remainder)
            pending = next_pending
            if not pending:
                return
        self._sections.extend(pending)

    def update(self, other: "SectionSet") -> None:
        for section in other:
            self.add(section)

    def subtract_section(self, section: Section) -> "SectionSet":
        """Return a new set with ``section`` removed from every member."""
        out = SectionSet()
        out._exact = self._exact
        for member in self._sections:
            remainder = subtract(member, section)
            if remainder == [member] and intersect(member, section) is not None:
                if not contains(section, member):
                    out._exact = False
            for piece in remainder:
                out._sections.append(piece)
        return out

    def subtract_set(self, other: "SectionSet") -> "SectionSet":
        result = self
        for section in other:
            result = result.subtract_section(section)
        return result

    # Queries ----------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not self._sections

    @property
    def is_exact(self) -> bool:
        """False if members may overlap (volume is then an upper bound)."""
        return self._exact

    @property
    def volume(self) -> int:
        """Total element count (exact, or an upper bound if not is_exact)."""
        return sum(s.volume for s in self._sections)

    def covers(self, section: Section) -> bool:
        """True if the set provably covers ``section`` entirely.

        Exact for single-member coverage and for dense decompositions;
        may return False negatives for adversarial strided covers (safe
        direction for transfer analysis).
        """
        pending = [section]
        for existing in self._sections:
            next_pending: list[Section] = []
            for piece in pending:
                next_pending.extend(subtract(piece, existing))
            pending = next_pending
            if not pending:
                return True
        return False

    def contains_point(self, point: tuple[int, ...]) -> bool:
        return any(s.contains_point(point) for s in self._sections)

    def __iter__(self) -> Iterator[Section]:
        return iter(self._sections)

    def __len__(self) -> int:
        return len(self._sections)

    def __bool__(self) -> bool:
        return bool(self._sections)

    def copy(self) -> "SectionSet":
        out = SectionSet()
        out._sections = list(self._sections)
        out._exact = self._exact
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = " U ".join(str(s) for s in self._sections) or "{}"
        marker = "" if self._exact else " (conservative)"
        return inner + marker
