"""Bounded Regular Section analysis (Havlak & Kennedy).

A Bounded Regular Section describes the set of array elements touched by a
statement across all enclosing loops as, per dimension, a strided interval
``lower : upper : stride``.  GROPHECY uses INTERSECT and UNION on BRSs,
combined with load/store direction, to derive inter-kernel dependencies;
GROPHECY++ reuses the same machinery to decide which sections must cross
the PCIe bus (Section III-B of the paper).

This package implements:

- :class:`~repro.brs.section.DimSection` / :class:`~repro.brs.section.Section`
  — strided per-dimension intervals and their products;
- exact INTERSECT via gcd/CRT arithmetic on arithmetic progressions;
- UNION as a disjoint :class:`~repro.brs.set.SectionSet` (exact for
  unit-stride boxes, conservatively over-approximated for partial overlaps
  of strided sections — over-approximation only ever *adds* transferred
  data, preserving correctness);
- footprint extraction from kernel skeletons
  (:func:`~repro.brs.footprint.kernel_footprint`).
"""

from repro.brs.section import DimSection, Section
from repro.brs.ops import (
    dim_intersect,
    dim_contains,
    intersect,
    contains,
    subtract,
    hull,
)
from repro.brs.set import SectionSet
from repro.brs.footprint import KernelFootprint, kernel_footprint, access_section

__all__ = [
    "DimSection",
    "Section",
    "dim_intersect",
    "dim_contains",
    "intersect",
    "contains",
    "subtract",
    "hull",
    "SectionSet",
    "KernelFootprint",
    "kernel_footprint",
    "access_section",
]
