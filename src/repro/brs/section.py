"""Strided sections: the BRS data type."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class DimSection:
    """An arithmetic progression ``{lower, lower+stride, ..., upper}``.

    Invariants established at construction: ``stride >= 1``,
    ``lower <= upper``, and ``upper`` lies exactly on the progression
    (it is normalized down to the last reachable point).  A single point is
    represented with ``lower == upper`` and ``stride == 1``.
    """

    lower: int
    upper: int
    stride: int = 1

    def __post_init__(self) -> None:
        lower, upper, stride = int(self.lower), int(self.upper), int(self.stride)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if upper < lower:
            raise ValueError(f"empty section [{lower}, {upper}]")
        # Normalize upper onto the progression.
        upper = lower + ((upper - lower) // stride) * stride
        if upper == lower:
            stride = 1
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "stride", stride)

    @staticmethod
    def point(value: int) -> "DimSection":
        return DimSection(value, value, 1)

    @staticmethod
    def dense(lower: int, upper: int) -> "DimSection":
        """Unit-stride interval ``[lower, upper]``."""
        return DimSection(lower, upper, 1)

    @property
    def count(self) -> int:
        """Number of points in the progression."""
        return (self.upper - self.lower) // self.stride + 1

    @property
    def is_point(self) -> bool:
        return self.lower == self.upper

    @property
    def is_dense(self) -> bool:
        return self.stride == 1

    def contains_point(self, value: int) -> bool:
        return (
            self.lower <= value <= self.upper
            and (value - self.lower) % self.stride == 0
        )

    def points(self) -> Iterator[int]:
        return iter(range(self.lower, self.upper + 1, self.stride))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_point:
            return str(self.lower)
        if self.is_dense:
            return f"{self.lower}:{self.upper}"
        return f"{self.lower}:{self.upper}:{self.stride}"


@dataclass(frozen=True)
class Section:
    """A Bounded Regular Section: the product of per-dimension progressions."""

    dims: tuple[DimSection, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(self.dims))
        if not self.dims:
            raise ValueError("a section needs at least one dimension")

    @staticmethod
    def box(*bounds: tuple[int, int]) -> "Section":
        """Unit-stride box from (lower, upper) pairs."""
        return Section(tuple(DimSection.dense(lo, hi) for lo, hi in bounds))

    @staticmethod
    def whole(shape: tuple[int, ...]) -> "Section":
        """The full extent of an array with the given shape."""
        return Section(tuple(DimSection.dense(0, extent - 1) for extent in shape))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def volume(self) -> int:
        """Number of elements in the section."""
        return math.prod(d.count for d in self.dims)

    @property
    def is_dense(self) -> bool:
        return all(d.is_dense for d in self.dims)

    def contains_point(self, point: tuple[int, ...]) -> bool:
        if len(point) != self.rank:
            raise ValueError(
                f"point has rank {len(point)}, section has rank {self.rank}"
            )
        return all(d.contains_point(p) for d, p in zip(self.dims, point))

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate all points; intended for tests on small sections."""
        return itertools.product(*(d.points() for d in self.dims))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "[" + ", ".join(str(d) for d in self.dims) + "]"
