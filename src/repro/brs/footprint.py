"""Footprint extraction: from kernel skeletons to per-array BRS sets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.brs.section import DimSection, Section
from repro.brs.set import SectionSet
from repro.skeleton.access import AccessKind, ArrayAccess
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.loops import Loop


def access_section(
    access: ArrayAccess, loops: Mapping[str, Loop], decl: ArrayDecl
) -> Section:
    """The BRS touched by one access over the kernel's iteration domain.

    For a dense array each affine subscript spans a strided interval
    (possibly over-approximated when several loop variables mix, which is
    the standard BRS over-approximation).  For a sparse array the accessed
    section is data-dependent, so the paper's conservative rule applies:
    the whole array may be referenced.
    """
    if decl.kind is ArrayKind.SPARSE or access.indirect:
        return Section.whole(decl.shape)
    dims: list[DimSection] = []
    for idx in access.indices:
        lo, hi = idx.bounds(loops)
        stride = idx.stride(loops)
        dims.append(DimSection(lo, hi, max(stride, 1)))
    return Section(tuple(dims))


@dataclass
class KernelFootprint:
    """Per-array read and write section sets of one kernel."""

    kernel: str
    reads: dict[str, SectionSet] = field(default_factory=dict)
    writes: dict[str, SectionSet] = field(default_factory=dict)

    def read_arrays(self) -> frozenset[str]:
        return frozenset(n for n, s in self.reads.items() if not s.is_empty)

    def written_arrays(self) -> frozenset[str]:
        return frozenset(n for n, s in self.writes.items() if not s.is_empty)


def kernel_footprint(
    kernel: KernelSkeleton, arrays: Mapping[str, ArrayDecl]
) -> KernelFootprint:
    """Compute the read/write footprints of a kernel.

    Raises ``KeyError`` if the kernel references an undeclared array
    (call :func:`repro.skeleton.validate.validate_kernel` first for a
    friendlier error).
    """
    fp = KernelFootprint(kernel.name)
    loops = kernel.loop_map
    for access in kernel.accesses():
        decl = arrays[access.array]
        section = access_section(access, loops, decl)
        target = fp.writes if access.kind is AccessKind.STORE else fp.reads
        target.setdefault(access.array, SectionSet()).add(section)
    return fp
