"""Roofline CPU time model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.arch import CPUArchitecture
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CpuWorkProfile:
    """Work done by the CPU version of one application iteration.

    ``bytes_moved`` counts DRAM traffic (loads + stores that miss cache);
    ``flops`` counts floating-point operations; ``efficiency`` folds in
    how far this code runs from the roofline (stride patterns, OpenMP
    overheads, vectorization quality) — <1 means slower than roofline.
    """

    name: str
    bytes_moved: float
    flops: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative("bytes_moved", self.bytes_moved)
        check_non_negative("flops", self.flops)
        check_positive("efficiency", self.efficiency)
        if self.bytes_moved == 0 and self.flops == 0:
            raise ValueError(f"profile {self.name!r} does no work")


class CpuPerformanceModel:
    """``time = max(bytes / bw, flops / peak) / efficiency``."""

    def __init__(self, arch: CPUArchitecture) -> None:
        self._arch = arch

    @property
    def arch(self) -> CPUArchitecture:
        return self._arch

    def time(self, profile: CpuWorkProfile) -> float:
        """Modeled execution time (seconds) of one iteration."""
        mem_time = profile.bytes_moved / self._arch.mem_bandwidth
        comp_time = profile.flops / self._arch.peak_flops
        return max(mem_time, comp_time) / profile.efficiency

    def bound(self, profile: CpuWorkProfile) -> str:
        """Which roofline side binds: "memory" or "compute"."""
        mem_time = profile.bytes_moved / self._arch.mem_bandwidth
        comp_time = profile.flops / self._arch.peak_flops
        return "memory" if mem_time >= comp_time else "compute"
