"""CPU architecture description and multi-threaded roofline time model.

The paper's baseline is the OpenMP CPU implementation (8 threads on the
testbed's Xeon E5405 node); the GPU speedup is measured CPU time divided
by total GPU time.  We model CPU execution with a classic roofline —
``max(bytes / memory_bandwidth, flops / peak_flops)`` with efficiency
factors — which the simulated testbed perturbs into "measured" times.
"""

from repro.cpu.arch import CPUArchitecture, xeon_e5405
from repro.cpu.model import CpuPerformanceModel, CpuWorkProfile

__all__ = [
    "CPUArchitecture",
    "xeon_e5405",
    "CpuPerformanceModel",
    "CpuWorkProfile",
]
