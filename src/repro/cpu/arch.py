"""CPU architecture parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class CPUArchitecture:
    """Static CPU node description for the roofline model."""

    name: str
    cores: int
    threads: int  # OpenMP threads used by the baseline (8 in the paper)
    clock_ghz: float
    flops_per_cycle_per_core: float  # SIMD width x FMA issue
    mem_bandwidth: float  # bytes/second, node-level sustained peak

    def __post_init__(self) -> None:
        for field_name in (
            "cores",
            "threads",
            "clock_ghz",
            "flops_per_cycle_per_core",
            "mem_bandwidth",
        ):
            check_positive(field_name, getattr(self, field_name))

    @property
    def peak_flops(self) -> float:
        """Node peak FLOP/s with all cores busy."""
        return (
            self.cores * self.clock_ghz * 1e9 * self.flops_per_cycle_per_core
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.cores} cores @ {self.clock_ghz}GHz, "
            f"{self.peak_flops / 1e9:.0f} GFLOPS, "
            f"{self.mem_bandwidth / 1e9:.1f} GB/s"
        )


def xeon_e5405() -> CPUArchitecture:
    """The paper's CPU: quad-core Intel Xeon E5405 at 2.00 GHz.

    The node runs the OpenMP baselines with 8 threads (Section IV-A).
    SSE gives 4 single-precision flops/cycle/core; the 1333 MT/s FSB
    sustains roughly 10 GB/s at the node level.
    """
    return CPUArchitecture(
        name="Intel Xeon E5405",
        cores=4,
        threads=8,
        clock_ghz=2.0,
        flops_per_cycle_per_core=4.0,
        mem_bandwidth=10.0e9,
    )
