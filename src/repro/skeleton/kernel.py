"""Kernel skeletons: one offloadable loop nest."""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.skeleton.access import AccessKind, ArrayAccess
from repro.skeleton.loops import Loop
from repro.skeleton.statement import Statement


@dataclass(frozen=True)
class KernelSkeleton:
    """A single kernel: a rectangular loop nest with statements inside.

    Loops are ordered outermost to innermost, and every statement is taken
    to execute once per innermost iteration (the workloads the paper
    studies are perfect nests; imperfect nests can be modeled by splitting
    into several kernels, which is also how global synchronization is
    expressed — e.g. CFD's three kernels).
    """

    name: str
    loops: tuple[Loop, ...]
    statements: tuple[Statement, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel name must be non-empty")
        object.__setattr__(self, "loops", tuple(self.loops))
        object.__setattr__(self, "statements", tuple(self.statements))
        if not self.loops:
            raise ValueError(f"kernel {self.name!r} needs at least one loop")
        if not self.statements:
            raise ValueError(f"kernel {self.name!r} needs at least one statement")
        seen: set[str] = set()
        for loop in self.loops:
            if loop.var in seen:
                raise ValueError(
                    f"kernel {self.name!r} declares loop variable "
                    f"{loop.var!r} twice"
                )
            seen.add(loop.var)

    # Loop structure -------------------------------------------------------
    @property
    def loop_map(self) -> dict[str, Loop]:
        return {loop.var: loop for loop in self.loops}

    @property
    def parallel_loops(self) -> tuple[Loop, ...]:
        return tuple(l for l in self.loops if l.parallel)

    @property
    def serial_loops(self) -> tuple[Loop, ...]:
        return tuple(l for l in self.loops if not l.parallel)

    @property
    def parallel_iterations(self) -> int:
        """Number of independent work-items exposed to the GPU."""
        return math.prod(l.trip_count for l in self.parallel_loops) or 1

    @property
    def serial_iterations(self) -> int:
        """Sequential work per work-item."""
        return math.prod(l.trip_count for l in self.serial_loops) or 1

    @property
    def total_iterations(self) -> int:
        return math.prod(l.trip_count for l in self.loops)

    # Work accounting ------------------------------------------------------
    def statement_weight(self, stmt: Statement) -> float:
        """Executions of ``stmt`` per innermost iteration (<= 1).

        1.0 for ordinary statements; for amortized statements the inverse
        of the trip-count product of the loops *not* named by
        ``stmt.amortize``.
        """
        if stmt.amortize is None:
            return 1.0
        loop_map = self.loop_map
        unknown = set(stmt.amortize) - set(loop_map)
        if unknown:
            raise ValueError(
                f"kernel {self.name!r}: statement amortized over unknown "
                f"loop variables {sorted(unknown)}"
            )
        excluded = math.prod(
            loop.trip_count
            for var, loop in loop_map.items()
            if var not in stmt.amortize
        )
        return 1.0 / excluded

    @property
    def flops_per_iteration(self) -> float:
        return sum(
            s.flops * s.branch_prob * self.statement_weight(s)
            for s in self.statements
        )

    @property
    def total_flops(self) -> float:
        return self.flops_per_iteration * self.total_iterations

    def accesses(self) -> tuple[ArrayAccess, ...]:
        return tuple(a for s in self.statements for a in s.accesses)

    def loads_per_iteration(self) -> float:
        return sum(
            s.branch_prob * self.statement_weight(s) * len(s.loads)
            for s in self.statements
        )

    def stores_per_iteration(self) -> float:
        return sum(
            s.branch_prob * self.statement_weight(s) * len(s.stores)
            for s in self.statements
        )

    def arrays(self) -> frozenset[str]:
        out: set[str] = set()
        for stmt in self.statements:
            out |= stmt.arrays()
        return frozenset(out)

    def reads(self) -> frozenset[str]:
        """Arrays this kernel loads from."""
        return frozenset(
            a.array for a in self.accesses() if a.kind is AccessKind.LOAD
        )

    def writes(self) -> frozenset[str]:
        """Arrays this kernel stores to."""
        return frozenset(
            a.array for a in self.accesses() if a.kind is AccessKind.STORE
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"kernel {self.name}: {len(self.loops)} loops "
            f"({self.parallel_iterations} parallel x "
            f"{self.serial_iterations} serial), "
            f"{len(self.statements)} statements"
        )
