"""Structural validation of skeletons.

These checks catch the mistakes that otherwise surface as silently wrong
footprints: accesses to undeclared arrays, rank mismatches, subscripts
referencing loop variables that do not enclose the statement, and accesses
whose static bounds fall outside the declared array extents.
"""

from __future__ import annotations

from typing import Mapping

from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton


class SkeletonError(ValueError):
    """A structurally invalid skeleton."""


def validate_kernel(
    kernel: KernelSkeleton, arrays: Mapping[str, ArrayDecl]
) -> None:
    """Validate one kernel against an array environment.

    Raises :class:`SkeletonError` on the first problem found.
    """
    loop_map = kernel.loop_map
    for stmt in kernel.statements:
        if stmt.amortize is not None:
            unknown_vars = set(stmt.amortize) - set(loop_map)
            if unknown_vars:
                raise SkeletonError(
                    f"kernel {kernel.name!r}: statement amortized over "
                    f"unknown loop variables {sorted(unknown_vars)}"
                )
        for access in stmt.accesses:
            decl = arrays.get(access.array)
            if decl is None:
                raise SkeletonError(
                    f"kernel {kernel.name!r} accesses undeclared array "
                    f"{access.array!r}"
                )
            if access.rank != decl.rank:
                raise SkeletonError(
                    f"kernel {kernel.name!r}: access to {decl.name!r} has "
                    f"{access.rank} subscripts but the array has rank "
                    f"{decl.rank}"
                )
            unknown = access.variables() - set(loop_map)
            if unknown:
                raise SkeletonError(
                    f"kernel {kernel.name!r}: access to {decl.name!r} uses "
                    f"loop variables {sorted(unknown)} not declared by the "
                    f"kernel's loop nest"
                )
            if decl.kind is ArrayKind.SPARSE or access.indirect:
                # Data-dependent subscripts: static bounds don't apply.
                continue
            for dim, idx in enumerate(access.indices):
                lo, hi = idx.bounds(loop_map)
                if lo < 0 or hi >= decl.shape[dim]:
                    raise SkeletonError(
                        f"kernel {kernel.name!r}: subscript {dim} of "
                        f"{decl.name!r} spans [{lo}, {hi}] outside the "
                        f"extent [0, {decl.shape[dim] - 1}]"
                    )


def validate_program(program: ProgramSkeleton) -> None:
    """Validate every kernel of a program against its declarations."""
    env = program.array_map
    for kernel in program.kernels:
        validate_kernel(kernel, env)
