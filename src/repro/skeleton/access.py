"""Affine array accesses.

Each subscript of an access is an affine expression over the surrounding
loop variables, ``sum(coeff[v] * v) + offset``.  That is exactly the class
of accesses Bounded Regular Section analysis (Havlak & Kennedy) handles:
over a rectangular iteration domain each subscript spans a strided interval,
so the footprint of the access is a BRS.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.skeleton.loops import Loop


class AccessKind(enum.Enum):
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class AffineIndex:
    """``sum(coeffs[var] * var) + offset`` with integer coefficients."""

    coeffs: Mapping[str, int]
    offset: int = 0

    def __post_init__(self) -> None:
        cleaned = {
            str(v): int(c) for v, c in dict(self.coeffs).items() if int(c) != 0
        }
        object.__setattr__(self, "coeffs", MappingProxyType(cleaned))
        object.__setattr__(self, "offset", int(self.offset))

    # Constructors --------------------------------------------------------
    @staticmethod
    def var(name: str, coeff: int = 1, offset: int = 0) -> "AffineIndex":
        """Index ``coeff * name + offset``."""
        return AffineIndex({name: coeff}, offset)

    @staticmethod
    def const(value: int) -> "AffineIndex":
        """A constant subscript."""
        return AffineIndex({}, value)

    # Queries -------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def coefficient(self, var: str) -> int:
        """Coefficient of ``var`` (0 if absent)."""
        return self.coeffs.get(var, 0)

    def variables(self) -> frozenset[str]:
        return frozenset(self.coeffs)

    def evaluate(self, binding: Mapping[str, int]) -> int:
        """Evaluate at a concrete iteration point."""
        total = self.offset
        for var, coeff in self.coeffs.items():
            if var not in binding:
                raise KeyError(f"no binding for loop variable {var!r}")
            total += coeff * binding[var]
        return total

    def bounds(self, loops: Mapping[str, Loop]) -> tuple[int, int]:
        """Inclusive (min, max) over the rectangular loop domain."""
        lo = hi = self.offset
        for var, coeff in self.coeffs.items():
            if var not in loops:
                raise KeyError(f"index references unknown loop variable {var!r}")
            loop = loops[var]
            a, b = coeff * loop.lower, coeff * loop.last
            lo += min(a, b)
            hi += max(a, b)
        return lo, hi

    def stride(self, loops: Mapping[str, Loop]) -> int:
        """GCD step of the values this subscript takes over the domain.

        A constant subscript has stride 0 by convention (a single point).
        Loops that execute a single iteration contribute no stride.
        """
        steps = [
            abs(coeff) * loops[var].step
            for var, coeff in self.coeffs.items()
            if loops[var].trip_count > 1
        ]
        if not steps:
            return 0
        return math.gcd(*steps) if len(steps) > 1 else steps[0]

    def shifted(self, delta: int) -> "AffineIndex":
        """The same expression offset by ``delta``."""
        return AffineIndex(dict(self.coeffs), self.offset + delta)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            (f"{c}*{v}" if c != 1 else v) for v, c in sorted(self.coeffs.items())
        ]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "+".join(parts).replace("+-", "-")


@dataclass(frozen=True)
class ArrayAccess:
    """One load or store of an array with affine subscripts.

    ``indirect=True`` marks a data-dependent (gather/scatter) access such
    as CFD's ``variables[neighbors[i][j]]``: the subscripts given are then
    only nominal, the touched section is unknown statically, and the
    paper's conservative rule applies — the whole array may be referenced
    (Section III-B), and the access never coalesces.
    """

    array: str
    indices: tuple[AffineIndex, ...]
    kind: AccessKind = AccessKind.LOAD
    indirect: bool = False
    #: Which subscript positions are data-dependent.  Empty while
    #: ``indirect`` is True means "all of them" (fully conservative).
    indirect_dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.array:
            raise ValueError("access must name an array")
        if not self.indices:
            raise ValueError(f"access to {self.array!r} needs >= 1 subscript")
        object.__setattr__(self, "indices", tuple(self.indices))
        dims = tuple(sorted(set(int(d) for d in self.indirect_dims)))
        object.__setattr__(self, "indirect_dims", dims)
        if dims and not self.indirect:
            raise ValueError(
                f"access to {self.array!r}: indirect_dims given but "
                f"indirect is False"
            )
        for d in dims:
            if not 0 <= d < len(self.indices):
                raise ValueError(
                    f"access to {self.array!r}: indirect dim {d} out of "
                    f"range for rank {len(self.indices)}"
                )

    @property
    def rank(self) -> int:
        return len(self.indices)

    def dim_is_indirect(self, dim: int) -> bool:
        """Is subscript ``dim`` data-dependent?"""
        if not self.indirect:
            return False
        if not self.indirect_dims:
            return True  # unspecified: all dims conservative
        return dim in self.indirect_dims

    @property
    def is_store(self) -> bool:
        return self.kind is AccessKind.STORE

    @property
    def is_load(self) -> bool:
        return self.kind is AccessKind.LOAD

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for idx in self.indices:
            out |= idx.variables()
        return frozenset(out)

    def innermost_coefficient(self, var: str) -> int:
        """Coefficient of ``var`` in the fastest-varying (last) subscript.

        Used by the transformation layer to decide whether mapping ``var``
        to adjacent GPU threads yields coalesced global memory accesses.
        """
        return self.indices[-1].coefficient(var)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        subs = "][".join(str(i) for i in self.indices)
        arrow = "<-" if self.is_store else "->"
        return f"{self.array}[{subs}] {arrow} {self.kind.value}"
