"""Code skeletons: the abstract CPU-code representation GROPHECY consumes.

A *code skeleton* (Meng et al., SC'11) summarizes the high-level semantics
of a kernel: its loop nest, which loops are data-parallel, per-iteration
computation intensity, and the array access patterns of each statement.
GROPHECY++ takes a :class:`~repro.skeleton.program.ProgramSkeleton` — an
ordered sequence of kernel skeletons sharing a set of array declarations —
and from it derives both the GPU kernel characteristics (via
:mod:`repro.transform`) and the CPU<->GPU transfer set (via
:mod:`repro.datausage`).
"""

from repro.skeleton.types import DType
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.access import AffineIndex, ArrayAccess, AccessKind
from repro.skeleton.loops import Loop
from repro.skeleton.statement import Statement
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.validate import validate_kernel, validate_program, SkeletonError
from repro.skeleton.parser import (
    SkeletonParseError,
    parse_skeleton,
    parse_skeleton_file,
)

__all__ = [
    "SkeletonParseError",
    "parse_skeleton",
    "parse_skeleton_file",
    "DType",
    "ArrayDecl",
    "ArrayKind",
    "AffineIndex",
    "ArrayAccess",
    "AccessKind",
    "Loop",
    "Statement",
    "KernelSkeleton",
    "ProgramSkeleton",
    "KernelBuilder",
    "ProgramBuilder",
    "validate_kernel",
    "validate_program",
    "SkeletonError",
]
