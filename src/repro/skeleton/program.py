"""Program skeletons: an ordered sequence of kernels over shared arrays."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.skeleton.arrays import ArrayDecl
from repro.skeleton.kernel import KernelSkeleton
from repro.util.fingerprint import canonical_json, stable_digest


def _index_payload(index) -> dict[str, Any]:
    return {
        "coeffs": sorted(index.coeffs.items()),
        "offset": index.offset,
    }


def _access_payload(access) -> dict[str, Any]:
    return {
        "array": access.array,
        "indices": [_index_payload(i) for i in access.indices],
        "kind": access.kind.value,
        "indirect": access.indirect,
        "indirect_dims": list(access.indirect_dims),
    }


def _statement_payload(statement) -> dict[str, Any]:
    # ``label`` is cosmetic and access order within a statement is
    # irrelevant to the analysis, so neither participates.
    return {
        "accesses": sorted(
            (_access_payload(a) for a in statement.accesses),
            key=canonical_json,
        ),
        "flops": statement.flops,
        "branch_prob": statement.branch_prob,
        "amortize": (
            sorted(statement.amortize)
            if statement.amortize is not None
            else None
        ),
    }


def _kernel_payload(kernel: KernelSkeleton) -> dict[str, Any]:
    # Loop order matters (it defines the nest); statement order does not
    # (every statement executes once per innermost iteration), so
    # statements are sorted into a canonical order.
    return {
        "name": kernel.name,
        "loops": [
            {
                "var": loop.var,
                "lower": loop.lower,
                "upper": loop.upper,
                "step": loop.step,
                "parallel": loop.parallel,
            }
            for loop in kernel.loops
        ],
        "statements": sorted(
            (_statement_payload(s) for s in kernel.statements),
            key=canonical_json,
        ),
    }


def _array_payload(array: ArrayDecl) -> dict[str, Any]:
    return {
        "name": array.name,
        "shape": list(array.shape),
        "dtype": array.dtype.label,
        "kind": array.kind.value,
    }


def kernel_fingerprint(
    kernel: KernelSkeleton, array_map: Mapping[str, ArrayDecl]
) -> str:
    """Content hash of one kernel plus the arrays it touches.

    Everything kernel exploration reads: the kernel's loops and
    statements (canonicalized exactly like :meth:`ProgramSkeleton.
    fingerprint`) and the declarations of the arrays its accesses name.
    Program identity stays *out*, so two programs sharing a kernel share
    its cache entry — the kernel-level cache key of
    :class:`repro.service.engine.ProjectionEngine`.
    """
    touched = sorted(
        {
            access.array
            for statement in kernel.statements
            for access in statement.accesses
        }
    )
    return stable_digest(
        {
            "kernel": _kernel_payload(kernel),
            "arrays": [_array_payload(array_map[name]) for name in touched],
        }
    )


@dataclass(frozen=True)
class ProgramSkeleton:
    """The unit GROPHECY++ analyzes: kernels + array declarations + hints.

    ``kernels`` is the sequence executed once per application iteration;
    for the paper's iterative applications the transfer set is independent
    of the iteration count (input data moves once before the first
    iteration and output once after the last), which
    :class:`repro.datausage.DataUsageAnalyzer` exploits.

    ``temporaries`` is the user hint from Section III-B: written arrays
    that need not be copied back to the CPU.
    """

    name: str
    arrays: tuple[ArrayDecl, ...]
    kernels: tuple[KernelSkeleton, ...]
    temporaries: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("program name must be non-empty")
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "temporaries", frozenset(self.temporaries))
        if not self.arrays:
            raise ValueError(f"program {self.name!r} declares no arrays")
        if not self.kernels:
            raise ValueError(f"program {self.name!r} has no kernels")
        names = [a.name for a in self.arrays]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"program {self.name!r} declares arrays twice: {dupes}"
            )
        kernel_names = [k.name for k in self.kernels]
        if len(kernel_names) != len(set(kernel_names)):
            dupes = sorted(
                {n for n in kernel_names if kernel_names.count(n) > 1}
            )
            raise ValueError(
                f"program {self.name!r} declares kernels twice: {dupes}"
            )
        unknown = self.temporaries - set(names)
        if unknown:
            raise ValueError(
                f"temporary hints reference undeclared arrays: {sorted(unknown)}"
            )

    @property
    def array_map(self) -> dict[str, ArrayDecl]:
        return {a.name: a for a in self.arrays}

    def array(self, name: str) -> ArrayDecl:
        try:
            return self.array_map[name]
        except KeyError:
            raise KeyError(
                f"program {self.name!r} declares no array {name!r}"
            ) from None

    def kernel(self, name: str) -> KernelSkeleton:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"program {self.name!r} has no kernel {name!r}")

    @property
    def total_flops(self) -> float:
        return sum(k.total_flops for k in self.kernels)

    def fingerprint(self) -> str:
        """Stable content hash of everything the projection depends on.

        Two programs that differ only in *representation* — array
        declaration order, statement order within a kernel, statement
        labels — fingerprint identically; any change to shapes, dtypes,
        flops, loop structure, kernel order (which drives liveness), or
        temporary hints produces a different digest.  The projection
        service uses this as part of its cache key.
        """
        payload = {
            "name": self.name,
            "arrays": sorted(
                (_array_payload(a) for a in self.arrays),
                key=lambda p: p["name"],
            ),
            "kernels": [_kernel_payload(k) for k in self.kernels],
            "temporaries": sorted(self.temporaries),
        }
        return stable_digest(payload)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"program {self.name}: {len(self.kernels)} kernels, "
            f"{len(self.arrays)} arrays"
        )
