"""Program skeletons: an ordered sequence of kernels over shared arrays."""

from __future__ import annotations

from dataclasses import dataclass

from repro.skeleton.arrays import ArrayDecl
from repro.skeleton.kernel import KernelSkeleton


@dataclass(frozen=True)
class ProgramSkeleton:
    """The unit GROPHECY++ analyzes: kernels + array declarations + hints.

    ``kernels`` is the sequence executed once per application iteration;
    for the paper's iterative applications the transfer set is independent
    of the iteration count (input data moves once before the first
    iteration and output once after the last), which
    :class:`repro.datausage.DataUsageAnalyzer` exploits.

    ``temporaries`` is the user hint from Section III-B: written arrays
    that need not be copied back to the CPU.
    """

    name: str
    arrays: tuple[ArrayDecl, ...]
    kernels: tuple[KernelSkeleton, ...]
    temporaries: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("program name must be non-empty")
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "temporaries", frozenset(self.temporaries))
        if not self.arrays:
            raise ValueError(f"program {self.name!r} declares no arrays")
        if not self.kernels:
            raise ValueError(f"program {self.name!r} has no kernels")
        names = [a.name for a in self.arrays]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"program {self.name!r} declares arrays twice: {dupes}"
            )
        kernel_names = [k.name for k in self.kernels]
        if len(kernel_names) != len(set(kernel_names)):
            dupes = sorted(
                {n for n in kernel_names if kernel_names.count(n) > 1}
            )
            raise ValueError(
                f"program {self.name!r} declares kernels twice: {dupes}"
            )
        unknown = self.temporaries - set(names)
        if unknown:
            raise ValueError(
                f"temporary hints reference undeclared arrays: {sorted(unknown)}"
            )

    @property
    def array_map(self) -> dict[str, ArrayDecl]:
        return {a.name: a for a in self.arrays}

    def array(self, name: str) -> ArrayDecl:
        try:
            return self.array_map[name]
        except KeyError:
            raise KeyError(
                f"program {self.name!r} declares no array {name!r}"
            ) from None

    def kernel(self, name: str) -> KernelSkeleton:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"program {self.name!r} has no kernel {name!r}")

    @property
    def total_flops(self) -> float:
        return sum(k.total_flops for k in self.kernels)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"program {self.name}: {len(self.kernels)} kernels, "
            f"{len(self.arrays)} arrays"
        )
