"""Statements: the computation/access payload inside a loop nest."""

from __future__ import annotations

from dataclasses import dataclass

from repro.skeleton.access import AccessKind, ArrayAccess
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class Statement:
    """One straight-line statement executed per innermost iteration.

    ``flops`` is the floating-point operation count of the statement body
    per execution (the skeleton's "computation intensity"); ``branch_prob``
    optionally marks the statement as guarded by a data-dependent branch
    taken with the given probability, which the GPU model turns into
    divergence overhead.

    ``amortize`` models imperfect nests: when set, the statement executes
    once per distinct combination of the named loop variables rather than
    per innermost iteration (e.g. Stassuij loads each CSR entry once per
    (row, nonzero), not once per dense column).  The statement's work is
    weighted accordingly in all accounting.
    """

    accesses: tuple[ArrayAccess, ...]
    flops: float = 0.0
    label: str = ""
    branch_prob: float = 1.0
    amortize: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "accesses", tuple(self.accesses))
        check_non_negative("flops", self.flops)
        if not 0.0 < self.branch_prob <= 1.0:
            raise ValueError(
                f"branch_prob must be in (0, 1], got {self.branch_prob}"
            )
        if self.amortize is not None:
            object.__setattr__(self, "amortize", tuple(self.amortize))
            if not self.amortize:
                raise ValueError(
                    "amortize must name at least one loop variable "
                    "(or be None for the full nest)"
                )

    @property
    def loads(self) -> tuple[ArrayAccess, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.LOAD)

    @property
    def stores(self) -> tuple[ArrayAccess, ...]:
        return tuple(a for a in self.accesses if a.kind is AccessKind.STORE)

    def arrays(self) -> frozenset[str]:
        return frozenset(a.array for a in self.accesses)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = self.label or "stmt"
        return (
            f"{name}: {len(self.loads)} loads, {len(self.stores)} stores, "
            f"{self.flops:g} flops"
        )
