"""Array declarations referenced by kernel skeletons."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.skeleton.types import DType
from repro.util.validation import check_positive


class ArrayKind(enum.Enum):
    """Dense arrays have analyzable Bounded Regular Sections.

    ``SPARSE`` marks arrays whose accessed section is data-dependent (e.g.
    CSR column indices selecting rows of a dense operand, or the unstructured
    neighbor lists in CFD).  For these the paper's analyzer conservatively
    assumes the whole array may be referenced unless the user provides hints
    (Section III-B).
    """

    DENSE = "dense"
    SPARSE = "sparse"


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of one host array visible to a kernel sequence.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`~repro.skeleton.program.ProgramSkeleton`.
    shape:
        Extent of each dimension, row-major.
    dtype:
        Element type.
    kind:
        Dense (BRS-analyzable) or sparse (conservative transfer).
    """

    name: str
    shape: tuple[int, ...]
    dtype: DType = DType.float32
    kind: ArrayKind = ArrayKind.DENSE

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("array name must be non-empty")
        if not self.shape:
            raise ValueError(f"array {self.name!r} must have at least one dim")
        for extent in self.shape:
            check_positive(f"array {self.name!r} dimension extent", extent)
        object.__setattr__(self, "shape", tuple(int(e) for e in self.shape))

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def element_count(self) -> int:
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        """Total allocation size in bytes."""
        return self.element_count * self.dtype.size_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(e) for e in self.shape)
        return f"{self.name}[{dims}]:{self.dtype.label}"
