"""Element types usable in array declarations."""

from __future__ import annotations

import enum


class DType(enum.Enum):
    """Array element type with its size in bytes.

    ``complex64`` matters for Stassuij, whose dense matrix holds complex
    numbers; everything else in the paper's workloads is ``float32`` or
    ``int32`` (CSR index vectors).
    """

    int32 = ("int32", 4)
    int64 = ("int64", 8)
    float32 = ("float32", 4)
    float64 = ("float64", 8)
    complex64 = ("complex64", 8)
    complex128 = ("complex128", 16)

    def __init__(self, label: str, size: int) -> None:
        self.label = label
        self.size_bytes = size

    @property
    def is_complex(self) -> bool:
        return self in (DType.complex64, DType.complex128)

    @property
    def is_floating(self) -> bool:
        return self in (
            DType.float32,
            DType.float64,
            DType.complex64,
            DType.complex128,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.label}"
