"""Loop descriptions for kernel skeletons."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Loop:
    """A counted loop ``for var in range(lower, upper, step)``.

    ``parallel`` marks the loop as data-parallel (safe to map to GPU
    threads); in GROPHECY's input language this is the parallelism
    annotation the user supplies with the skeleton.
    """

    var: str
    lower: int
    upper: int  # exclusive, like range()
    step: int = 1
    parallel: bool = False

    def __post_init__(self) -> None:
        if not self.var:
            raise ValueError("loop variable name must be non-empty")
        check_positive("loop step", self.step)
        if self.upper <= self.lower:
            raise ValueError(
                f"loop {self.var!r} is empty: range({self.lower}, {self.upper})"
            )

    @property
    def trip_count(self) -> int:
        """Number of iterations executed."""
        return (self.upper - self.lower + self.step - 1) // self.step

    @property
    def last(self) -> int:
        """The last iteration value actually taken."""
        return self.lower + (self.trip_count - 1) * self.step

    def with_bounds(self, lower: int, upper: int) -> "Loop":
        """Copy with new bounds (used by tiling transforms)."""
        return Loop(self.var, lower, upper, self.step, self.parallel)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = " par" if self.parallel else ""
        return f"for {self.var} in [{self.lower},{self.upper}) step {self.step}{tag}"
