"""A small text format for code skeletons.

GROPHECY's input is a "simplified description of the corresponding CPU
code"; this parser gives the library an equivalent on-disk format, so a
skeleton can live next to the code it describes and be projected from the
CLI without writing Python.

Grammar (line-oriented; ``#`` starts a comment)::

    program <name>
    array <name>[<d0>][<d1>...] [f32|f64|i32|i64|c64|c128] [sparse]
    temporary <name> [<name> ...]

    kernel <name>
      parfor <var> in <lo>..<hi>          # parallel loop (hi exclusive)
      for <var> in <lo>..<hi> [step <s>]  # serial loop
      stmt [flops=<f>] [prob=<p>] [amortize=<v1>,<v2>]
        load  <array>[<idx>][<idx>...]
        gather <array>[<idx>][<idx>...] [dims=<d0>,<d1>]
        store <array>[<idx>][<idx>...]
        scatter <array>[<idx>][<idx>...] [dims=...]

Subscripts are affine: ``i``, ``i+1``, ``2*i-3``, ``4`` (one variable per
subscript; multi-variable subscripts like ``8*i+j`` are also accepted).

Example::

    program hotspot
    array temp[64][64] f32
    array power[64][64] f32
    array out[64][64] f32

    kernel step
      parfor i in 1..63
      parfor j in 1..63
      stmt flops=14
        load temp[i][j]
        load temp[i-1][j]
        load temp[i+1][j]
        load temp[i][j-1]
        load temp[i][j+1]
        load power[i][j]
        store out[i][j]
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.skeleton.access import AffineIndex
from repro.skeleton.arrays import ArrayKind
from repro.skeleton.builder import KernelBuilder, ProgramBuilder
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.types import DType

_DTYPES = {
    "f32": DType.float32,
    "f64": DType.float64,
    "i32": DType.int32,
    "i64": DType.int64,
    "c64": DType.complex64,
    "c128": DType.complex128,
}

_TERM = re.compile(r"^(?:(\d+)\s*\*\s*)?([A-Za-z_]\w*)$")


class SkeletonParseError(ValueError):
    """Malformed skeleton text, with a line number."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _parse_index(expr: str, line_no: int) -> AffineIndex:
    """Parse one affine subscript like ``2*i - 3 + j``."""
    expr = expr.strip()
    if not expr:
        raise SkeletonParseError(line_no, "empty subscript")
    # Normalize: insert '+' separators, keep '-' attached to its term.
    normalized = expr.replace("-", "+-").replace(" ", "")
    coeffs: dict[str, int] = {}
    offset = 0
    for raw in normalized.split("+"):
        if not raw:
            continue
        sign = 1
        term = raw
        if term.startswith("-"):
            sign = -1
            term = term[1:]
        if re.fullmatch(r"\d+", term):
            offset += sign * int(term)
            continue
        match = _TERM.match(term)
        if not match:
            raise SkeletonParseError(
                line_no, f"cannot parse subscript term {raw!r} in {expr!r}"
            )
        coeff = int(match.group(1)) if match.group(1) else 1
        var = match.group(2)
        coeffs[var] = coeffs.get(var, 0) + sign * coeff
    return AffineIndex(coeffs, offset)


def _parse_subscripts(text: str, line_no: int) -> tuple[str, list[AffineIndex]]:
    """Split ``name[a][b]`` into the array name and its subscripts."""
    match = re.match(r"^([A-Za-z_]\w*)((?:\[[^\]]*\])+)$", text.strip())
    if not match:
        raise SkeletonParseError(
            line_no, f"expected array[subscripts], got {text!r}"
        )
    name = match.group(1)
    indices = [
        _parse_index(part, line_no)
        for part in re.findall(r"\[([^\]]*)\]", match.group(2))
    ]
    return name, indices


def _parse_kv(tokens: list[str], line_no: int) -> dict[str, str]:
    out: dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise SkeletonParseError(
                line_no, f"expected key=value, got {token!r}"
            )
        key, value = token.split("=", 1)
        out[key] = value
    return out


def _lines(text: str) -> Iterator[tuple[int, str]]:
    for i, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            yield i, line


def parse_skeleton(text: str) -> ProgramSkeleton:
    """Parse skeleton text into a validated :class:`ProgramSkeleton`."""
    program: ProgramBuilder | None = None
    kernel: KernelBuilder | None = None
    pending_stmt: dict | None = None
    temporaries: list[str] = []

    def flush_statement(line_no: int) -> None:
        nonlocal pending_stmt
        if pending_stmt is None:
            return
        if not pending_stmt["has_access"]:
            raise SkeletonParseError(
                pending_stmt["line"], "stmt has no accesses"
            )
        assert kernel is not None
        kernel.statement(
            flops=pending_stmt["flops"],
            branch_prob=pending_stmt["prob"],
            amortize=pending_stmt["amortize"],
        )
        pending_stmt = None

    def flush_kernel(line_no: int) -> None:
        nonlocal kernel
        flush_statement(line_no)
        if kernel is not None:
            assert program is not None
            try:
                program.kernel(kernel)
            except SkeletonParseError:
                raise
            except Exception as exc:
                raise SkeletonParseError(
                    line_no, f"invalid program: {exc}"
                ) from exc
            kernel = None

    for line_no, line in _lines(text):
        tokens = line.split()
        head = tokens[0]

        if head == "program":
            if program is not None:
                raise SkeletonParseError(line_no, "duplicate program line")
            if len(tokens) != 2:
                raise SkeletonParseError(line_no, "usage: program <name>")
            program = ProgramBuilder(tokens[1])
            continue
        if program is None:
            raise SkeletonParseError(
                line_no, "the first directive must be 'program <name>'"
            )

        if head == "array":
            if kernel is not None:
                raise SkeletonParseError(
                    line_no, "arrays must be declared before kernels"
                )
            if len(tokens) < 2:
                raise SkeletonParseError(line_no, "usage: array name[dims]")
            name, dims = _parse_array_decl(tokens[1], line_no)
            dtype = DType.float32
            kind = ArrayKind.DENSE
            for extra in tokens[2:]:
                if extra in _DTYPES:
                    dtype = _DTYPES[extra]
                elif extra == "sparse":
                    kind = ArrayKind.SPARSE
                else:
                    raise SkeletonParseError(
                        line_no, f"unknown array attribute {extra!r}"
                    )
            program.array(name, dims, dtype, kind)
        elif head == "temporary":
            temporaries.extend(tokens[1:])
        elif head == "kernel":
            flush_kernel(line_no)
            if len(tokens) != 2:
                raise SkeletonParseError(line_no, "usage: kernel <name>")
            kernel = KernelBuilder(tokens[1])
        elif head in ("parfor", "for"):
            if kernel is None:
                raise SkeletonParseError(line_no, f"{head} outside a kernel")
            flush_statement(line_no)
            lo, hi, step = _parse_range(tokens, line_no)
            kernel.loop(
                tokens[1], hi, lower=lo, step=step,
                parallel=(head == "parfor"),
            )
        elif head == "stmt":
            if kernel is None:
                raise SkeletonParseError(line_no, "stmt outside a kernel")
            flush_statement(line_no)
            kv = _parse_kv(tokens[1:], line_no)
            unknown = set(kv) - {"flops", "prob", "amortize"}
            if unknown:
                raise SkeletonParseError(
                    line_no, f"unknown stmt attributes {sorted(unknown)}"
                )
            pending_stmt = {
                "line": line_no,
                "flops": float(kv.get("flops", 0.0)),
                "prob": float(kv.get("prob", 1.0)),
                "amortize": (
                    tuple(kv["amortize"].split(","))
                    if "amortize" in kv
                    else None
                ),
                "has_access": False,
            }
        elif head in ("load", "store", "gather", "scatter"):
            if kernel is None or pending_stmt is None:
                raise SkeletonParseError(
                    line_no, f"{head} outside a stmt block"
                )
            # Subscripts may contain spaces ("a[i - 3]"); key=value
            # attributes trail the reference.
            attr_tokens = [t for t in tokens[1:] if "=" in t]
            ref = "".join(t for t in tokens[1:] if "=" not in t)
            name, indices = _parse_subscripts(ref, line_no)
            dims = None
            for extra in attr_tokens:
                kv = _parse_kv([extra], line_no)
                if set(kv) != {"dims"}:
                    raise SkeletonParseError(
                        line_no, f"unknown access attribute {extra!r}"
                    )
                dims = tuple(int(d) for d in kv["dims"].split(","))
            if head == "load":
                kernel.load(name, *indices)
            elif head == "store":
                kernel.store(name, *indices)
            elif head == "gather":
                kernel.gather(name, *indices, dims=dims)
            else:
                kernel.scatter(name, *indices, dims=dims)
            pending_stmt["has_access"] = True
        else:
            raise SkeletonParseError(line_no, f"unknown directive {head!r}")

    if program is None:
        raise SkeletonParseError(1, "empty skeleton (no 'program' line)")
    flush_kernel(0)
    if temporaries:
        program.temporary(*temporaries)
    try:
        return program.build()
    except Exception as exc:
        raise SkeletonParseError(0, f"invalid program: {exc}") from exc


def parse_skeleton_file(path) -> ProgramSkeleton:
    """Parse a skeleton from a file path."""
    from pathlib import Path

    return parse_skeleton(Path(path).read_text(encoding="utf-8"))


def _parse_array_decl(text: str, line_no: int) -> tuple[str, list[int]]:
    match = re.match(r"^([A-Za-z_]\w*)((?:\[\d+\])+)$", text)
    if not match:
        raise SkeletonParseError(
            line_no, f"expected name[extent]..., got {text!r}"
        )
    dims = [int(d) for d in re.findall(r"\[(\d+)\]", match.group(2))]
    return match.group(1), dims


def _parse_range(tokens: list[str], line_no: int) -> tuple[int, int, int]:
    # <head> <var> in <lo>..<hi> [step <s>]
    if len(tokens) < 4 or tokens[2] != "in":
        raise SkeletonParseError(
            line_no, f"usage: {tokens[0]} <var> in <lo>..<hi> [step <s>]"
        )
    match = re.fullmatch(r"(-?\d+)\.\.(-?\d+)", tokens[3])
    if not match:
        raise SkeletonParseError(
            line_no, f"expected <lo>..<hi>, got {tokens[3]!r}"
        )
    lo, hi = int(match.group(1)), int(match.group(2))
    step = 1
    if len(tokens) > 4:
        if len(tokens) != 6 or tokens[4] != "step":
            raise SkeletonParseError(line_no, "trailing tokens after range")
        step = int(tokens[5])
    return lo, hi, step
