"""Fluent builders for skeletons.

The raw dataclasses are verbose to assemble by hand; workload definitions
use these builders, which also run :mod:`repro.skeleton.validate` on
``build()`` so malformed skeletons fail at construction time.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.skeleton.access import AccessKind, AffineIndex, ArrayAccess
from repro.skeleton.arrays import ArrayDecl, ArrayKind
from repro.skeleton.kernel import KernelSkeleton
from repro.skeleton.loops import Loop
from repro.skeleton.program import ProgramSkeleton
from repro.skeleton.statement import Statement
from repro.skeleton.types import DType
from repro.skeleton.validate import validate_kernel, validate_program


def _as_index(spec: object) -> AffineIndex:
    """Coerce a subscript spec: AffineIndex | int | str | (str, coeff, off)."""
    if isinstance(spec, AffineIndex):
        return spec
    if isinstance(spec, int):
        return AffineIndex.const(spec)
    if isinstance(spec, str):
        return AffineIndex.var(spec)
    if isinstance(spec, tuple) and len(spec) in (2, 3):
        var, coeff = spec[0], spec[1]
        offset = spec[2] if len(spec) == 3 else 0
        return AffineIndex.var(str(var), int(coeff), int(offset))
    raise TypeError(f"cannot interpret subscript spec {spec!r}")


class KernelBuilder:
    """Builds one :class:`KernelSkeleton`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._loops: list[Loop] = []
        self._statements: list[Statement] = []
        self._pending: list[ArrayAccess] = []

    def loop(
        self,
        var: str,
        upper: int,
        lower: int = 0,
        step: int = 1,
        parallel: bool = False,
    ) -> "KernelBuilder":
        """Append a loop (outermost first)."""
        self._loops.append(Loop(var, lower, upper, step, parallel))
        return self

    def parallel_loop(
        self, var: str, upper: int, lower: int = 0, step: int = 1
    ) -> "KernelBuilder":
        return self.loop(var, upper, lower, step, parallel=True)

    def load(self, array: str, *subscripts: object) -> "KernelBuilder":
        """Queue a load access for the next ``statement`` call."""
        self._pending.append(
            ArrayAccess(array, tuple(_as_index(s) for s in subscripts), AccessKind.LOAD)
        )
        return self

    def gather(
        self,
        array: str,
        *subscripts: object,
        dims: tuple[int, ...] | None = None,
    ) -> "KernelBuilder":
        """Queue an *indirect* load (data-dependent subscripts).

        The subscripts are nominal; the analyzer treats the touched
        section as the whole array.  ``dims`` names which subscript
        positions are data-dependent (all of them if omitted); an access
        whose *fastest* dimension stays affine can still coalesce.
        """
        self._pending.append(
            ArrayAccess(
                array,
                tuple(_as_index(s) for s in subscripts),
                AccessKind.LOAD,
                indirect=True,
                indirect_dims=dims or (),
            )
        )
        return self

    def store(self, array: str, *subscripts: object) -> "KernelBuilder":
        """Queue a store access for the next ``statement`` call."""
        self._pending.append(
            ArrayAccess(
                array, tuple(_as_index(s) for s in subscripts), AccessKind.STORE
            )
        )
        return self

    def scatter(
        self,
        array: str,
        *subscripts: object,
        dims: tuple[int, ...] | None = None,
    ) -> "KernelBuilder":
        """Queue an *indirect* store (data-dependent subscripts)."""
        self._pending.append(
            ArrayAccess(
                array,
                tuple(_as_index(s) for s in subscripts),
                AccessKind.STORE,
                indirect=True,
                indirect_dims=dims or (),
            )
        )
        return self

    def statement(
        self,
        flops: float = 0.0,
        label: str = "",
        branch_prob: float = 1.0,
        amortize: tuple[str, ...] | None = None,
    ) -> "KernelBuilder":
        """Close the currently queued accesses into one statement."""
        if not self._pending:
            raise ValueError(
                f"statement() with no queued accesses in kernel {self._name!r}"
            )
        self._statements.append(
            Statement(tuple(self._pending), flops, label, branch_prob, amortize)
        )
        self._pending = []
        return self

    def build(self, arrays: Sequence[ArrayDecl] | None = None) -> KernelSkeleton:
        if self._pending:
            raise ValueError(
                f"kernel {self._name!r} has queued accesses without a "
                f"closing statement() call"
            )
        kernel = KernelSkeleton(
            self._name, tuple(self._loops), tuple(self._statements)
        )
        if arrays is not None:
            validate_kernel(kernel, {a.name: a for a in arrays})
        return kernel


class ProgramBuilder:
    """Builds a :class:`ProgramSkeleton` with validation."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._arrays: list[ArrayDecl] = []
        self._kernels: list[KernelSkeleton] = []
        self._temporaries: set[str] = set()

    def array(
        self,
        name: str,
        shape: Iterable[int],
        dtype: DType = DType.float32,
        kind: ArrayKind = ArrayKind.DENSE,
    ) -> "ProgramBuilder":
        self._arrays.append(ArrayDecl(name, tuple(shape), dtype, kind))
        return self

    def kernel(self, kernel: KernelSkeleton | KernelBuilder) -> "ProgramBuilder":
        if isinstance(kernel, KernelBuilder):
            kernel = kernel.build(self._arrays)
        self._kernels.append(kernel)
        return self

    def temporary(self, *array_names: str) -> "ProgramBuilder":
        """Hint: these written arrays need not be copied back (Sec. III-B)."""
        self._temporaries.update(array_names)
        return self

    def build(self) -> ProgramSkeleton:
        program = ProgramSkeleton(
            self._name,
            tuple(self._arrays),
            tuple(self._kernels),
            frozenset(self._temporaries),
        )
        validate_program(program)
        return program
