"""The surrogate serving front-end: microseconds, or exactly right.

:class:`SurrogateEngine` wraps an exact
:class:`~repro.service.engine.ProjectionEngine` and answers
:class:`~repro.service.engine.ProjectionRequest`s through the learned
model whenever it is confident, falling back to the exact streaming
pipeline otherwise.  Three serving modes:

- ``auto`` (default) — confidence-gated: the model answers when every
  kernel's classification margin clears the calibrated threshold and
  every feature row lies inside the trained domain; anything else (and
  any engine built with ``provenance=True`` — provenance is an exact
  artifact) runs the exact path;
- ``surrogate`` — forced: the model answers whenever it structurally
  can (matching arch/space, analyzable kernels), threshold or not;
- ``exact`` — the wrapped engine, untouched.

Every response carries a
:class:`~repro.obs.provenance.ServingProvenance` saying which path
answered and why; ``surrogate_hits`` / ``surrogate_fallbacks`` counters
land on the shared :class:`~repro.service.metrics.ServiceMetrics`.

The hot path is deliberately cache-shaped: a program's feature matrix,
model scores, winning labels, and acceptance verdict depend only on the
program + hints (the skeleton encodes the dataset; the model is pinned
to one arch and space), so they are computed once per program identity
and a steady-state query pays a dictionary hit, four multiply-adds for
the transfer time under the query's bus, and response assembly — single-
digit microseconds.  Exactly the what-if pattern the request cache
serves, minus the search that fills it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.datausage.analyzer import analyze_transfers
from repro.gpu.arch import GPUArchitecture
from repro.obs.provenance import ServingProvenance
from repro.obs.trace import span
from repro.service.engine import (
    ProjectionEngine,
    ProjectionRequest,
    ProjectionResponse,
)
from repro.surrogate.features import kernel_feature_row
from repro.surrogate.model import SurrogateModel
from repro.surrogate.store import StaleModelError
from repro.transform.analysis import analyze_kernel
from repro.transform.space import TransformationSpace

SERVING_MODES = ("auto", "surrogate", "exact")


@dataclass(frozen=True)
class SurrogateEstimate:
    """The model's answer: predicted time + best mapping per kernel."""

    program: str
    kernel_seconds: float
    transfer_seconds: float
    #: (kernel name, winning mapping label) in program order.
    mappings: tuple[tuple[str, str], ...]
    #: Conformal band: the true log kernel time lay within ±band of the
    #: prediction for the calibration quantile of training queries.
    log_band: float

    def total_seconds(self, iterations: int = 1) -> float:
        return self.kernel_seconds * iterations + self.transfer_seconds


@dataclass(frozen=True)
class SurrogateResponse:
    """One served query: a surrogate estimate or an exact response."""

    request_id: str
    provenance: ServingProvenance
    seconds: float  # wall time spent serving this request
    iterations: int
    estimate: SurrogateEstimate | None = None
    response: ProjectionResponse | None = None

    def __post_init__(self) -> None:
        if (self.estimate is None) == (self.response is None):
            raise ValueError(
                "exactly one of estimate/response must be present"
            )

    @property
    def path(self) -> str:
        return self.provenance.path

    @property
    def confidence(self) -> float | None:
        return self.provenance.confidence

    @property
    def cached(self) -> bool:
        """Cache verdict (surrogate answers never touch the cache)."""
        return bool(self.response.cached) if self.response else False

    @property
    def total_seconds(self) -> float:
        if self.estimate is not None:
            return self.estimate.total_seconds(self.iterations)
        return self.response.total_seconds

    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready record; exact fallbacks extend the engine record."""
        if self.response is not None:
            record = self.response.to_dict()
            record["path"] = self.provenance.path
            record["serving"] = self.provenance.to_dict()
            return record
        estimate = self.estimate
        return {
            "id": self.request_id,
            "ok": True,
            "path": self.provenance.path,
            "serving": self.provenance.to_dict(),
            "seconds": self.seconds,
            "iterations": self.iterations,
            "total_seconds": self.total_seconds,
            "kernel_seconds": estimate.kernel_seconds,
            "transfer_seconds": estimate.transfer_seconds,
            "log_band": estimate.log_band,
            "mappings": {name: label for name, label in estimate.mappings},
        }


class _Prepared:
    """Everything query-invariant about one (program, hints) pair."""

    __slots__ = (
        "program",
        "hints",
        "error",
        "kernel_seconds",
        "mappings",
        "accepted",
        "confidence",
        "min_margin",
        "h2d_count",
        "h2d_bytes",
        "d2h_count",
        "d2h_bytes",
    )


class SurrogateEngine:
    """Confidence-gated surrogate serving over an exact engine."""

    def __init__(
        self,
        model: SurrogateModel,
        exact: ProjectionEngine,
        mode: str = "auto",
    ) -> None:
        if mode not in SERVING_MODES:
            raise ValueError(
                f"unknown serving mode {mode!r}: expected one of "
                f"{', '.join(SERVING_MODES)}"
            )
        if exact.arch.fingerprint() != model.arch_fingerprint:
            raise StaleModelError(
                f"surrogate model was trained for arch "
                f"{model.arch_name!r}, engine serves {exact.arch.name!r} "
                f"— retrain or switch engines"
            )
        if exact.space.fingerprint() != model.space_fingerprint:
            raise StaleModelError(
                "surrogate model's transformation space does not match "
                "the engine's — retrain"
            )
        self.model = model
        self.exact = exact
        self.mode = mode
        self.metrics = exact.metrics
        #: Optional shadow auditor (``repro.obs.audit.ShadowAuditor``):
        #: when set, every accepted surrogate answer is offered for
        #: off-hot-path exact re-scoring via ``auditor.consider``.
        self.auditor: Any = None
        configs = exact.space.configs()
        self._labels = tuple(config.label() for config in configs)
        #: (id(program), id(hints), batched) -> _Prepared; strong refs
        #: inside _Prepared pin the ids against reuse.
        self._prepared: dict[tuple[int, int, bool], _Prepared] = {}
        #: id(arch)/id(space) -> fingerprint verdict (fingerprints cost
        #: a digest; identity-cache them off the hot path).
        self._arch_ok: dict[int, tuple[GPUArchitecture, bool]] = {}
        self._space_ok: dict[int, tuple[TransformationSpace, bool]] = {}

    # Preparation ---------------------------------------------------------
    def _prepare(self, request: ProjectionRequest) -> _Prepared:
        key = (
            id(request.program),
            id(request.hints),
            bool(request.batched_transfers),
        )
        prepared = self._prepared.get(key)
        if (
            prepared is not None
            and prepared.program is request.program
            and prepared.hints is request.hints
        ):
            return prepared
        prepared = self._build(request)
        self._prepared[key] = prepared
        return prepared

    def _build(self, request: ProjectionRequest) -> _Prepared:
        program = request.program
        arch = self.exact.arch
        model = self.model
        prepared = _Prepared()
        prepared.program = program
        prepared.hints = request.hints
        prepared.error = None
        try:
            rows = np.vstack(
                [
                    kernel_feature_row(
                        analyze_kernel(
                            kernel,
                            program.array_map,
                            arch.strict_coalescing,
                        ),
                        arch,
                    )
                    for kernel in program.kernels
                ]
            )
        except ValueError as exc:
            # A kernel without a mappable parallel loop: the exact
            # explorer rejects it too, so route there for its error.
            prepared.error = exc
            return prepared
        log_pred, config_index, margins = model.predict_rows(rows)
        accepted = model.accepts(rows, margins)
        prepared.kernel_seconds = float(np.exp(log_pred).sum())
        prepared.mappings = tuple(
            (kernel.name, self._labels[index])
            for kernel, index in zip(program.kernels, config_index)
        )
        prepared.accepted = bool(accepted.all())
        prepared.min_margin = float(margins.min())
        prepared.confidence = float(
            model.confidence(np.asarray([prepared.min_margin]))[0]
        )
        plan = analyze_transfers(program, request.hints)
        if request.batched_transfers:
            plan = plan.batched()
        h2d = [t.bytes for t in plan.transfers if t.direction.short == "H2D"]
        d2h = [t.bytes for t in plan.transfers if t.direction.short == "D2H"]
        prepared.h2d_count = len(h2d)
        prepared.h2d_bytes = sum(h2d)
        prepared.d2h_count = len(d2h)
        prepared.d2h_bytes = sum(d2h)
        return prepared

    def _matches(self, request: ProjectionRequest) -> str | None:
        """The structural-mismatch reason for ``request``, or ``None``."""
        arch = request.arch
        if arch is not None and arch is not self.exact.arch:
            cached = self._arch_ok.get(id(arch))
            if cached is None or cached[0] is not arch:
                ok = arch.fingerprint() == self.model.arch_fingerprint
                self._arch_ok[id(arch)] = (arch, ok)
                cached = (arch, ok)
            if not cached[1]:
                return "arch_mismatch"
        space = request.space
        if space is not None and space is not self.exact.space:
            cached = self._space_ok.get(id(space))
            if cached is None or cached[0] is not space:
                ok = space.fingerprint() == self.model.space_fingerprint
                self._space_ok[id(space)] = (space, ok)
                cached = (space, ok)
            if not cached[1]:
                return "space_mismatch"
        return None

    # Serving -------------------------------------------------------------
    def project(
        self, request: ProjectionRequest, mode: str | None = None
    ) -> SurrogateResponse:
        """Serve one request through the gated surrogate."""
        start = time.perf_counter()
        mode = self.mode if mode is None else mode
        if mode not in SERVING_MODES:
            raise ValueError(
                f"unknown serving mode {mode!r}: expected one of "
                f"{', '.join(SERVING_MODES)}"
            )
        with span(
            "serve", category="surrogate", request=request.request_id
        ) as handle:
            response = self._project(request, mode, start)
            handle.set(
                path=response.provenance.path,
                reason=response.provenance.reason,
            )
        return response

    def _project(
        self, request: ProjectionRequest, mode: str, start: float
    ) -> SurrogateResponse:
        if mode == "exact":
            return self._fallback(request, "requested", None, start)
        if self.exact.provenance_enabled and mode == "auto":
            return self._fallback(request, "provenance", None, start)
        reason = self._matches(request)
        if reason is not None:
            return self._fallback(request, reason, None, start)
        prepared = self._prepare(request)
        if prepared.error is not None:
            return self._fallback(request, "unservable", None, start)
        if not prepared.accepted and mode != "surrogate":
            reason = (
                "low_confidence"
                if prepared.min_margin < self.model.threshold
                else "out_of_domain"
            )
            return self._fallback(
                request, reason, prepared.confidence, start
            )
        bus = request.bus or self.exact.bus
        transfer_seconds = (
            bus.h2d.alpha * prepared.h2d_count
            + bus.h2d.beta * prepared.h2d_bytes
            + bus.d2h.alpha * prepared.d2h_count
            + bus.d2h.beta * prepared.d2h_bytes
        )
        self.metrics.incr("surrogate_hits")
        response = SurrogateResponse(
            request_id=request.request_id,
            provenance=ServingProvenance(
                path="surrogate",
                reason="accepted" if prepared.accepted else "forced",
                confidence=prepared.confidence,
                model_arch=self.model.arch_name,
            ),
            seconds=time.perf_counter() - start,
            iterations=request.iterations,
            estimate=SurrogateEstimate(
                program=request.program.name,
                kernel_seconds=prepared.kernel_seconds,
                transfer_seconds=transfer_seconds,
                mappings=prepared.mappings,
                log_band=self.model.conformal_log_band,
            ),
        )
        if self.auditor is not None:
            # Two integer ops on the non-sampled path; sampled answers
            # are re-scored exactly on the audit thread, off this one.
            self.auditor.consider(request, response)
        return response

    def project_many(
        self,
        requests: Iterable[ProjectionRequest],
        mode: str | None = None,
    ) -> list[SurrogateResponse]:
        """Serve many requests (steady-state: microseconds apiece)."""
        batch: Sequence[ProjectionRequest] = list(requests)
        return [self.project(request, mode) for request in batch]

    def _fallback(
        self,
        request: ProjectionRequest,
        reason: str,
        confidence: float | None,
        start: float,
    ) -> SurrogateResponse:
        self.metrics.incr("surrogate_fallbacks")
        response = self.exact.project(request)
        return SurrogateResponse(
            request_id=request.request_id,
            provenance=ServingProvenance(
                path="exact",
                reason=reason,
                confidence=confidence,
                model_arch=self.model.arch_name,
            ),
            seconds=time.perf_counter() - start,
            iterations=request.iterations,
            response=response,
        )

    def close(self) -> None:
        """Release the wrapped engine's worker pools."""
        self.exact.close()


class SurrogateBatchAdapter:
    """Duck-typed stand-in for the engine in the JSONL batch runner.

    :func:`repro.service.jobs.project_parsed` calls
    ``engine.project(request, workers)`` — this adapter drops the
    fan-out argument (the surrogate path has nothing to fan out) and
    serves through the gated engine, so ``python -m repro batch
    --surrogate`` writes records that carry the serving path.
    """

    def __init__(
        self, engine: SurrogateEngine, mode: str | None = None
    ) -> None:
        self.engine = engine
        self.mode = mode
        self.metrics = engine.metrics

    def project(
        self, request: ProjectionRequest, workers: int | None = None
    ) -> SurrogateResponse:
        return self.engine.project(request, self.mode)
