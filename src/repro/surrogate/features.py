"""Static features for the surrogate: one analysis walk, one vector.

Every feature is derivable from a :class:`~repro.transform.analysis.
KernelAnalysis` (config-independent, one skeleton walk per kernel), the
kernel's exposed parallelism, and the target
:class:`~repro.gpu.architecture <repro.gpu.arch.GPUArchitecture>`
descriptor — nothing requires scoring a single candidate mapping.  That
is the point: extraction costs microseconds, so the surrogate's serving
path never touches the transformation space.

The schema is ordered and versioned.  :data:`FEATURE_NAMES` is the
contract between training and serving — a persisted model records
:data:`FEATURE_SCHEMA_VERSION`, and the store refuses to load a model
trained against a different schema (see
:class:`~repro.surrogate.store.StaleModelError`).

Feature groups:

- **kernel statics** — instruction-stream tallies, staging/reuse counts,
  and the coalesced fractions of both memory shapes (global vs
  shared-memory staged), straight off the analysis;
- **size** — the log work-item count and its square (the best mapping
  shifts at a handful of size breakpoints; the quadratic term lets a
  linear classifier bend there), plus SM occupancy pressure;
- **architecture** — the numeric fields of the arch descriptor, logged
  where they span decades;
- **rooflines** — log-scale memory-bound and compute-bound time
  estimates and their balance.  These are the physically informed
  features that make a *ridge* model accurate in log-time space: the
  true projected time is close to a maximum of the two, and the
  regression only has to learn the blend.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.arch import GPUArchitecture
from repro.transform.analysis import KernelAnalysis

#: Bump when FEATURE_NAMES (order, meaning, or count) changes; persisted
#: models record it and refuse to serve a different schema.
FEATURE_SCHEMA_VERSION = 1

FEATURE_NAMES: tuple[str, ...] = (
    # Kernel statics -----------------------------------------------------
    "log_flops",
    "log_loads_per_iter",
    "log_stores_per_iter",
    "log_serial",
    "bytes_per_access",
    "distinct_arrays",
    "staged_arrays",
    "reuse_arrays",
    "coalesced_fraction_global",
    "coalesced_fraction_smem",
    "smem_load_gain",
    "log_comp_mem_ratio",
    "smem_sync_pressure",
    # Size ---------------------------------------------------------------
    "log_parallel_iters",
    "log_parallel_iters_sq",
    "log_sm_occupancy_pressure",
    # Architecture -------------------------------------------------------
    "log_mem_bandwidth",
    "log_mem_latency_cycles",
    "log_num_sms",
    "log_clock_ghz",
    "departure_del_coal",
    "departure_del_uncoal",
    "issue_cycles",
    "log_registers_per_sm",
    "log_shared_mem_per_sm",
    "coalesced_bytes_per_warp",
    "uncoal_transactions_per_warp",
    "sync_cycles",
    "strict_coalescing",
    # Rooflines ----------------------------------------------------------
    "log_mem_time_scale",
    "log_comp_time_scale",
    "roofline_balance",
)

#: Number of features per row (the model's input width).
FEATURE_COUNT = len(FEATURE_NAMES)

#: Positions of the size-dependent features; everything else is constant
#: per (kernel, arch), which is what lets the extractor synthesize a
#: whole size grid from one static template row.
_SIZE_DEPENDENT = tuple(
    FEATURE_NAMES.index(name)
    for name in (
        "log_parallel_iters",
        "log_parallel_iters_sq",
        "log_sm_occupancy_pressure",
        "log_mem_time_scale",
        "log_comp_time_scale",
        "roofline_balance",
    )
)


def _log(value: float) -> float:
    """``log1p`` guarded to the non-negative domain."""
    return math.log1p(max(float(value), 0.0))


def kernel_static_template(
    analysis: KernelAnalysis, arch: GPUArchitecture
) -> np.ndarray:
    """The size-independent feature row for one (kernel, arch) pair.

    The size-dependent slots hold zeros; :func:`fill_size_features`
    completes a copy for a concrete work-item count.  Computing the
    template is the expensive half (two cached memory profiles, a score
    of scalar logs); callers that sweep sizes pay it once.
    """
    global_profile = analysis.memory_profile(False)
    smem_profile = analysis.memory_profile(True)
    base_loads = max(analysis.base_loads_per_iter, 0.0)
    smem_gain = (
        (base_loads - smem_profile.loads_per_iter) / base_loads
        if base_loads
        else 0.0
    )
    mem_base = max(global_profile.mem_insts_base, 1e-9)
    comp_base = max(global_profile.comp_base * analysis.serial, 1e-9)
    row = np.zeros(FEATURE_COUNT, dtype=np.float64)
    values = {
        "log_flops": _log(analysis.flops),
        "log_loads_per_iter": _log(analysis.base_loads_per_iter),
        "log_stores_per_iter": _log(analysis.stores_per_iter),
        "log_serial": _log(analysis.serial),
        "bytes_per_access": float(analysis.bytes_per_access),
        "distinct_arrays": float(analysis.distinct_arrays),
        "staged_arrays": float(len(analysis.smem_staged)),
        "reuse_arrays": float(len(analysis.reuse_arrays)),
        "coalesced_fraction_global": global_profile.coalesced_fraction,
        "coalesced_fraction_smem": smem_profile.coalesced_fraction,
        "smem_load_gain": smem_gain,
        "log_comp_mem_ratio": math.log(comp_base / mem_base),
        "smem_sync_pressure": _log(smem_profile.syncs),
        "log_mem_bandwidth": math.log(arch.mem_bandwidth),
        "log_mem_latency_cycles": math.log(arch.mem_latency_cycles),
        "log_num_sms": math.log(arch.num_sms),
        "log_clock_ghz": math.log(arch.clock_ghz),
        "departure_del_coal": float(arch.departure_del_coal),
        "departure_del_uncoal": float(arch.departure_del_uncoal),
        "issue_cycles": float(arch.issue_cycles),
        "log_registers_per_sm": math.log(arch.registers_per_sm),
        "log_shared_mem_per_sm": math.log(arch.shared_mem_per_sm),
        "coalesced_bytes_per_warp": float(arch.coalesced_bytes_per_warp),
        "uncoal_transactions_per_warp": float(
            arch.uncoal_transactions_per_warp
        ),
        "sync_cycles": float(arch.sync_cycles),
        "strict_coalescing": 1.0 if arch.strict_coalescing else 0.0,
    }
    for name, value in values.items():
        row[FEATURE_NAMES.index(name)] = value
    # Stash the roofline inputs on the template's tail computation via
    # closure-free scalars: they ride in the returned pair instead.
    return row


def _roofline_scales(
    analysis: KernelAnalysis, arch: GPUArchitecture
) -> tuple[float, float]:
    """(memory, compute) per-work-item time scales, in log-able units.

    Memory: instruction-stream bytes over sustained bandwidth.  Compute:
    instruction count over aggregate issue rate.  Both are per work-item
    so the size term factors out as ``+ log n`` — the regression sees
    the rooflines shift linearly with the size features.
    """
    profile = analysis.memory_profile(False)
    mem = (
        max(profile.mem_insts_base, 1e-9)
        * max(analysis.bytes_per_access, 1)
        / arch.mem_bandwidth
    )
    comp = (
        max(profile.comp_base * analysis.serial, 1e-9)
        / (arch.clock_ghz * 1e9 * arch.num_sms)
    )
    return mem, comp


def fill_size_features(
    row: np.ndarray,
    analysis: KernelAnalysis,
    arch: GPUArchitecture,
    parallel_iterations: int,
) -> np.ndarray:
    """Complete a template copy for one work-item count (in place)."""
    n = max(int(parallel_iterations), 1)
    log_n = math.log(n)
    mem_scale, comp_scale = _roofline_scales(analysis, arch)
    occupancy = n / (arch.num_sms * arch.max_threads_per_sm)
    log_mem = math.log(mem_scale) + log_n
    log_comp = math.log(comp_scale) + log_n
    (
        i_log_n,
        i_log_n_sq,
        i_occ,
        i_mem,
        i_comp,
        i_balance,
    ) = _SIZE_DEPENDENT
    row[i_log_n] = log_n
    row[i_log_n_sq] = log_n * log_n
    row[i_occ] = _log(occupancy)
    row[i_mem] = log_mem
    row[i_comp] = log_comp
    row[i_balance] = log_mem - log_comp
    return row


def kernel_feature_row(
    analysis: KernelAnalysis,
    arch: GPUArchitecture,
    parallel_iterations: int | None = None,
) -> np.ndarray:
    """The full feature vector for one kernel at one size.

    ``parallel_iterations=None`` uses the kernel's own exposed
    parallelism (the serving case: the skeleton already encodes the
    dataset).
    """
    n = (
        analysis.parallel_iterations
        if parallel_iterations is None
        else parallel_iterations
    )
    row = kernel_static_template(analysis, arch)
    return fill_size_features(row, analysis, arch, n)


def feature_rows_for_sizes(
    analysis: KernelAnalysis,
    arch: GPUArchitecture,
    sizes: np.ndarray | list[int],
) -> np.ndarray:
    """Feature matrix ``(len(sizes), FEATURE_COUNT)`` for one kernel.

    One template computation, one cheap fill per size — the training
    generator's inner loop.
    """
    template = kernel_static_template(analysis, arch)
    rows = np.empty((len(sizes), FEATURE_COUNT), dtype=np.float64)
    for position, size in enumerate(sizes):
        rows[position] = template
        fill_size_features(rows[position], analysis, arch, int(size))
    return rows
