"""Versioned ``.npz`` persistence for surrogate models.

A model artifact is a single NumPy archive: the serving arrays plus one
JSON metadata blob.  Loading is guarded three ways — artifact format,
feature schema, and the content fingerprints of the architecture table
and transformation space the model was trained against.  A stale model
(recalibrated arch, different candidate grid, changed feature schema)
raises :class:`StaleModelError` instead of silently serving wrong
answers; retrain and re-save.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.gpu.arch import GPUArchitecture
from repro.surrogate.features import FEATURE_SCHEMA_VERSION
from repro.surrogate.model import SurrogateModel
from repro.transform.space import TransformationSpace

#: Artifact layout version; bump when the array set or meta keys change.
MODEL_FORMAT = 1

_ARRAY_KEYS = (
    "matrix",
    "bias",
    "class_indices",
    "exemplars",
    "exemplar_labels",
    "scale",
    "shift",
    "margin_grid",
    "accuracy_at",
    "domain_lo",
    "domain_hi",
)


class StaleModelError(ValueError):
    """The artifact no longer matches the serving configuration."""


def save_model(model: SurrogateModel, path: str | Path) -> Path:
    """Write ``model`` as a versioned ``.npz`` artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "model_format": MODEL_FORMAT,
        "feature_schema": model.feature_schema,
        "arch_fingerprint": model.arch_fingerprint,
        "space_fingerprint": model.space_fingerprint,
        "arch_name": model.arch_name,
        "threshold": model.threshold,
        "disagreement_accuracy": model.disagreement_accuracy,
        "target_accuracy": model.target_accuracy,
        "conformal_log_band": model.conformal_log_band,
        "stats": model.stats,
    }
    arrays = {key: getattr(model, key) for key in _ARRAY_KEYS}
    with path.open("wb") as handle:
        np.savez(
            handle,
            meta=np.frombuffer(
                json.dumps(meta, sort_keys=True).encode("utf-8"),
                dtype=np.uint8,
            ),
            **arrays,
        )
    return path


def _read_meta(archive: Any, path: Path) -> dict[str, Any]:
    try:
        raw = bytes(archive["meta"].tobytes())
        return json.loads(raw.decode("utf-8"))
    except (KeyError, ValueError) as exc:
        raise StaleModelError(
            f"{path}: not a surrogate model artifact (no readable meta)"
        ) from exc


def load_model(
    path: str | Path,
    arch: GPUArchitecture | None = None,
    space: TransformationSpace | None = None,
) -> SurrogateModel:
    """Load an artifact, guarding format, schema, and fingerprints.

    ``arch``/``space`` are the serving configuration; passing them turns
    on the fingerprint guard (the usual case).  ``None`` skips that
    check — only for introspection tools that merely describe a model.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no surrogate model at {path}")
    with np.load(path) as archive:
        meta = _read_meta(archive, path)
        arrays = {}
        for key in _ARRAY_KEYS:
            if key not in archive:
                raise StaleModelError(
                    f"{path}: artifact is missing array {key!r}"
                )
            arrays[key] = np.ascontiguousarray(archive[key])
    if meta.get("model_format") != MODEL_FORMAT:
        raise StaleModelError(
            f"{path}: artifact format {meta.get('model_format')!r} != "
            f"supported {MODEL_FORMAT} — retrain with this version"
        )
    if meta.get("feature_schema") != FEATURE_SCHEMA_VERSION:
        raise StaleModelError(
            f"{path}: feature schema {meta.get('feature_schema')!r} != "
            f"current {FEATURE_SCHEMA_VERSION} — retrain with this version"
        )
    if arch is not None and meta.get("arch_fingerprint") != arch.fingerprint():
        raise StaleModelError(
            f"{path}: model was trained against arch "
            f"{meta.get('arch_name')!r} "
            f"({str(meta.get('arch_fingerprint'))[:12]}...), which does "
            f"not match the serving arch {arch.name!r} — retrain"
        )
    if (
        space is not None
        and meta.get("space_fingerprint") != space.fingerprint()
    ):
        raise StaleModelError(
            f"{path}: model's transformation space does not match the "
            f"serving space — retrain"
        )
    return SurrogateModel(
        feature_schema=int(meta["feature_schema"]),
        arch_fingerprint=str(meta["arch_fingerprint"]),
        space_fingerprint=str(meta["space_fingerprint"]),
        arch_name=str(meta["arch_name"]),
        matrix=arrays["matrix"],
        bias=arrays["bias"],
        class_indices=arrays["class_indices"],
        exemplars=arrays["exemplars"],
        exemplar_labels=arrays["exemplar_labels"],
        scale=arrays["scale"],
        shift=arrays["shift"],
        margin_grid=arrays["margin_grid"],
        accuracy_at=arrays["accuracy_at"],
        threshold=float(meta["threshold"]),
        disagreement_accuracy=float(meta["disagreement_accuracy"]),
        target_accuracy=float(meta["target_accuracy"]),
        conformal_log_band=float(meta["conformal_log_band"]),
        domain_lo=arrays["domain_lo"],
        domain_hi=arrays["domain_hi"],
        stats=dict(meta.get("stats") or {}),
    )


def describe_model(path: str | Path) -> dict[str, Any]:
    """The artifact's metadata without the fingerprint guard."""
    model = load_model(path)
    return {
        "arch": model.arch_name,
        "arch_fingerprint": model.arch_fingerprint,
        "space_fingerprint": model.space_fingerprint,
        "feature_schema": model.feature_schema,
        "classes": model.class_count,
        "threshold": model.threshold,
        "target_accuracy": model.target_accuracy,
        "conformal_log_band": model.conformal_log_band,
        "stats": model.stats,
    }
