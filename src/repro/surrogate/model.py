"""The surrogate model: ridge regression + mapping classification.

Everything is linear algebra over the feature matrix, solved in closed
form — no iterative optimizer, no external ML dependency:

- **time regression**: ridge on ``log(best seconds)``.  The roofline
  features (see :mod:`~repro.surrogate.features`) already put the
  answer within a multiplicative band; the regression learns the blend.
- **mapping classification**: an ensemble of two members that fail in
  different ways.  A one-vs-rest ridge on ±1 indicators supplies smooth
  per-class scores and a top-1-vs-top-2 margin; an exemplar memory
  (nearest standardized training row) supplies the label itself.  The
  best mapping is piecewise-constant in the dataset size with sharp
  breakpoints — the linear member smooths those over, the exemplar
  member nails them, and their *disagreement* is exactly where either
  one is unreliable.  Both problems share one design matrix, so a
  single ``solve`` with stacked right-hand sides fits regressor and
  linear classifier together.
- **confidence**: conformal-style margin calibration over consensus
  rows.  A query's effective margin is the ridge margin when the two
  classifier members agree and ``-inf`` when they don't; on a held-out
  calibration split the effective margin is recorded with whether the
  served (exemplar) label was correct, and serving maps a query's
  margin to the empirical accuracy of calibration queries at or above
  it.  The accept threshold is the smallest margin whose suffix
  accuracy reaches the target — if no margin qualifies, the threshold
  is ``+inf`` and every query falls back to the exact path (safe by
  construction).

Serving is two matmuls: standardization is folded into the ridge
weights at train time (``x@W' + b'`` with ``W' = W/σ``, ``b' = b −
μ·W/σ``), and the exemplar lookup is one distance matrix against a
few-hundred-row memory — :meth:`SurrogateModel.predict_rows` touches
each query exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.gpu.arch import GPUArchitecture
from repro.surrogate.dataset import TrainingSet, split_rows
from repro.surrogate.features import FEATURE_COUNT, FEATURE_SCHEMA_VERSION
from repro.transform.space import TransformationSpace

#: Ridge strength on standardized features (intercept unregularized).
DEFAULT_RIDGE_LAMBDA = 1e-3

#: Conformal quantile for the regression's uncertainty band.
CONFORMAL_QUANTILE = 0.9

#: Domain guard: the trained feature box is widened by this margin (in
#: feature units of its span) before a query counts as out-of-domain.
DOMAIN_SLACK = 0.25


def _solve_ridge(
    features: np.ndarray, targets: np.ndarray, lam: float
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form ridge with an unregularized intercept.

    Returns ``(weights (F, T), bias (T,))`` for standardized inputs.
    """
    rows, width = features.shape
    design = np.hstack([features, np.ones((rows, 1))])
    gram = design.T @ design
    penalty = np.eye(width + 1) * lam * rows
    penalty[-1, -1] = 0.0
    solution = np.linalg.solve(gram + penalty, design.T @ targets)
    return solution[:-1], solution[-1]


@dataclass(frozen=True)
class RidgeRegressor:
    """Standalone ridge regressor (fit/predict on raw features)."""

    weights: np.ndarray
    bias: float
    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(
        features: np.ndarray,
        targets: np.ndarray,
        lam: float = DEFAULT_RIDGE_LAMBDA,
    ) -> "RidgeRegressor":
        mean = features.mean(axis=0)
        std = np.maximum(features.std(axis=0), 1e-9)
        weights, bias = _solve_ridge(
            (features - mean) / std, targets[:, None], lam
        )
        return RidgeRegressor(
            weights=weights[:, 0], bias=float(bias[0]), mean=mean, std=std
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        return ((features - self.mean) / self.std) @ self.weights + self.bias


@dataclass(frozen=True)
class MappingClassifier:
    """One-vs-rest ridge classifier over winning-config classes."""

    weights: np.ndarray  # (F, C)
    bias: np.ndarray  # (C,)
    mean: np.ndarray
    std: np.ndarray
    classes: np.ndarray  # (C,) config indices, sorted

    @staticmethod
    def fit(
        features: np.ndarray,
        best_index: np.ndarray,
        lam: float = DEFAULT_RIDGE_LAMBDA,
    ) -> "MappingClassifier":
        classes = np.unique(best_index)
        indicators = np.where(
            best_index[:, None] == classes[None, :], 1.0, -1.0
        )
        mean = features.mean(axis=0)
        std = np.maximum(features.std(axis=0), 1e-9)
        weights, bias = _solve_ridge(
            (features - mean) / std, indicators, lam
        )
        return MappingClassifier(
            weights=weights, bias=bias, mean=mean, std=std, classes=classes
        )

    def scores(self, features: np.ndarray) -> np.ndarray:
        return ((features - self.mean) / self.std) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted config indices (mapped through ``classes``)."""
        return self.classes[np.argmax(self.scores(features), axis=1)]


def _margins(scores: np.ndarray) -> np.ndarray:
    """Top-1 minus top-2 score per row (``inf`` with a single class)."""
    if scores.shape[1] < 2:
        return np.full(scores.shape[0], np.inf)
    top2 = np.partition(scores, -2, axis=1)
    return top2[:, -1] - top2[:, -2]


def _nearest_labels(
    standardized: np.ndarray,
    exemplars: np.ndarray,
    exemplar_labels: np.ndarray,
) -> np.ndarray:
    """Label of each row's nearest exemplar (squared euclidean)."""
    cross = standardized @ exemplars.T
    d2 = (
        (standardized * standardized).sum(axis=1)[:, None]
        - 2.0 * cross
        + (exemplars * exemplars).sum(axis=1)[None, :]
    )
    return exemplar_labels[np.argmin(d2, axis=1)]


@dataclass(frozen=True)
class ExemplarClassifier:
    """Nearest-exemplar classifier over standardized training rows."""

    exemplars: np.ndarray  # (M, F) standardized
    labels: np.ndarray  # (M,) config indices
    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(
        features: np.ndarray, best_index: np.ndarray
    ) -> "ExemplarClassifier":
        mean = features.mean(axis=0)
        std = np.maximum(features.std(axis=0), 1e-9)
        return ExemplarClassifier(
            exemplars=(features - mean) / std,
            labels=np.asarray(best_index),
            mean=mean,
            std=std,
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        return _nearest_labels(
            (features - self.mean) / self.std, self.exemplars, self.labels
        )


@dataclass(frozen=True)
class SurrogateModel:
    """The packaged serving model: weights, exemplars, calibration.

    Column 0 of ``matrix``/``bias`` is the log-seconds regression; the
    remaining columns are the per-class ridge scores.  Standardization
    is folded in, so the ridge half of serving is ``raw_features @
    matrix + bias``; the exemplar half standardizes with
    ``scale``/``shift`` (``z = x·scale + shift``) and takes the nearest
    memory row's label.
    """

    feature_schema: int
    arch_fingerprint: str
    space_fingerprint: str
    arch_name: str
    matrix: np.ndarray  # (FEATURE_COUNT, 1 + C), C-contiguous
    bias: np.ndarray  # (1 + C,)
    class_indices: np.ndarray  # (C,) winning-config indices in the space
    exemplars: np.ndarray  # (M, FEATURE_COUNT) standardized memory
    exemplar_labels: np.ndarray  # (M,) config indices
    scale: np.ndarray  # (FEATURE_COUNT,) 1/σ of the fit split
    shift: np.ndarray  # (FEATURE_COUNT,) -μ/σ of the fit split
    margin_grid: np.ndarray  # (G,) ascending consensus margins
    accuracy_at: np.ndarray  # (G,) suffix accuracy at each margin
    threshold: float  # accept when effective margin >= threshold
    #: Accuracy of the served label when the members *disagree* — the
    #: confidence reported for ``-inf`` effective margins.
    disagreement_accuracy: float
    target_accuracy: float
    conformal_log_band: float  # CONFORMAL_QUANTILE of |log residual|
    domain_lo: np.ndarray  # (FEATURE_COUNT,)
    domain_hi: np.ndarray  # (FEATURE_COUNT,)
    stats: dict[str, Any]

    @property
    def class_count(self) -> int:
        return int(self.class_indices.shape[0])

    # Serving ------------------------------------------------------------
    def predict_rows(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(log_seconds, config_index, margin)`` per row.

        ``config_index`` is the exemplar member's label (the accurate
        one).  ``margin`` is the *effective* margin: the ridge member's
        top-1-vs-top-2 margin when both members agree on the label, and
        ``-inf`` when they disagree — so thresholding the margin
        implements the consensus gate for free.
        """
        scores = features @ self.matrix + self.bias
        class_scores = scores[:, 1:]
        ridge_labels = self.class_indices[np.argmax(class_scores, axis=1)]
        nearest = _nearest_labels(
            features * self.scale + self.shift,
            self.exemplars,
            self.exemplar_labels,
        )
        margins = np.where(
            nearest == ridge_labels, _margins(class_scores), -np.inf
        )
        return scores[:, 0], nearest, margins

    def confidence(self, margins: np.ndarray) -> np.ndarray:
        """Calibrated accuracy estimate for each margin.

        A query's confidence is the empirical top-1 accuracy of
        calibration queries whose margin was at or above its own
        (clamped to the grid's ends).
        """
        margins = np.asarray(margins, dtype=np.float64)
        if self.margin_grid.shape[0] == 0:
            return np.zeros_like(margins)
        index = np.searchsorted(self.margin_grid, margins, side="left")
        index = np.minimum(index, self.margin_grid.shape[0] - 1)
        return np.where(
            np.isneginf(margins),
            self.disagreement_accuracy,
            self.accuracy_at[index],
        )

    def in_domain(self, features: np.ndarray) -> np.ndarray:
        """Row-wise: every feature inside the (widened) trained box."""
        above = features >= self.domain_lo
        below = features <= self.domain_hi
        return np.all(above & below, axis=1)

    def accepts(
        self, features: np.ndarray, margins: np.ndarray
    ) -> np.ndarray:
        """Row-wise accept verdicts: in-domain and above threshold."""
        return self.in_domain(features) & (margins >= self.threshold)

    def with_threshold(self, threshold: float) -> "SurrogateModel":
        """A copy with a different accept threshold (testing/tuning)."""
        return replace(self, threshold=float(threshold))


def train_surrogate(
    training: TrainingSet,
    arch: GPUArchitecture,
    space: TransformationSpace,
    target_accuracy: float = 0.93,
    lam: float = DEFAULT_RIDGE_LAMBDA,
    calibration_fraction: float = 0.25,
    seed: int = 0,
) -> SurrogateModel:
    """Fit, calibrate, and package a surrogate from labeled rows.

    The calibration split never touches the fit; its effective margins
    (ridge margin under member consensus, ``-inf`` otherwise) and the
    correctness of the served exemplar label produce both the
    confidence table and the accept threshold (smallest margin whose
    suffix accuracy reaches ``target_accuracy``).
    """
    if not (0 < target_accuracy <= 1):
        raise ValueError(
            f"target_accuracy must be in (0, 1], got {target_accuracy}"
        )
    cal_idx, fit_idx = split_rows(
        training.rows, (calibration_fraction,), seed=seed
    )
    fit = training.subset(fit_idx)
    cal = training.subset(cal_idx)

    mean = fit.features.mean(axis=0)
    std = np.maximum(fit.features.std(axis=0), 1e-9)
    standardized = (fit.features - mean) / std
    classes = np.unique(fit.best_index)
    indicators = np.where(
        fit.best_index[:, None] == classes[None, :], 1.0, -1.0
    )
    targets = np.hstack([fit.log_seconds[:, None], indicators])
    weights, bias = _solve_ridge(standardized, targets, lam)

    # Fold standardization into the serving weights.
    folded = np.ascontiguousarray(weights / std[:, None])
    folded_bias = bias - mean @ folded
    scale = 1.0 / std
    shift = -mean / std

    # Calibrate on the untouched split.
    cal_scores = cal.features @ folded + folded_bias
    class_scores = cal_scores[:, 1:]
    ridge_labels = classes[np.argmax(class_scores, axis=1)]
    nearest = _nearest_labels(
        cal.features * scale + shift, standardized, fit.best_index
    )
    consensus = nearest == ridge_labels
    margins = np.where(consensus, _margins(class_scores), -np.inf)
    correct = (nearest == cal.best_index).astype(np.float64)
    # The grid covers consensus rows only: a -inf effective margin can
    # never clear a finite threshold, so those rows carry no signal.
    finite = np.isfinite(margins) & consensus
    order = np.argsort(margins[finite], kind="stable")
    margin_grid = margins[finite][order]
    # Suffix mean: accuracy among calibration rows with margin >= grid[i].
    suffix = np.cumsum(correct[finite][order][::-1])[::-1]
    counts = np.arange(margin_grid.shape[0], 0, -1, dtype=np.float64)
    accuracy_at = (
        suffix / counts if margin_grid.size else np.zeros(0)
    )

    qualifying = np.nonzero(accuracy_at >= target_accuracy)[0]
    threshold = (
        float(margin_grid[qualifying[0]])
        if qualifying.shape[0]
        else float("inf")
    )
    disagreement_accuracy = (
        float(correct[~consensus].mean()) if np.any(~consensus) else 0.0
    )

    residuals = np.abs(
        (cal.features @ folded[:, 0] + folded_bias[0]) - cal.log_seconds
    )
    conformal_band = float(np.quantile(residuals, CONFORMAL_QUANTILE))

    span = training.features.max(axis=0) - training.features.min(axis=0)
    slack = DOMAIN_SLACK * np.maximum(span, 1e-9)
    acceptance = float(np.mean(margins >= threshold)) if margins.size else 0.0
    accepted_accuracy = (
        float(correct[margins >= threshold].mean())
        if np.any(margins >= threshold)
        else None
    )
    stats = {
        "rows": training.rows,
        "fit_rows": int(fit_idx.shape[0]),
        "calibration_rows": int(cal_idx.shape[0]),
        "classes": int(classes.shape[0]),
        "kernels": len(training.kernel_names),
        "calibration_log_mae": float(np.mean(residuals)),
        "calibration_top1": float(correct.mean()),
        "calibration_consensus": float(consensus.mean()),
        "calibration_accepted_top1": accepted_accuracy,
        "calibration_acceptance": acceptance,
        "ridge_lambda": lam,
        "seed": seed,
    }
    return SurrogateModel(
        feature_schema=FEATURE_SCHEMA_VERSION,
        arch_fingerprint=arch.fingerprint(),
        space_fingerprint=space.fingerprint(),
        arch_name=arch.name,
        matrix=folded,
        bias=folded_bias,
        class_indices=classes,
        exemplars=np.ascontiguousarray(standardized),
        exemplar_labels=np.ascontiguousarray(fit.best_index),
        scale=scale,
        shift=shift,
        margin_grid=margin_grid,
        accuracy_at=accuracy_at,
        threshold=threshold,
        disagreement_accuracy=disagreement_accuracy,
        target_accuracy=target_accuracy,
        conformal_log_band=conformal_band,
        domain_lo=training.features.min(axis=0) - slack,
        domain_hi=training.features.max(axis=0) + slack,
        stats=stats,
    )


def evaluate_model(
    model: SurrogateModel, holdout: TrainingSet
) -> dict[str, Any]:
    """Held-out metrics: agreement overall and among accepted queries."""
    if holdout.features.shape[1] != FEATURE_COUNT:
        raise ValueError("holdout feature width mismatch")
    log_pred, config_index, margins = model.predict_rows(holdout.features)
    accepted = model.accepts(holdout.features, margins)
    agree = config_index == holdout.best_index
    residual = np.abs(log_pred - holdout.log_seconds)
    report: dict[str, Any] = {
        "rows": holdout.rows,
        "top1_agreement": float(agree.mean()),
        "log_mae": float(residual.mean()),
        "acceptance_rate": float(accepted.mean()),
        "accepted_rows": int(accepted.sum()),
        "accepted_top1_agreement": (
            float(agree[accepted].mean()) if accepted.any() else None
        ),
        "accepted_log_mae": (
            float(residual[accepted].mean()) if accepted.any() else None
        ),
        "threshold": model.threshold,
        "conformal_log_band": model.conformal_log_band,
    }
    return report
