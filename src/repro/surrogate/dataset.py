"""Bulk training data: label feature rows at streaming-scorer speed.

The generator walks every registered workload, builds one
:class:`~repro.transform.analysis.KernelAnalysis` per kernel (largest
dataset as the anchor), and sweeps a geometric size grid around each
kernel's native parallelism.  Each (kernel, size) cell is labeled by the
same fused argmin pass the streaming explorer runs —
:meth:`~repro.transform.analysis.KernelAnalysis.config_columns` at the
injected size, one :func:`~repro.gpu.vectorized.fused_argmin` over a
reused :class:`~repro.gpu.vectorized.ScoreArena` — so labels are
bitwise-identical to what the exact explorer would report at that size,
and a full training set (thousands of grids) costs seconds.

Rows where no legal mapping exists are dropped (the exact path raises
there; the surrogate never needs to answer them from the model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.gpu.arch import GPUArchitecture
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import ScoreArena, fused_argmin
from repro.surrogate.features import (
    FEATURE_COUNT,
    fill_size_features,
    kernel_static_template,
)
from repro.transform.analysis import analyze_kernel
from repro.transform.space import TransformationSpace
from repro.workloads.base import Workload
from repro.workloads.registry import all_workloads


@dataclass(frozen=True)
class TrainingSet:
    """Labeled rows: features, log-time targets, winning config indices.

    ``groups`` tags every row with its source kernel (an index into
    ``kernel_names``), so splits can be stratified and evaluation can
    report per-kernel agreement.  ``sizes`` keeps the raw work-item
    count per row for domain diagnostics.
    """

    features: np.ndarray  # (rows, FEATURE_COUNT) float64
    log_seconds: np.ndarray  # (rows,) float64 — log best-mapping seconds
    best_index: np.ndarray  # (rows,) int64 — winner's index in the space
    groups: np.ndarray  # (rows,) int64 — kernel id per row
    sizes: np.ndarray  # (rows,) int64 — parallel iterations per row
    kernel_names: tuple[str, ...]

    def __post_init__(self) -> None:
        rows = self.features.shape[0]
        for name in ("log_seconds", "best_index", "groups", "sizes"):
            if getattr(self, name).shape[0] != rows:
                raise ValueError(
                    f"{name} has {getattr(self, name).shape[0]} rows, "
                    f"features has {rows}"
                )
        if self.features.shape[1] != FEATURE_COUNT:
            raise ValueError(
                f"features must have {FEATURE_COUNT} columns, got "
                f"{self.features.shape[1]}"
            )

    @property
    def rows(self) -> int:
        return int(self.features.shape[0])

    def subset(self, indices: np.ndarray) -> "TrainingSet":
        return TrainingSet(
            features=self.features[indices],
            log_seconds=self.log_seconds[indices],
            best_index=self.best_index[indices],
            groups=self.groups[indices],
            sizes=self.sizes[indices],
            kernel_names=self.kernel_names,
        )


def size_grid(
    native: int, sizes_per_kernel: int, span: tuple[float, float]
) -> np.ndarray:
    """A geometric size grid around one kernel's native parallelism.

    Deduplicated and floored at 1; small kernels therefore contribute
    fewer distinct rows than ``sizes_per_kernel``, which is accounting,
    not error.
    """
    lo, hi = span
    if not (0 < lo <= hi):
        raise ValueError(f"invalid size span {span!r}")
    factors = np.geomspace(lo, hi, sizes_per_kernel)
    sizes = np.unique(
        np.maximum(1, np.rint(native * factors).astype(np.int64))
    )
    return sizes


def generate_training_set(
    arch: GPUArchitecture,
    space: TransformationSpace | None = None,
    workloads: Iterable[Workload] | None = None,
    sizes_per_kernel: int = 24,
    size_span: tuple[float, float] = (0.125, 64.0),
    max_kernels_per_workload: int | None = None,
) -> TrainingSet:
    """Generate labeled rows for every kernel of every workload.

    ``max_kernels_per_workload`` caps repetitive programs (PathFinder
    declares 64 near-identical stages); ``None`` takes everything.
    Deterministic: same inputs, same rows in the same order.
    """
    space = space or TransformationSpace.default()
    configs = space.configs()
    model = GpuPerformanceModel(arch)
    arena = ScoreArena()
    chosen = tuple(workloads) if workloads is not None else all_workloads()

    feature_blocks: list[np.ndarray] = []
    log_seconds: list[float] = []
    best_index: list[int] = []
    groups: list[int] = []
    sizes_out: list[int] = []
    kernel_names: list[str] = []

    for workload in chosen:
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        kernels = program.kernels
        if max_kernels_per_workload is not None:
            kernels = kernels[:max_kernels_per_workload]
        for kernel in kernels:
            try:
                analysis = analyze_kernel(
                    kernel, program.array_map, arch.strict_coalescing
                )
            except ValueError:
                continue  # no parallel loop to map; the exact path
                # rejects these kernels too
            kernel_id = len(kernel_names)
            kernel_names.append(f"{workload.name}/{kernel.name}")
            template = kernel_static_template(analysis, arch)
            sizes = size_grid(
                analysis.parallel_iterations, sizes_per_kernel, size_span
            )
            for size in sizes:
                columns, index_map, _errors = analysis.config_columns(
                    configs, int(size)
                )
                if index_map.shape[0] == 0:
                    continue
                row_index, seconds, legal = fused_argmin(
                    model, columns, arena
                )
                if row_index < 0 or legal == 0:
                    continue
                row = template.copy()
                fill_size_features(row, analysis, arch, int(size))
                feature_blocks.append(row)
                log_seconds.append(float(np.log(seconds)))
                best_index.append(int(index_map[row_index]))
                groups.append(kernel_id)
                sizes_out.append(int(size))

    if not feature_blocks:
        raise ValueError("training-set generation produced no rows")
    return TrainingSet(
        features=np.vstack(feature_blocks),
        log_seconds=np.asarray(log_seconds, dtype=np.float64),
        best_index=np.asarray(best_index, dtype=np.int64),
        groups=np.asarray(groups, dtype=np.int64),
        sizes=np.asarray(sizes_out, dtype=np.int64),
        kernel_names=tuple(kernel_names),
    )


def split_rows(
    rows: int, fractions: Sequence[float], seed: int = 0
) -> tuple[np.ndarray, ...]:
    """Deterministic shuffled split of ``rows`` into len(fractions)+1 parts.

    ``fractions`` are the leading parts' shares; the remainder forms the
    final part.  Every part is non-empty when ``rows`` allows it.
    """
    if rows < 1:
        raise ValueError(f"rows must be >= 1, got {rows}")
    total = sum(fractions)
    if not (0 < total < 1):
        raise ValueError(
            f"fractions must sum into (0, 1), got {fractions!r}"
        )
    order = np.random.default_rng(seed).permutation(rows)
    parts: list[np.ndarray] = []
    start = 0
    for fraction in fractions:
        stop = start + max(1, int(round(rows * fraction)))
        stop = min(stop, rows - 1)
        parts.append(order[start:stop])
        start = stop
    parts.append(order[start:])
    return tuple(parts)
