"""repro.surrogate: microsecond projections with an exact fallback.

The exact pipeline answers "projected time + best mapping" by searching
a transformation space — streamed, that costs hundreds of microseconds
per program.  This package learns that answer: a pure-NumPy ridge
regressor predicts the winning mapping's time and a two-member ensemble
(one-vs-rest ridge + nearest-exemplar memory) predicts *which* mapping
wins, both from static skeleton features (one
:class:`~repro.transform.analysis.KernelAnalysis` walk) plus
architecture descriptors.  A conformal-style calibration over member-
consensus rows turns the ridge margin into a per-query confidence;
queries where the members disagree, below the confidence threshold, or
outside the trained feature domain fall back to the exact streaming
explorer, so a surrogate answer is fast and a low-confidence answer is
never silently wrong.

Layout:

- :mod:`~repro.surrogate.features` — the feature schema and extractor;
- :mod:`~repro.surrogate.dataset` — bulk labeling through the fused
  streaming scorer (grids at explorer speed);
- :mod:`~repro.surrogate.model` — ridge regression, mapping classifier,
  margin calibration, and the packaged :class:`SurrogateModel`;
- :mod:`~repro.surrogate.store` — versioned ``.npz`` persistence with a
  fingerprint guard against stale arch/space tables;
- :mod:`~repro.surrogate.engine` — the serving front-end
  (:class:`SurrogateEngine`) wrapping a
  :class:`~repro.service.engine.ProjectionEngine` for exact fallback.

See ``docs/SURROGATE.md`` for the serving-tier story and the CLI
(``python -m repro surrogate train|eval|project``).
"""

from repro.surrogate.dataset import TrainingSet, generate_training_set
from repro.surrogate.engine import SurrogateEngine, SurrogateResponse
from repro.surrogate.features import (
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    feature_rows_for_sizes,
    kernel_feature_row,
)
from repro.surrogate.model import (
    ExemplarClassifier,
    MappingClassifier,
    RidgeRegressor,
    SurrogateModel,
    evaluate_model,
    train_surrogate,
)
from repro.surrogate.store import (
    MODEL_FORMAT,
    StaleModelError,
    load_model,
    save_model,
)

__all__ = [
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "MODEL_FORMAT",
    "ExemplarClassifier",
    "MappingClassifier",
    "RidgeRegressor",
    "StaleModelError",
    "SurrogateEngine",
    "SurrogateModel",
    "SurrogateResponse",
    "TrainingSet",
    "evaluate_model",
    "feature_rows_for_sizes",
    "generate_training_set",
    "kernel_feature_row",
    "load_model",
    "save_model",
    "train_surrogate",
]
