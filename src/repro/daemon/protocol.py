"""The daemon's job model and JSON wire forms.

A **job** is one unit of queued work: a single projection, a batch of
request records, or a parametric sweep.  Its payload is exactly the
JSON a client POSTs to ``/v1/jobs``; the projection-shaped parts reuse
the batch runner's record format (:func:`repro.service.jobs.parse_request`)
verbatim, so anything that works as a ``python -m repro batch`` line
works inside a daemon job unchanged.

Lifecycle::

    queued -> running -> done | failed | cancelled
       \\---------------------------------^  (cancel while queued)

A job interrupted by a crash or shutdown goes back to ``queued`` (its
``interruptions`` counter ticks up), and a sweep job resumes from its
checkpoint instead of recomputing finished tiles — see
:mod:`repro.daemon.checkpoint` and ``docs/DAEMON.md``.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from typing import Any

from repro.util.fingerprint import stable_digest

#: Wire/schema version of job records and journal events.
PROTOCOL_VERSION = 1

#: The job kinds the scheduler knows how to execute.
JOB_KINDS = ("projection", "batch", "sweep")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every legal state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States from which a job will never move again.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


def new_job_id() -> str:
    """A short, collision-resistant job id."""
    return uuid.uuid4().hex[:12]


def payload_fingerprint(kind: str, payload: dict[str, Any]) -> str:
    """Content address of a job's work, used to guard checkpoints."""
    return stable_digest(
        {"format": PROTOCOL_VERSION, "kind": kind, "payload": payload}
    )


def error_body(
    error: str,
    field_name: str | None = None,
    hint: str | None = None,
    **extra: Any,
) -> dict[str, Any]:
    """The structured ``{error, field, hint}`` body every rejection uses.

    The same shape :meth:`repro.service.jobs.BadRequestError.to_dict`
    produces, so daemon responses and CLI stderr stay interchangeable.
    """
    body: dict[str, Any] = {"error": error}
    if field_name is not None:
        body["field"] = field_name
    if hint is not None:
        body["hint"] = hint
    body.update(extra)
    return body


@dataclass
class Job:
    """One queued/running/finished unit of daemon work.

    The persisted fields round-trip through :meth:`to_dict` /
    :meth:`from_dict` (the journal's job form).  ``cancel_event`` is
    runtime-only: the scheduler polls it between batch records and
    sweep tiles for cooperative cancellation.
    """

    job_id: str
    kind: str
    payload: dict[str, Any]
    client: str = "anonymous"
    state: str = QUEUED
    submitted: float = 0.0
    started: float | None = None
    finished: float | None = None
    error: dict[str, Any] | None = None
    interruptions: int = 0
    fingerprint: str = ""
    #: Stable request/trace id carried end-to-end (client → journal →
    #: worker → event log).  Assigned at submission when the client did
    #: not propagate one.
    trace_id: str = ""
    #: The submitting client's own wall clock (unix seconds), when it
    #: sent one — lets the trace include the client-submit span.
    client_submitted: float | None = None
    #: Whether the client asked for span recording; off by default so
    #: untraced jobs pay nothing.
    trace: bool = False
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; know {JOB_KINDS}"
            )
        if self.state not in JOB_STATES:
            raise ValueError(
                f"unknown job state {self.state!r}; know {JOB_STATES}"
            )
        if not self.fingerprint:
            self.fingerprint = payload_fingerprint(self.kind, self.payload)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def queue_wait(self) -> float | None:
        """Seconds between submission and start (None while queued)."""
        if self.started is None:
            return None
        return max(0.0, self.started - self.submitted)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe persisted form (journal entries, status bodies)."""
        record: dict[str, Any] = {
            "format": PROTOCOL_VERSION,
            "id": self.job_id,
            "kind": self.kind,
            "client": self.client,
            "state": self.state,
            "payload": self.payload,
            "submitted": self.submitted,
            "fingerprint": self.fingerprint,
            "interruptions": self.interruptions,
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.client_submitted is not None:
            record["client_submitted"] = self.client_submitted
        if self.trace:
            record["trace"] = True
        if self.started is not None:
            record["started"] = self.started
        if self.finished is not None:
            record["finished"] = self.finished
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Job":
        if record.get("format") != PROTOCOL_VERSION:
            raise ValueError(
                f"unsupported job record format {record.get('format')!r}"
            )
        return cls(
            job_id=str(record["id"]),
            kind=str(record["kind"]),
            payload=dict(record["payload"]),
            client=str(record.get("client", "anonymous")),
            state=str(record.get("state", QUEUED)),
            submitted=float(record.get("submitted", 0.0)),
            started=record.get("started"),
            finished=record.get("finished"),
            error=record.get("error"),
            interruptions=int(record.get("interruptions", 0)),
            fingerprint=str(record.get("fingerprint", "")),
            trace_id=str(record.get("trace_id", "")),
            client_submitted=record.get("client_submitted"),
            trace=bool(record.get("trace", False)),
        )

    def status_dict(self) -> dict[str, Any]:
        """The ``/v1/jobs/<id>`` body: persisted form + derived times."""
        record = self.to_dict()
        record.pop("payload")  # potentially large; fetch via result
        wait = self.queue_wait()
        if wait is not None:
            record["queue_wait_seconds"] = wait
        if self.started is not None and self.finished is not None:
            record["run_seconds"] = max(0.0, self.finished - self.started)
        return record


def validate_submission(body: Any) -> tuple[str, str, dict[str, Any]]:
    """Check a ``/v1/jobs`` submission body: ``(kind, client, payload)``.

    Raises nothing — malformed submissions are the *caller's* error, so
    this returns via :class:`~repro.service.jobs.BadRequestError` for
    the shared structured form.
    """
    from repro.service.jobs import BadRequestError

    if not isinstance(body, dict):
        raise BadRequestError(
            f"submission must be a JSON object, got {type(body).__name__}",
            hint='POST {"kind": ..., "payload": {...}}',
        )
    kind = body.get("kind")
    if kind not in JOB_KINDS:
        raise BadRequestError(
            f"unknown job kind {kind!r}",
            field="kind",
            hint=f"one of {', '.join(JOB_KINDS)}",
        )
    payload = body.get("payload")
    if not isinstance(payload, dict):
        raise BadRequestError(
            "payload must be a JSON object",
            field="payload",
            hint="the job's work description; see docs/DAEMON.md",
        )
    client = str(body.get("client") or "anonymous")
    return str(kind), client, payload


def validate_trace_context(
    body: dict[str, Any],
) -> tuple[bool, str, float | None]:
    """Extract ``(trace, trace_id, client_submitted)`` from a submission.

    All three are optional on the wire: ``trace`` asks the daemon to
    record worker-side spans for this job, ``trace_id`` propagates a
    client-generated id (one is minted server-side otherwise), and
    ``client_submitted`` is the client's wall clock at submission.
    Malformed values raise the shared structured
    :class:`~repro.service.jobs.BadRequestError`.
    """
    from repro.service.jobs import BadRequestError

    trace = bool(body.get("trace", False))
    trace_id = body.get("trace_id", "")
    if trace_id is not None and not isinstance(trace_id, str):
        raise BadRequestError(
            f"trace_id must be a string, got {type(trace_id).__name__}",
            field="trace_id",
            hint="omit it to have the daemon mint one",
        )
    trace_id = str(trace_id or "")
    if len(trace_id) > 64:
        raise BadRequestError(
            "trace_id too long (max 64 characters)", field="trace_id"
        )
    client_submitted = body.get("client_submitted")
    if client_submitted is not None and not isinstance(
        client_submitted, (int, float)
    ):
        raise BadRequestError(
            "client_submitted must be a unix timestamp",
            field="client_submitted",
            hint="seconds since the epoch, e.g. time.time()",
        )
    return trace, trace_id, (
        float(client_submitted) if client_submitted is not None else None
    )
