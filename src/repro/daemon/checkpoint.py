"""Checkpoint/resume for long sweep jobs: persist finished grid tiles.

A sweep job's work divides into independent **tiles** (one per sweep
point).  As each tile completes, its result record is appended to
``<state_dir>/checkpoints/<job_id>.jsonl`` — a header line naming the
job's payload fingerprint, then one ``{"tile": i, "record": {...}}``
line per finished tile.  When an interrupted job is requeued (daemon
killed mid-sweep, drain deadline hit), the scheduler loads the
checkpoint and recomputes only the missing tiles; the content-addressed
:class:`~repro.service.cache.ProjectionCache` makes even a *lost*
checkpoint cheap, but the checkpoint makes resume exact and
search-free regardless of cache state.

The fingerprint guard means a checkpoint can never leak between
payloads: if a job id is ever reused with different work (or the file
is stale), the mismatch discards it and the sweep starts clean.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.daemon.protocol import PROTOCOL_VERSION

CHECKPOINTS_DIR = "checkpoints"


class SweepCheckpoint:
    """Append-only tile journal for one sweep job."""

    def __init__(
        self, state_dir: str | Path, job_id: str, fingerprint: str
    ) -> None:
        directory = Path(state_dir) / CHECKPOINTS_DIR
        directory.mkdir(parents=True, exist_ok=True)
        self._path = directory / f"{job_id}.jsonl"
        self._job_id = job_id
        self._fingerprint = fingerprint

    @property
    def path(self) -> Path:
        return self._path

    def load(self) -> dict[int, dict[str, Any]]:
        """Completed tiles as ``{index: record}``.

        A missing file, a foreign fingerprint, or a torn tail line all
        degrade to fewer tiles — never to a wrong record: each line was
        flushed whole before the next tile started.
        """
        try:
            with open(self._path, encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if (
            not isinstance(header, dict)
            or header.get("format") != PROTOCOL_VERSION
            or header.get("fingerprint") != self._fingerprint
        ):
            self.discard()
            return {}
        tiles: dict[int, dict[str, Any]] = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: everything before it is intact
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("record"), dict)
            ):
                continue
            tiles[int(entry["tile"])] = entry["record"]
        return tiles

    def record(self, tile: int, record: dict[str, Any]) -> None:
        """Append one finished tile, durably (flush + fsync)."""
        new_file = not self._path.exists()
        with open(self._path, "a", encoding="utf-8") as fh:
            if new_file:
                fh.write(
                    json.dumps(
                        {
                            "format": PROTOCOL_VERSION,
                            "job": self._job_id,
                            "fingerprint": self._fingerprint,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {"tile": tile, "record": record}, sort_keys=True
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())

    def discard(self) -> None:
        """Delete the checkpoint file (job finished or invalidated)."""
        try:
            self._path.unlink(missing_ok=True)
        except OSError:
            pass
