"""Per-client token-bucket rate limiting for the daemon's intake.

Classic token bucket: a client accumulates ``rate`` tokens per second
up to a ``burst`` ceiling, and each submission spends one.  An empty
bucket yields a structured 429-style rejection telling the client
exactly how long to back off — the daemon never queues work it has
already decided to refuse.

The clock is injectable so the tests drive time by hand; production
uses :func:`time.monotonic`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.daemon.protocol import error_body


class TokenBucket:
    """One client's bucket: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._rate = rate
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Spend ``tokens`` if available: 0.0 on success, else the
        seconds until they will be (the client's retry-after)."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self._rate


class RateLimiter:
    """Token buckets per client, created lazily, behind one lock.

    ``rate=None`` disables limiting entirely (every check admits).
    """

    def __init__(
        self,
        rate: float | None,
        burst: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._rate = rate
        self._burst = burst
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self._rate is not None

    def check(self, client: str) -> float:
        """0.0 if ``client`` may submit now, else seconds to wait."""
        if self._rate is None:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self._rate, self._burst, self._clock)
                self._buckets[client] = bucket
            return bucket.try_acquire()

    def rejection(self, client: str, retry_after: float) -> dict:
        """The structured 429 body for a rate-limited submission."""
        return error_body(
            f"rate limit exceeded for client {client!r}",
            field_name="client",
            hint=f"retry in {retry_after:.2f}s "
            f"(limit: {self._rate:g} jobs/s, burst {self._burst:g})",
            retry_after_seconds=retry_after,
        )
