"""The always-on projection daemon: HTTP front end + graceful lifecycle.

Pure stdlib — :class:`http.server.ThreadingHTTPServer` threads in front
of the :class:`~repro.daemon.scheduler.Scheduler`.  Endpoints (JSON in,
JSON out; see ``docs/DAEMON.md`` for the full protocol):

- ``POST /v1/jobs`` — submit a ``projection`` / ``batch`` / ``sweep``
  job; 429 with a structured body when the client's token bucket is
  empty, 503 once draining;
- ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` — queue listing / one job;
- ``GET /v1/jobs/<id>/result`` — the result document (409 + current
  state while the job is still pending);
- ``GET /v1/jobs/<id>/trace`` — the Chrome trace document of a job
  submitted with ``trace: true`` (409 until terminal);
- ``POST /v1/jobs/<id>/cancel`` — cancel (queued: immediate; running:
  cooperative);
- ``GET /v1/events?after=N&limit=M`` — the structured event ring
  (``repro daemon tail`` is the CLI follower);
- ``GET /v1/slo`` — rolling latency/error burn rates + shadow-audit
  verdict;
- ``GET /v1/status`` — queue depths, worker/limiter config, uptime,
  and the ``health`` field the shadow audit drives;
- ``GET /v1/version`` — package + protocol version;
- ``GET /metrics`` — Prometheus text exposition (service counters and
  stage summaries plus live queue gauges);
- ``GET /healthz`` — liveness.

:func:`run_daemon` is the CLI's ``daemon start``: it binds the socket,
writes ``<state_dir>/daemon.json`` (host/port/pid — how the other CLI
verbs find the daemon), and installs SIGTERM/SIGINT handlers that stop
intake, drain in-flight work within ``drain_deadline`` seconds, and
checkpoint/requeue whatever remains.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

from repro.daemon.protocol import (
    PROTOCOL_VERSION,
    Job,
    error_body,
    new_job_id,
    validate_submission,
    validate_trace_context,
)
from repro.daemon.queue import JobQueue
from repro.daemon.ratelimit import RateLimiter
from repro.daemon.scheduler import Scheduler
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.obs.audit import ShadowAuditor
from repro.obs.context import new_trace_id
from repro.obs.events import EventLog
from repro.obs.prometheus import metric_name
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.service.cache import ProjectionCache
from repro.service.engine import ProjectionEngine
from repro.service.jobs import BadRequestError
from repro.surrogate.engine import SurrogateEngine
from repro.surrogate.store import load_model
from repro.version import package_version

#: Name of the endpoint file the CLI verbs read to find a daemon.
ENDPOINT_FILE = "daemon.json"


class DaemonApp:
    """Everything behind the HTTP layer: queue, scheduler, limits."""

    def __init__(
        self,
        state_dir: str | Path,
        seed: int = 2013,
        workers: int = 2,
        rate: float | None = None,
        burst: float = 10.0,
        max_client_running: int = 2,
        drain_deadline: float = 10.0,
        use_cache: bool = True,
        surrogate_model: str | Path | None = None,
        slo: SLOConfig | None = None,
        audit_rate: float = 0.01,
        audit_min_agreement: float = 0.9,
        events_capacity: int = 1024,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.drain_deadline = drain_deadline
        self.started = time.time()
        self._draining = threading.Event()
        ctx = ExperimentContext(seed=seed)
        cache = (
            ProjectionCache(disk_dir=self.state_dir / "cache")
            if use_cache
            else None
        )
        self.engine = ProjectionEngine(
            arch=quadro_fx_5600(),
            bus=ctx.bus_model,
            cache=cache,
            max_workers=1,
        )
        self.events = EventLog(
            self.state_dir / "events.jsonl", capacity=events_capacity
        )
        self.slo = SLOMonitor(slo)
        self.surrogate: SurrogateEngine | None = None
        self.auditor: ShadowAuditor | None = None
        if surrogate_model is not None:
            # The fingerprint guard runs at load: a model trained for a
            # different arch/space refuses to start the daemon at all
            # rather than silently falling back on every job.
            model = load_model(
                surrogate_model, self.engine.arch, self.engine.space
            )
            self.surrogate = SurrogateEngine(model, self.engine)
            if audit_rate > 0:
                # Shadow audit accepted surrogate answers off the hot
                # path; the hook fires inside SurrogateEngine.project.
                self.auditor = ShadowAuditor(
                    self.engine,
                    rate=audit_rate,
                    min_agreement=audit_min_agreement,
                    events=self.events,
                )
                self.surrogate.auditor = self.auditor
                # Pre-register the audit counters so the series exist
                # on /metrics from the first scrape, not the first
                # disagreement.
                self.engine.metrics.incr("obs_surrogate_audits", 0)
                self.engine.metrics.incr(
                    "obs_surrogate_audit_disagreements", 0
                )
        self.queue = JobQueue(
            self.state_dir, max_running_per_client=max_client_running
        )
        self.limiter = RateLimiter(rate, burst)
        self.scheduler = Scheduler(
            self.queue,
            self.engine,
            workers=workers,
            surrogate=self.surrogate,
            events=self.events,
            slo=self.slo,
        )
        if self.queue.recovered_jobs:
            self.engine.metrics.incr(
                "jobs_recovered", len(self.queue.recovered_jobs)
            )
            for job_id in self.queue.recovered_jobs:
                job = self.queue.get(job_id)
                if job is not None:
                    self.events.emit(
                        "requeue",
                        job_id=job.job_id,
                        trace_id=job.trace_id,
                        client=job.client,
                        reason="recovered",
                        interruptions=job.interruptions,
                    )

    # Lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self.scheduler.start()
        if self.auditor is not None:
            self.auditor.start()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def shutdown(self) -> bool:
        """Stop intake, drain with the deadline, requeue the rest."""
        self._draining.set()
        clean = self.scheduler.drain(self.drain_deadline)
        if self.auditor is not None:
            self.auditor.stop()
        return clean

    # Handlers: each returns ``(http_status, body_dict)`` ------------------
    def submit(self, body: Any) -> tuple[int, dict[str, Any]]:
        if self.draining:
            return 503, error_body(
                "daemon is draining and no longer accepts jobs",
                hint="resubmit after the daemon restarts",
            )
        try:
            kind, client, payload = validate_submission(body)
            trace, trace_id, client_submitted = validate_trace_context(
                body
            )
        except BadRequestError as exc:
            return 400, exc.to_dict()
        retry_after = self.limiter.check(client)
        if retry_after > 0:
            self.engine.metrics.incr("rate_limited")
            self.events.emit(
                "rate_limit",
                trace_id=trace_id,
                client=client,
                retry_after_seconds=retry_after,
            )
            return 429, self.limiter.rejection(client, retry_after)
        job = Job(
            job_id=new_job_id(),
            kind=kind,
            payload=payload,
            client=client,
            trace_id=trace_id or new_trace_id(),
            client_submitted=client_submitted,
            trace=trace,
        )
        try:
            self.queue.submit(job)
        except RuntimeError as exc:
            return 503, error_body(str(exc))
        self.engine.metrics.incr("jobs_submitted")
        self.events.emit(
            "submit",
            job_id=job.job_id,
            trace_id=job.trace_id,
            client=client,
            kind=kind,
            traced=trace,
        )
        return 200, {
            "id": job.job_id,
            "state": job.state,
            "position": self.queue.depth(),
            "trace_id": job.trace_id,
        }

    def job_status(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.queue.get(job_id)
        if job is None:
            return 404, error_body(
                f"unknown job {job_id!r}", field_name="id"
            )
        return 200, job.status_dict()

    def job_result(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.queue.get(job_id)
        if job is None:
            return 404, error_body(
                f"unknown job {job_id!r}", field_name="id"
            )
        if not job.terminal:
            return 409, error_body(
                f"job {job_id} is still {job.state}",
                hint="poll again once the job is done, or pass --wait",
                id=job_id,
                state=job.state,
            )
        body: dict[str, Any] = {"id": job_id, "state": job.state}
        if job.error is not None:
            body["error"] = job.error
        path = self.queue.result_path(job_id)
        if path.is_file():
            try:
                with open(path, encoding="utf-8") as fh:
                    body["result"] = json.load(fh)
            except (OSError, json.JSONDecodeError):
                body["error"] = error_body("result document unreadable")
        return 200, body

    def job_trace(self, job_id: str) -> tuple[int, dict[str, Any]]:
        """The job's Chrome trace document, once it exists."""
        job = self.queue.get(job_id)
        if job is None:
            return 404, error_body(
                f"unknown job {job_id!r}", field_name="id"
            )
        if not job.trace:
            return 404, error_body(
                f"job {job_id} was not traced",
                hint='submit with "trace": true '
                "(`repro daemon submit --trace`)",
                id=job_id,
            )
        path = self.scheduler.trace_path(job_id)
        if not path.is_file():
            return 409, error_body(
                f"job {job_id} is still {job.state}; no trace yet",
                hint="poll again once the job is terminal",
                id=job_id,
                state=job.state,
            )
        try:
            with open(path, encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return 500, error_body("trace document unreadable")
        return 200, document

    def events_body(
        self, after: int = 0, limit: int = 100
    ) -> tuple[int, dict[str, Any]]:
        """The ``/v1/events`` body: ring events with ``seq > after``."""
        events = self.events.tail(limit=limit, after=after)
        return 200, {
            "events": [event.to_dict() for event in events],
            "last_seq": self.events.last_seq,
        }

    def slo_body(self) -> tuple[int, dict[str, Any]]:
        """The ``/v1/slo`` body: burn rates + shadow-audit verdict."""
        body: dict[str, Any] = {
            "slo": self.slo.snapshot(),
            "audit": (
                self.auditor.snapshot()
                if self.auditor is not None
                else None
            ),
        }
        body["health"] = self.health()
        return 200, body

    def health(self) -> str:
        """``ok`` unless the shadow audit says the surrogate drifted."""
        if self.auditor is not None and not self.auditor.healthy():
            return "degraded"
        return "ok"

    def cancel(self, job_id: str) -> tuple[int, dict[str, Any]]:
        try:
            job = self.queue.cancel(job_id)
        except KeyError:
            return 404, error_body(
                f"unknown job {job_id!r}", field_name="id"
            )
        return 200, job.status_dict()

    def list_jobs(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "jobs": [job.status_dict() for job in self.queue.jobs()]
        }

    def status(self) -> tuple[int, dict[str, Any]]:
        counts = self.queue.counts()
        body: dict[str, Any] = {
            "version": package_version(),
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": max(0.0, time.time() - self.started),
            "draining": self.draining,
            "health": self.health(),
            "workers": self.scheduler.worker_count,
            "surrogate": self.surrogate is not None,
            "rate_limited": self.limiter.enabled,
            "queue": counts,
            "depth": counts["queued"],
            "running": counts["running"],
            "state_dir": str(self.state_dir),
        }
        if self.auditor is not None:
            audit = self.auditor.snapshot()
            body["audit"] = {
                "agreement": audit["agreement"],
                "audits": audit["audits"],
                "disagreements": audit["disagreements"],
                "healthy": audit["healthy"],
            }
        return 200, body

    def version(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "version": package_version(),
            "protocol": PROTOCOL_VERSION,
        }

    def metrics_text(self) -> str:
        """Service metrics exposition plus live queue/SLO/audit gauges."""
        text = self.engine.metrics.to_prometheus()
        counts = self.queue.counts()
        slo = self.slo.snapshot()
        gauges: list[tuple[str, Any]] = [
            ("queue_depth", counts["queued"]),
            ("jobs_running", counts["running"]),
            ("uptime_seconds", max(0.0, time.time() - self.started)),
            ("obs_slo_window_jobs", slo["window_jobs"]),
            ("obs_slo_error_burn_rate", slo["error_burn_rate"]),
            ("obs_slo_latency_burn_rate", slo["latency_burn_rate"]),
            ("obs_events_emitted", self.events.last_seq),
            ("obs_health_ok", 1 if self.health() == "ok" else 0),
        ]
        if self.auditor is not None:
            audit = self.auditor.snapshot()
            gauges.append(
                (
                    "obs_surrogate_audit_agreement",
                    # 1.0 until the first audit lands: no evidence of
                    # drift is healthy, and a NaN would trip the strict
                    # exposition parser's float round-trip.
                    1.0 if audit["agreement"] is None
                    else audit["agreement"],
                )
            )
            gauges.append(
                ("obs_surrogate_audit_pending", audit["pending"])
            )
        lines = []
        for raw, value in gauges:
            name = metric_name(raw).removesuffix("_total")
            lines.append(f"# HELP {name} Live daemon gauge {raw!r}.")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        return text + "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the app; JSON bodies both ways."""

    app: DaemonApp  # set by make_handler
    quiet = True
    protocol_version = "HTTP/1.1"

    # Silence per-request stderr noise unless asked for.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict[str, Any]) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        return json.loads(raw)

    @staticmethod
    def _int_param(
        query: dict[str, list[str]], name: str, default: int
    ) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[-1])
        except ValueError:
            return default

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urllib.parse.urlsplit(self.path)
        path = split.path.rstrip("/")
        if path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/metrics":
            self._send_text(200, self.app.metrics_text())
        elif path == "/v1/version":
            self._send_json(*self.app.version())
        elif path == "/v1/status":
            self._send_json(*self.app.status())
        elif path == "/v1/slo":
            self._send_json(*self.app.slo_body())
        elif path == "/v1/events":
            query = urllib.parse.parse_qs(split.query)
            self._send_json(
                *self.app.events_body(
                    after=self._int_param(query, "after", 0),
                    limit=self._int_param(query, "limit", 100),
                )
            )
        elif path == "/v1/jobs":
            self._send_json(*self.app.list_jobs())
        elif path.startswith("/v1/jobs/"):
            parts = path.split("/")
            if len(parts) == 4:
                self._send_json(*self.app.job_status(parts[3]))
            elif len(parts) == 5 and parts[4] == "result":
                self._send_json(*self.app.job_result(parts[3]))
            elif len(parts) == 5 and parts[4] == "trace":
                self._send_json(*self.app.job_trace(parts[3]))
            else:
                self._send_json(
                    404, error_body(f"no such endpoint {self.path!r}")
                )
        else:
            self._send_json(
                404, error_body(f"no such endpoint {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/")
        try:
            body = self._read_body()
        except (json.JSONDecodeError, ValueError) as exc:
            self._send_json(
                400,
                error_body(
                    f"bad JSON body: {exc}",
                    hint="POST a JSON object",
                ),
            )
            return
        if path == "/v1/jobs":
            self._send_json(*self.app.submit(body))
        elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
            job_id = path.split("/")[3]
            self._send_json(*self.app.cancel(job_id))
        else:
            self._send_json(
                404, error_body(f"no such endpoint {self.path!r}")
            )


def make_handler(app: DaemonApp) -> type[_Handler]:
    return type("BoundHandler", (_Handler,), {"app": app})


class DaemonServer:
    """The bound, threaded HTTP server in front of one app."""

    def __init__(
        self, app: DaemonApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.httpd = ThreadingHTTPServer((host, port), make_handler(app))
        self.httpd.daemon_threads = True

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_in_thread(self) -> threading.Thread:
        """Start serving on a background thread (tests, benchmarks)."""
        self.app.start()
        thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-daemon-http",
            daemon=True,
        )
        thread.start()
        return thread

    def stop(self) -> bool:
        """Graceful shutdown: drain the app, then stop the listener."""
        clean = self.app.shutdown()
        self.httpd.shutdown()
        self.httpd.server_close()
        return clean


def write_endpoint_file(state_dir: Path, server: DaemonServer) -> Path:
    """Record where the daemon listens, atomically."""
    record = {
        "host": server.host,
        "port": server.port,
        "url": server.url,
        "pid": os.getpid(),
        "started": server.app.started,
        "version": package_version(),
    }
    target = state_dir / ENDPOINT_FILE
    tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(record, fh, sort_keys=True)
    os.replace(tmp, target)
    return target


def read_endpoint_file(state_dir: str | Path) -> dict[str, Any] | None:
    """The daemon.json record, or None when absent/corrupt."""
    try:
        with open(
            Path(state_dir) / ENDPOINT_FILE, encoding="utf-8"
        ) as fh:
            record = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def run_daemon(
    state_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    out: Callable[[str], None] = print,
    install_signals: bool = True,
    **app_options: Any,
) -> int:
    """``python -m repro daemon start``: serve until SIGTERM/SIGINT.

    Blocks the calling thread.  On a signal: stop intake (submissions
    get 503), drain in-flight jobs within the app's drain deadline
    (sweeps checkpoint and requeue), then stop the listener and remove
    the endpoint file.  Returns 0 on a clean drain, 1 otherwise.
    """
    state_dir = Path(state_dir)
    app = DaemonApp(state_dir, **app_options)
    server = DaemonServer(app, host, port)
    endpoint = write_endpoint_file(state_dir, server)
    stop_requested = threading.Event()
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                signum, lambda *_: stop_requested.set()
            )
    server.serve_in_thread()
    out(
        f"repro daemon v{package_version()} listening on {server.url} "
        f"(state: {state_dir}, workers: {app.scheduler.worker_count})"
    )
    if app.queue.recovered_jobs:
        out(
            f"  recovered {len(app.queue.recovered_jobs)} interrupted "
            f"job(s): {', '.join(app.queue.recovered_jobs)}"
        )
    try:
        stop_requested.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    out("shutdown requested: draining...")
    clean = server.stop()
    counts = app.queue.counts()
    out(
        f"drained {'cleanly' if clean else 'with stragglers'}: "
        f"{counts['done']} done, {counts['failed']} failed, "
        f"{counts['cancelled']} cancelled, {counts['queued']} requeued"
    )
    try:
        endpoint.unlink(missing_ok=True)
    except OSError:
        pass
    return 0 if clean else 1
