"""The persistent job queue: an append-only journal under ``state_dir``.

Every state transition appends one JSON line to
``<state_dir>/journal.jsonl``; the full queue state is a pure function
of the journal, so a daemon restart replays it and carries on.  Jobs
that were ``running`` when the process died (crash, SIGKILL) replay
back to ``queued`` with their ``interruptions`` counter bumped — the
scheduler then resumes them (sweeps from their checkpoint).

Result documents live next to the journal in
``<state_dir>/results/<job_id>.json`` and are written *before* the
``finish`` journal event, so a ``done`` journal entry always has a
readable result.

The queue is thread-safe; workers block in :meth:`claim` on a condition
variable.  Per-client fairness is enforced here too: a client may have
at most ``max_running_per_client`` jobs running at once, and queued
jobs of a saturated client are skipped (not reordered) until one of its
running jobs finishes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.daemon.protocol import (
    CANCELLED,
    DONE,
    FAILED,
    PROTOCOL_VERSION,
    QUEUED,
    RUNNING,
    Job,
)

JOURNAL_NAME = "journal.jsonl"
RESULTS_DIR = "results"


class JobQueue:
    """Durable FIFO of :class:`~repro.daemon.protocol.Job` records."""

    def __init__(
        self,
        state_dir: str | Path,
        max_running_per_client: int = 2,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_running_per_client < 1:
            raise ValueError(
                f"max_running_per_client must be >= 1, got "
                f"{max_running_per_client}"
            )
        self._state_dir = Path(state_dir)
        self._state_dir.mkdir(parents=True, exist_ok=True)
        (self._state_dir / RESULTS_DIR).mkdir(exist_ok=True)
        self._journal_path = self._state_dir / JOURNAL_NAME
        self._max_per_client = max_running_per_client
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []  # submission order
        self._seq = 0
        self._closed = False
        self._recovered = self._replay()

    # Properties ----------------------------------------------------------
    @property
    def state_dir(self) -> Path:
        return self._state_dir

    @property
    def recovered_jobs(self) -> tuple[str, ...]:
        """Ids of jobs found mid-run at startup and requeued."""
        return self._recovered

    # Journal -------------------------------------------------------------
    def _append(self, event: str, **fields: Any) -> None:
        """Append one journal line (caller holds the lock)."""
        self._seq += 1
        record = {
            "format": PROTOCOL_VERSION,
            "seq": self._seq,
            "event": event,
            "at": self._clock(),
            **fields,
        }
        with open(self._journal_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _replay(self) -> tuple[str, ...]:
        """Rebuild state from the journal; requeue interrupted jobs.

        Torn tail lines (a crash mid-append) are ignored; every earlier
        line was fsynced, so the journal never lies about completed
        transitions.
        """
        if not self._journal_path.is_file():
            return ()
        with open(self._journal_path, encoding="utf-8") as fh:
            lines = fh.readlines()
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line
            event = record.get("event")
            self._seq = max(self._seq, int(record.get("seq", 0)))
            if event == "submit":
                job = Job.from_dict(record["job"])
                job.state = QUEUED
                self._jobs[job.job_id] = job
                self._order.append(job.job_id)
                continue
            job = self._jobs.get(str(record.get("job_id", "")))
            if job is None:
                continue
            if event == "start":
                job.state = RUNNING
                job.started = record.get("at")
            elif event == "finish":
                job.state = str(record.get("state", DONE))
                job.finished = record.get("at")
                job.error = record.get("error")
            elif event == "cancel":
                job.state = CANCELLED
                job.finished = record.get("at")
            elif event == "requeue":
                job.state = QUEUED
                job.started = None
                job.interruptions = int(
                    record.get("interruptions", job.interruptions + 1)
                )
        recovered = []
        for job in self._jobs.values():
            if job.state == RUNNING:
                job.state = QUEUED
                job.started = None
                job.interruptions += 1
                self._append(
                    "requeue",
                    job_id=job.job_id,
                    interruptions=job.interruptions,
                    reason="recovered",
                )
                recovered.append(job.job_id)
        return tuple(recovered)

    # Submission / claiming ------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Enqueue ``job`` durably and wake one worker."""
        with self._not_empty:
            if self._closed:
                raise RuntimeError("queue is closed to new work")
            if job.job_id in self._jobs:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            job.state = QUEUED
            job.submitted = self._clock()
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
            self._append("submit", job=job.to_dict())
            self._not_empty.notify()
        return job

    def _client_running(self, client: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.state == RUNNING and job.client == client
        )

    def _next_eligible(self) -> Job | None:
        for job_id in self._order:
            job = self._jobs[job_id]
            if job.state != QUEUED:
                continue
            if self._client_running(job.client) >= self._max_per_client:
                continue
            return job
        return None

    def claim(self, timeout: float | None = None) -> Job | None:
        """Atomically take the next eligible queued job, or None.

        Blocks up to ``timeout`` seconds (forever when None) for work
        to arrive; returns None on timeout or once the queue is closed
        to claiming (shutdown).
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._not_empty:
            while True:
                if self._closed:
                    return None
                job = self._next_eligible()
                if job is not None:
                    job.state = RUNNING
                    job.started = self._clock()
                    job.cancel_event = threading.Event()
                    self._append("start", job_id=job.job_id)
                    return job
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)

    # Completion -----------------------------------------------------------
    def result_path(self, job_id: str) -> Path:
        return self._state_dir / RESULTS_DIR / f"{job_id}.json"

    def finish(
        self,
        job_id: str,
        result: dict[str, Any] | None = None,
        error: dict[str, Any] | None = None,
        cancelled: bool = False,
    ) -> Job:
        """Mark a running job done/failed/cancelled, result first."""
        if result is not None:
            path = self.result_path(job_id)
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(result, fh, sort_keys=True)
            os.replace(tmp, path)
        with self._not_empty:
            job = self._jobs[job_id]
            if cancelled:
                job.state = CANCELLED
            else:
                job.state = FAILED if error is not None else DONE
            job.finished = self._clock()
            job.error = error
            self._append(
                "finish", job_id=job_id, state=job.state, error=error
            )
            # A slot freed up for this client; wake a waiting worker.
            self._not_empty.notify()
        return job

    def requeue(self, job_id: str) -> Job:
        """Put an interrupted running job back at its queue position."""
        with self._not_empty:
            job = self._jobs[job_id]
            job.state = QUEUED
            job.started = None
            job.interruptions += 1
            self._append(
                "requeue",
                job_id=job_id,
                interruptions=job.interruptions,
                reason="shutdown",
            )
            self._not_empty.notify()
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued ones immediately, running cooperatively.

        A running job's cancel event is set; the scheduler observes it
        between records/tiles and finishes the job as ``cancelled``.
        Terminal jobs are returned unchanged (cancel is idempotent).
        """
        with self._not_empty:
            job = self._jobs[job_id]
            if job.terminal:
                return job
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = self._clock()
                self._append("cancel", job_id=job_id)
            else:
                job.cancel_event.set()
        return job

    # Shutdown -------------------------------------------------------------
    def close_intake(self) -> None:
        """Refuse new submissions and unblock idle workers."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # Introspection ---------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def depth(self) -> int:
        """Queued (not yet running) job count."""
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.state == QUEUED
            )

    def running(self) -> list[Job]:
        with self._lock:
            return [
                j for j in self._jobs.values() if j.state == RUNNING
            ]

    def counts(self) -> dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        from repro.daemon.protocol import JOB_STATES

        with self._lock:
            counts = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def __iter__(self) -> Iterator[Job]:  # pragma: no cover - convenience
        return iter(self.jobs())
