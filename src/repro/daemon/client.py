"""Pure-stdlib client for the repro daemon's HTTP API.

:class:`DaemonClient` wraps :mod:`urllib.request` — no third-party
HTTP library — and speaks the JSON protocol from ``docs/DAEMON.md``.
Point it at a URL, or at a ``state_dir`` and it reads the daemon's
``daemon.json`` endpoint file itself.

Error responses (400/404/409/429/503) raise :class:`DaemonError`
carrying the structured ``{error, field, hint}`` body, so callers can
print the same message the CLI would.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any

from repro.daemon.server import read_endpoint_file


class DaemonError(Exception):
    """An HTTP-level rejection, with the structured body attached."""

    def __init__(self, status: int, body: dict[str, Any]) -> None:
        self.status = status
        self.body = body if isinstance(body, dict) else {"error": str(body)}
        message = self.body.get("error", f"daemon returned HTTP {status}")
        hint = self.body.get("hint")
        super().__init__(
            f"{message} (HTTP {status})"
            + (f" — hint: {hint}" if hint else "")
        )


class DaemonClient:
    """Talks to one daemon; every method is a single HTTP exchange."""

    def __init__(
        self,
        base_url: str | None = None,
        state_dir: str | Path | None = None,
        timeout: float = 10.0,
    ) -> None:
        if base_url is None:
            if state_dir is None:
                raise ValueError("need base_url or state_dir")
            record = read_endpoint_file(state_dir)
            if record is None or "url" not in record:
                raise ConnectionError(
                    f"no daemon endpoint file in {state_dir} — is the "
                    "daemon running? (`python -m repro daemon start`)"
                )
            base_url = str(record["url"])
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # Plumbing -------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                parsed = {"error": raw.decode("utf-8", "replace")}
            raise DaemonError(exc.code, parsed) from None
        except urllib.error.URLError as exc:
            raise ConnectionError(
                f"cannot reach daemon at {self.base_url}: {exc.reason}"
            ) from None
        return json.loads(raw) if raw else None

    def _text(self, path: str) -> str:
        request = urllib.request.Request(self.base_url + path)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ConnectionError(
                f"cannot reach daemon at {self.base_url}: {exc}"
            ) from None

    # API ------------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ConnectionError, DaemonError):
            return False

    def version(self) -> dict[str, Any]:
        return self._request("GET", "/v1/version")

    def status(self) -> dict[str, Any]:
        return self._request("GET", "/v1/status")

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        client: str | None = None,
        trace: bool = False,
        trace_id: str | None = None,
    ) -> dict[str, Any]:
        """POST one job; returns ``{"id", "state", "position", ...}``.

        With ``trace=True`` the submission carries a trace context —
        a client-minted ``trace_id`` (or the one supplied) plus this
        process's wall clock — and the daemon records worker-side spans
        so ``GET /v1/jobs/<id>/trace`` later returns one stitched
        Chrome trace including the client-submit span.
        """
        body: dict[str, Any] = {"kind": kind, "payload": payload}
        if client is not None:
            body["client"] = client
        if trace or trace_id is not None:
            from repro.obs.context import new_trace_id

            body["trace"] = bool(trace)
            body["trace_id"] = trace_id or new_trace_id()
            body["client_submitted"] = time.time()
        return self._request("POST", "/v1/jobs", body)

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        """The terminal result body; DaemonError 409 while pending."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll: float = 0.1,
    ) -> dict[str, Any]:
        """Poll until the job is terminal, then return its result body."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except DaemonError as exc:
                if exc.status != 409:
                    raise
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout:g}s"
                )
            time.sleep(poll)

    def trace(self, job_id: str) -> dict[str, Any]:
        """A traced job's Chrome trace document (409 until terminal)."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def events(
        self, after: int = 0, limit: int = 100
    ) -> dict[str, Any]:
        """``{"events": [...], "last_seq": N}`` with ``seq > after``."""
        return self._request(
            "GET", f"/v1/events?after={int(after)}&limit={int(limit)}"
        )

    def slo(self) -> dict[str, Any]:
        """The ``/v1/slo`` body: burn rates + shadow-audit verdict."""
        return self._request("GET", "/v1/slo")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        return self._text("/metrics")
