"""The daemon's scheduler: a bounded worker pool over the job queue.

Workers block in :meth:`~repro.daemon.queue.JobQueue.claim` (which
already enforces per-client running limits), execute one job at a time,
and write results through the queue.  Execution reuses the service
layer end-to-end — :func:`repro.service.jobs.parse_objects` for
validation and :func:`repro.service.jobs.project_parsed` for the cached
parallel projection — so a daemon job's records are the very dicts
``python -m repro batch`` would have written.

Sweep jobs checkpoint every finished tile
(:class:`~repro.daemon.checkpoint.SweepCheckpoint`); an interrupted
sweep (SIGKILL, drain deadline) resumes from its checkpoint on the next
start instead of recomputing.  Cancellation is cooperative: the queue
sets the job's cancel event, and the scheduler observes it between
records/tiles.

Metrics (shared :class:`~repro.service.metrics.ServiceMetrics`):
``queue_wait`` and ``job_run`` stage timers feed the p50/p95/p99
histograms, and counters track submissions, completions, failures,
cancellations, and checkpoint traffic — all scraped via ``/metrics``.

Observability v2 rides along: when the scheduler is built with an
:class:`~repro.obs.events.EventLog` it emits one typed event per
lifecycle transition (dequeue/start/checkpoint/requeue/complete/fail/
cancel, plus surrogate accept/fallback decisions); an
:class:`~repro.obs.slo.SLOMonitor` observes every terminal job; and a
job submitted with ``trace: true`` runs under a per-worker scoped
tracer (:func:`repro.obs.trace.scoped_tracing`) whose spans — stitched
with the client-submit and queue-dwell lifecycle edges — are written to
``<state_dir>/traces/<job_id>.trace.json`` for ``GET
/v1/jobs/<id>/trace``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Any, Callable

from repro.daemon.checkpoint import SweepCheckpoint
from repro.daemon.protocol import Job, error_body
from repro.daemon.queue import JobQueue
from repro.gpu.registry import (
    UnknownArchitectureError,
    arch_ids,
    get_arch,
)
from repro.obs.context import build_job_trace
from repro.obs.events import EventLog
from repro.obs.metrics import nearest_rank
from repro.obs.slo import SLOMonitor
from repro.obs.trace import Tracer, scoped_tracing
from repro.obs.trace import span as trace_span
from repro.service.engine import ProjectionEngine
from repro.service.jobs import (
    BadRequestError,
    parse_objects,
    project_parsed,
)
from repro.surrogate.engine import SERVING_MODES, SurrogateEngine

#: Where per-job Chrome traces land, under the queue's state dir.
TRACES_DIR = "traces"


class JobInterrupted(Exception):
    """Raised inside execution when a drain wants the job requeued."""


def batch_records_summary(rows: list[dict[str, Any]]) -> dict[str, Any]:
    """Counts + cache hits + p95 over serialized batch/sweep records.

    Works on the JSON record dicts (not live responses), so the daemon
    can summarize results it read back from disk.
    """
    ok = [row for row in rows if row.get("ok")]
    seconds = [
        row["seconds"] for row in ok if isinstance(
            row.get("seconds"), (int, float)
        )
    ]
    return {
        "total": len(rows),
        "ok": len(ok),
        "errors": len(rows) - len(ok),
        "cache_hits": sum(1 for row in ok if row.get("cached")),
        "p95_seconds": nearest_rank(seconds, 0.95) if seconds else None,
    }


class Scheduler:
    """Executes queued jobs on ``workers`` daemon threads."""

    def __init__(
        self,
        queue: JobQueue,
        engine: ProjectionEngine,
        workers: int = 2,
        base_dir: str | Path | None = None,
        surrogate: SurrogateEngine | None = None,
        events: EventLog | None = None,
        slo: SLOMonitor | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._queue = queue
        self._engine = engine
        #: Optional learned front-end for projection jobs; ``mode`` in a
        #: projection payload selects auto/surrogate/exact per job.
        self._surrogate = surrogate
        self._metrics = engine.metrics
        self._workers = workers
        #: Relative skeleton_file paths in payloads resolve against this
        #: (the daemon's working directory by default).
        self._base_dir = Path(base_dir) if base_dir else Path.cwd()
        self._events = events
        self._slo = slo
        self._draining = threading.Event()
        self._threads: list[threading.Thread] = []

    def _emit(self, event_type: str, job: Job, **attrs: Any) -> None:
        """One lifecycle event carrying the job's identity triple."""
        if self._events is not None:
            self._events.emit(
                event_type,
                job_id=job.job_id,
                trace_id=job.trace_id,
                client=job.client,
                **attrs,
            )

    def trace_path(self, job_id: str) -> Path:
        """Where a traced job's Chrome document lands."""
        return self._queue.state_dir / TRACES_DIR / f"{job_id}.trace.json"

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def worker_count(self) -> int:
        return self._workers

    # Lifecycle ------------------------------------------------------------
    def start(self) -> None:
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-daemon-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, deadline: float) -> bool:
        """Stop claiming, finish in-flight work, requeue the rest.

        Returns True when every worker exited within ``deadline``
        seconds.  Sweep jobs observe the drain between tiles, so their
        progress is checkpointed and requeued promptly; whatever is
        still running when the deadline passes is requeued anyway — the
        journal then replays it as interrupted on the next start.

        Also releases the process-wide worker pools (the shared thread
        pool the batch runner fans out on, and the shared-memory
        streaming pool when one was started) via
        :meth:`~repro.service.engine.ProjectionEngine.close` — the
        daemon owns the process, so nothing else will want them.
        """
        self._draining.set()
        self._queue.close_intake()
        clean = True
        remaining = deadline
        for thread in self._threads:
            step = max(0.05, remaining)
            before = time.monotonic()
            thread.join(step)
            remaining -= time.monotonic() - before
            if thread.is_alive():
                clean = False
        for job in self._queue.running():
            self._queue.requeue(job.job_id)
            self._metrics.incr("jobs_requeued")
            self._emit("requeue", job, reason="shutdown")
        self._engine.close()
        return clean

    # Workers ---------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.claim(timeout=0.5)
            if job is None:
                if self._queue.closed:
                    return
                continue
            wait = job.queue_wait()
            if wait is not None:
                self._metrics.add_time("queue_wait", wait)
            self._emit(
                "dequeue",
                job,
                kind=job.kind,
                queue_wait_seconds=wait,
                interruptions=job.interruptions,
            )
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        """Execute one claimed job under its (optional) scoped tracer.

        The tracer is installed on *this worker thread only*
        (:func:`~repro.obs.trace.scoped_tracing`), so concurrent workers
        tracing different jobs never leak spans into each other.  The
        daemon's engine executes serially on the claiming thread
        (``max_workers=1``), which keeps every engine span on the scoped
        thread.
        """
        self._emit("start", job, kind=job.kind)
        tracer = Tracer() if job.trace else None
        scope = scoped_tracing(tracer) if tracer is not None else nullcontext()
        run_start = time.perf_counter()
        with scope:
            outcome, commit = self._run_job_inner(job)
        if tracer is not None and outcome != "requeued":
            # Persist the trace *before* the job turns terminal, so a
            # client that saw a terminal /result can always fetch
            # /trace without racing the writer.
            self._write_trace(job, tracer)
        if self._slo is not None and outcome in ("done", "failed"):
            # Likewise before the commit: a client that saw the job
            # terminal must find it in the SLO window already.
            self._slo.observe_job(
                time.perf_counter() - run_start, ok=outcome == "done"
            )
        commit()

    def _run_job_inner(
        self, job: Job
    ) -> tuple[str, Callable[[], None]]:
        """Execute one job to a verdict; the returned callable commits it.

        The commit (queue state transition + counters + lifecycle
        event) is deferred so the caller can write the job's trace file
        first — a terminal job therefore always has its trace on disk.
        """
        with trace_span(
            "job", category="daemon", job=job.job_id, kind=job.kind
        ):
            try:
                with self._metrics.timer("job_run"):
                    result = self._execute(job)
            except JobInterrupted:

                def requeue() -> None:
                    self._queue.requeue(job.job_id)
                    self._metrics.incr("jobs_requeued")
                    self._emit("requeue", job, reason="drain")

                return "requeued", requeue
            except _Cancelled:
                return "cancelled", lambda: self._commit_cancelled(job)
            except BadRequestError as exc:
                return "failed", self._failure_commit(job, exc.to_dict())
            except Exception as exc:  # noqa: BLE001 - job isolation
                message = str(exc.args[0] if exc.args else exc) or repr(exc)
                return "failed", self._failure_commit(
                    job, error_body(message.splitlines()[0])
                )
            if job.cancel_event.is_set():
                return "cancelled", lambda: self._commit_cancelled(job)

            def complete() -> None:
                self._queue.finish(job.job_id, result=result)
                self._metrics.incr("jobs_completed")
                run = None
                if job.finished is not None and job.started is not None:
                    run = max(0.0, job.finished - job.started)
                self._emit("complete", job, kind=job.kind, run_seconds=run)

            return "done", complete

    def _commit_cancelled(self, job: Job) -> None:
        self._queue.finish(job.job_id, cancelled=True)
        self._metrics.incr("jobs_cancelled")
        self._emit("cancel", job)

    def _failure_commit(
        self, job: Job, body: dict[str, Any]
    ) -> Callable[[], None]:
        def fail() -> None:
            self._queue.finish(job.job_id, error=body)
            self._metrics.incr("jobs_failed")
            self._emit("fail", job, error=body.get("error"))

        return fail

    def _write_trace(self, job: Job, tracer: Tracer) -> None:
        """Assemble and atomically persist one job's Chrome trace."""
        document = build_job_trace(
            trace_id=job.trace_id or job.job_id,
            job_id=job.job_id,
            tracer=tracer,
            pid=os.getpid(),
            submitted=job.submitted,
            started=job.started,
            finished=job.finished,
            client_submitted=job.client_submitted,
        )
        path = self.trace_path(job.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
        os.replace(tmp, path)
        self._metrics.incr("traces_written")

    # Execution -------------------------------------------------------------
    def _execute(self, job: Job) -> dict[str, Any]:
        if job.kind == "projection":
            return self._execute_projection(job)
        if job.kind == "batch":
            return self._execute_batch(job)
        return self._execute_sweep(job)

    def _check_interrupt(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise _Cancelled()
        if self._draining.is_set():
            raise JobInterrupted(job.job_id)

    def _execute_projection(self, job: Job) -> dict[str, Any]:
        payload = dict(job.payload)
        mode = payload.pop("mode", None)
        if mode is not None:
            if mode not in SERVING_MODES:
                raise BadRequestError(
                    f"unknown serving mode {mode!r}",
                    field="mode",
                    hint=f"one of {', '.join(SERVING_MODES)}",
                )
            if self._surrogate is None and mode != "exact":
                raise BadRequestError(
                    f"serving mode {mode!r} needs a surrogate model",
                    field="mode",
                    hint="start the daemon with --surrogate-model",
                )
        parsed = parse_objects([payload], self._base_dir)
        if parsed[0].error is not None:
            raise parsed[0].error
        if self._surrogate is not None:
            # Route every mode through the gated engine so records from
            # a surrogate daemon uniformly carry path + serving
            # provenance (mode="exact" falls back with reason
            # "requested" and the bitwise-identical engine record).
            served = self._surrogate.project(parsed[0].request, mode)
            provenance = served.provenance
            if provenance.path == "surrogate":
                self._emit(
                    "surrogate_accept",
                    job,
                    reason=provenance.reason,
                    confidence=provenance.confidence,
                )
            else:
                self._emit(
                    "surrogate_fallback",
                    job,
                    reason=provenance.reason,
                    confidence=provenance.confidence,
                )
            return {"kind": "projection", "record": served.to_dict()}
        (record,) = project_parsed(parsed, self._engine)
        return {"kind": "projection", "record": record.to_dict()}

    def _execute_batch(self, job: Job) -> dict[str, Any]:
        requests = job.payload.get("requests")
        if not isinstance(requests, list) or not requests:
            raise BadRequestError(
                "batch payload needs a non-empty 'requests' list",
                field="requests",
                hint="the same records `python -m repro batch` reads, "
                "as a JSON array",
            )
        parsed = parse_objects(requests, self._base_dir)
        records = project_parsed(
            parsed,
            self._engine,
            should_stop=job.cancel_event.is_set,
        )
        rows = [record.to_dict() for record in records]
        if job.cancel_event.is_set():
            raise _Cancelled()
        return {
            "kind": "batch",
            "records": rows,
            "summary": batch_records_summary(rows),
        }

    def _execute_sweep(self, job: Job) -> dict[str, Any]:
        """One tile per sweep point, checkpointed as it completes."""
        requests = self._sweep_requests(job.payload)
        parsed = parse_objects(requests, self._base_dir)
        checkpoint = SweepCheckpoint(
            self._queue.state_dir, job.job_id, job.fingerprint
        )
        tiles = checkpoint.load() if job.interruptions else {}
        if tiles:
            self._metrics.incr("tiles_resumed", len(tiles))
        rows: list[dict[str, Any]] = []
        for index, item in enumerate(parsed):
            if index in tiles:
                rows.append(tiles[index])
                continue
            self._check_interrupt(job)
            if item.error is not None:
                raise item.error
            with self._metrics.timer("sweep_tile"):
                (record,) = project_parsed([item], self._engine)
            row = record.to_dict()
            if not row.get("ok"):
                # A worker exception during tile scoring is isolated
                # into an error record by project_parsed — surface it in
                # the per-stage error counters and the event log too,
                # not just the job's result document.
                self._metrics.incr("sweep_tile_errors")
                self._emit(
                    "fail",
                    job,
                    scope="tile",
                    request_id=row.get("id"),
                    error=row.get("error"),
                )
            checkpoint.record(index, row)
            self._metrics.incr("tiles_checkpointed")
            rows.append(row)
        result = {
            "kind": "sweep",
            "workload": job.payload.get("workload"),
            "points": rows,
            "summary": batch_records_summary(rows),
            "resumed_tiles": len(tiles),
        }
        if "arches" in job.payload:
            result["arches"] = self._sweep_arches(job.payload)
        checkpoint.discard()
        return result

    @staticmethod
    def _sweep_arches(payload: dict[str, Any]) -> list[str]:
        """Validate and normalize a sweep payload's architecture axis.

        ``"all"`` expands to the whole registry; otherwise every entry
        must be a registry id — an unknown one fails the job with the
        structured ``{error, field, hint}`` body listing valid ids.
        """
        arches = payload.get("arches")
        if "arch" in payload:
            raise BadRequestError(
                "'arch' and 'arches' are mutually exclusive",
                field="arches",
                hint="use 'arch' for one architecture or 'arches' for "
                "an axis",
            )
        if arches == "all":
            return list(arch_ids())
        if not isinstance(arches, list) or not arches:
            raise BadRequestError(
                "'arches' must be \"all\" or a non-empty list of "
                "registry ids",
                field="arches",
                hint="`python -m repro arch list` shows the fleet",
            )
        normalized = []
        for arch_id in arches:
            name = str(arch_id).lower()
            try:
                get_arch(name)
            except UnknownArchitectureError as exc:
                raise BadRequestError(
                    str(exc), field="arches", hint=exc.hint
                ) from exc
            normalized.append(name)
        return normalized

    @classmethod
    def _sweep_requests(cls, payload: dict[str, Any]) -> list[dict[str, Any]]:
        """Expand a sweep payload into per-point request records.

        ``{"workload": W, "datasets": [...]}`` — every listed dataset
        (default: all of the workload's) becomes one tile, carrying any
        shared optional fields (``iterations``, ``arch``, ``pcie_gen``,
        ``batched_transfers``, ``cpu_ms``) through unchanged.  An
        ``arches`` axis (a list of registry ids, or ``"all"``) crosses
        the dataset axis — one tile per (architecture, dataset), ids
        ``W/label@arch`` in architecture-major order — and is mutually
        exclusive with the shared ``arch`` field.
        """
        from repro.workloads.registry import get_workload

        name = payload.get("workload")
        if not isinstance(name, str) or not name:
            raise BadRequestError(
                "sweep payload needs a 'workload' name",
                field="workload",
                hint="`python -m repro list` shows the registry",
            )
        try:
            workload = get_workload(name)
        except (KeyError, ValueError) as exc:
            raise BadRequestError(
                str(exc.args[0] if exc.args else exc),
                field="workload",
                hint="`python -m repro list` shows the registry",
            ) from exc
        labels = payload.get("datasets")
        if labels is None:
            labels = [d.label for d in workload.datasets()]
        if not isinstance(labels, list) or not labels:
            raise BadRequestError(
                "'datasets' must be a non-empty list of labels",
                field="datasets",
                hint="omit it to sweep every dataset",
            )
        shared = {
            key: payload[key]
            for key in (
                "iterations",
                "arch",
                "pcie_gen",
                "batched_transfers",
                "cpu_ms",
            )
            if key in payload
        }
        if "arches" in payload:
            return [
                {
                    "id": f"{workload.name}/{label}@{arch_id}",
                    "workload": workload.name,
                    "dataset": str(label),
                    **shared,
                    "arch": arch_id,
                }
                for arch_id in cls._sweep_arches(payload)
                for label in labels
            ]
        return [
            {
                "id": f"{workload.name}/{label}",
                "workload": workload.name,
                "dataset": str(label),
                **shared,
            }
            for label in labels
        ]


class _Cancelled(Exception):
    """Internal: the job observed its cancel event mid-run."""
