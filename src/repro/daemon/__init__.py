"""repro.daemon — the always-on projection service.

A persistent daemon in front of the projection service layer: a
stdlib-only HTTP server (:mod:`repro.daemon.server`) feeding a durable
job queue (:mod:`repro.daemon.queue`, JSONL journal that survives
restarts), executed by a bounded worker pool
(:mod:`repro.daemon.scheduler`) with per-client token-bucket rate
limiting (:mod:`repro.daemon.ratelimit`) and checkpoint/resume for
sweep jobs (:mod:`repro.daemon.checkpoint`).

Start one with ``python -m repro daemon start --state-dir runs/daemon``
and talk to it with the other ``daemon`` CLI verbs, the pure-stdlib
:class:`~repro.daemon.client.DaemonClient`, or any HTTP client — the
protocol is plain JSON (``docs/DAEMON.md``).
"""

from repro.daemon.checkpoint import SweepCheckpoint
from repro.daemon.client import DaemonClient, DaemonError
from repro.daemon.protocol import (
    JOB_KINDS,
    JOB_STATES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    Job,
    new_job_id,
    payload_fingerprint,
    validate_submission,
    validate_trace_context,
)
from repro.daemon.queue import JobQueue
from repro.daemon.ratelimit import RateLimiter, TokenBucket
from repro.daemon.scheduler import JobInterrupted, Scheduler
from repro.daemon.server import (
    DaemonApp,
    DaemonServer,
    read_endpoint_file,
    run_daemon,
)

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "PROTOCOL_VERSION",
    "TERMINAL_STATES",
    "DaemonApp",
    "DaemonClient",
    "DaemonError",
    "DaemonServer",
    "Job",
    "JobInterrupted",
    "JobQueue",
    "RateLimiter",
    "Scheduler",
    "SweepCheckpoint",
    "TokenBucket",
    "new_job_id",
    "payload_fingerprint",
    "read_endpoint_file",
    "run_daemon",
    "validate_submission",
    "validate_trace_context",
]
