"""Latency histograms: percentile views over recorded durations.

:class:`Histogram` is the building block
:class:`~repro.service.metrics.ServiceMetrics` uses to turn its
accumulated per-stage wall times into p50/p95/p99 latencies.  It keeps
**exact** count/sum/min/max over every observation, plus a bounded ring
buffer of the most recent observations from which percentiles are
computed — so memory stays O(capacity) under production traffic while
the quantiles track current behaviour (a sliding window, not a decayed
sketch; the window size is the explicit ``capacity``).

Percentiles use the nearest-rank method over the retained window: p50 of
``[1, 2, 3, 4]`` is 2, matching the conventional definition and keeping
the hypothesis properties in ``tests/obs/test_metrics_histogram.py``
exact.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Sequence

#: The percentile triple every snapshot reports.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def nearest_rank(values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of ``values`` (which must be non-empty)."""
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {quantile}")
    if not values:
        raise ValueError("cannot take a percentile of no observations")
    ordered = sorted(values)
    rank = math.ceil(quantile * len(ordered))
    return ordered[rank - 1]


class Histogram:
    """Thread-safe scalar histogram with a bounded percentile window."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._window: list[float] = []
        self._cursor = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def capacity(self) -> int:
        return self._capacity

    def observe(self, value: float) -> None:
        """Record one observation (any finite float)."""
        if not math.isfinite(value):
            raise ValueError(f"observation must be finite, got {value!r}")
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._window) < self._capacity:
                self._window.append(value)
            else:
                self._window[self._cursor] = value
                self._cursor = (self._cursor + 1) % self._capacity

    # Views ---------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, quantile: float) -> float:
        """Nearest-rank percentile over the retained window."""
        with self._lock:
            window = list(self._window)
        return nearest_rank(window, quantile)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view: exact totals plus the percentile triple."""
        with self._lock:
            window = list(self._window)
            count = self._count
            total = self._sum
            low = self._min
            high = self._max
        if not count:
            return {"count": 0, "sum": 0.0}
        snap: dict[str, Any] = {
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
        }
        for quantile in DEFAULT_QUANTILES:
            key = f"p{round(quantile * 100):d}"
            snap[key] = nearest_rank(window, quantile)
        return snap

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        if not snap["count"]:
            return "histogram: empty"
        return (
            f"histogram: n={snap['count']} p50={snap['p50']:.6f} "
            f"p95={snap['p95']:.6f} p99={snap['p99']:.6f}"
        )
