"""Prometheus text exposition of a ServiceMetrics snapshot.

Renders the plain-dict snapshot of
:class:`~repro.service.metrics.ServiceMetrics` in the Prometheus text
format (version 0.0.4): counters as ``repro_<name>_total`` counter
metrics, per-stage timers as one ``summary`` family with ``stage``
labels — quantile series from the histogram window plus the exact
``_sum``/``_count`` pairs.  ``python -m repro metrics --prometheus``
prints exactly this; a scrape config pointed at anything that serves it
needs no adapter.

No dependency on ``prometheus_client`` — the format is a handful of
lines, and :func:`parse_exposition` implements the reader side so tests
(and consumers without the client library) can validate round-trips.
"""

from __future__ import annotations

import re
from typing import Any, Iterator

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID = re.compile(r"[^a-zA-Z0-9_]")
#: ``name{labels} value`` — the subset of the text format we emit.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"$')


def metric_name(raw: str, namespace: str = "repro") -> str:
    """A valid Prometheus metric name for counter ``raw``."""
    cleaned = _INVALID.sub("_", raw).strip("_") or "unnamed"
    name = f"{namespace}_{cleaned}"
    if not name.endswith("_total"):
        name += "_total"
    assert _NAME_OK.match(name), name
    return name


def _format_value(value: float) -> str:
    """Float form Prometheus accepts; repr keeps exactness."""
    return repr(float(value))


def render_snapshot(
    snapshot: dict[str, Any], namespace: str = "repro"
) -> str:
    """The text exposition of one ServiceMetrics snapshot."""
    lines: list[str] = []
    for raw in sorted(snapshot.get("counters", {})):
        name = metric_name(raw, namespace)
        lines.append(f"# HELP {name} Monotonic counter {raw!r}.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {snapshot['counters'][raw]}")
    timers = snapshot.get("timers", {})
    if timers:
        family = f"{namespace}_stage_duration_seconds"
        lines.append(
            f"# HELP {family} Wall time per pipeline stage (seconds)."
        )
        lines.append(f"# TYPE {family} summary")
        for stage in sorted(timers):
            entry = timers[stage]
            label = stage.replace("\\", "\\\\").replace('"', '\\"')
            for key, quantile in (
                ("p50", "0.5"),
                ("p95", "0.95"),
                ("p99", "0.99"),
            ):
                if key in entry:
                    lines.append(
                        f'{family}{{stage="{label}",quantile="{quantile}"}}'
                        f" {_format_value(entry[key])}"
                    )
            lines.append(
                f'{family}_sum{{stage="{label}"}} '
                f"{_format_value(entry['seconds'])}"
            )
            lines.append(
                f'{family}_count{{stage="{label}"}} {entry["calls"]}'
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_exposition(
    text: str,
) -> Iterator[tuple[str, dict[str, str], float]]:
    """Parse the text format back into ``(name, labels, value)`` samples.

    Strict about the subset this module emits — any malformed sample or
    label raises ``ValueError`` — which is what makes it usable as the
    line-format validator in tests and CI.
    """
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(
                f"line {lineno} is not a valid sample: {line!r}"
            )
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                label_match = _LABEL.match(pair)
                if label_match is None:
                    raise ValueError(
                        f"line {lineno} has a malformed label: {pair!r}"
                    )
                labels[label_match.group("key")] = label_match.group(
                    "value"
                )
        try:
            value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno} has a non-numeric value: "
                f"{match.group('value')!r}"
            ) from None
        yield match.group("name"), labels, value
