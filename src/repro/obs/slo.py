"""Rolling-window SLO monitors: latency and error burn rates.

The histograms in :class:`~repro.service.metrics.ServiceMetrics` answer
"what have latencies looked like over the last N samples"; an SLO
question is different — "over the last *five minutes*, what fraction of
jobs missed the objective, and how fast is that eating the error
budget?"  :class:`SLOMonitor` keeps exact per-job observations
``(wall time, run seconds, ok)`` in a time-pruned deque and derives:

- ``error_rate`` / ``error_burn_rate``: failed-job fraction over the
  window, divided by the budgeted failure fraction.  Burn rate 1.0
  means the budget is being consumed exactly as provisioned; 2.0 means
  twice as fast (the window will exhaust a month's budget in half a
  month); anything sustained above 1.0 deserves a page.
- ``slow_rate`` / ``latency_burn_rate``: same arithmetic over jobs
  slower than ``latency_target_seconds`` against the
  ``1 - latency_objective`` slow-job allowance.

The monitor is O(jobs-in-window) memory, lock-guarded, and fed one call
per finished job — nowhere near any hot path.  ``/v1/slo`` serves the
snapshot; ``/metrics`` exports the burn rates as gauges.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs.metrics import nearest_rank


@dataclass(frozen=True)
class SLOConfig:
    """The objectives a daemon is held to."""

    #: Sliding window the rates are computed over.
    window_seconds: float = 300.0
    #: A job slower than this is "slow" for the latency objective.
    latency_target_seconds: float = 5.0
    #: Fraction of jobs that must finish under the target.
    latency_objective: float = 0.95
    #: Budgeted failed-job fraction.
    error_budget: float = 0.01

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.latency_target_seconds <= 0:
            raise ValueError("latency_target_seconds must be positive")
        if not 0.0 < self.latency_objective < 1.0:
            raise ValueError("latency_objective must be in (0, 1)")
        if not 0.0 < self.error_budget < 1.0:
            raise ValueError("error_budget must be in (0, 1)")

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "latency_target_seconds": self.latency_target_seconds,
            "latency_objective": self.latency_objective,
            "error_budget": self.error_budget,
        }


class SLOMonitor:
    """Exact rolling-window burn rates over per-job observations."""

    def __init__(
        self,
        config: SLOConfig | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or SLOConfig()
        self._clock = clock
        self._lock = threading.Lock()
        #: (observed wall time, run seconds, ok) — pruned by wall time.
        self._observations: deque[tuple[float, float, bool]] = deque()

    def observe_job(self, seconds: float, ok: bool = True) -> None:
        """Record one finished job's run time and outcome."""
        now = self._clock()
        with self._lock:
            self._observations.append((now, max(0.0, seconds), ok))
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        observations = self._observations
        while observations and observations[0][0] < horizon:
            observations.popleft()

    def snapshot(self) -> dict[str, Any]:
        """The ``/v1/slo`` body: rates, burn rates, percentiles, verdict."""
        config = self.config
        with self._lock:
            self._prune(self._clock())
            rows = list(self._observations)
        jobs = len(rows)
        errors = sum(1 for _, _, ok in rows if not ok)
        durations = [seconds for _, seconds, _ in rows]
        slow = sum(
            1
            for seconds in durations
            if seconds > config.latency_target_seconds
        )
        error_rate = errors / jobs if jobs else 0.0
        slow_rate = slow / jobs if jobs else 0.0
        error_burn = error_rate / config.error_budget
        latency_burn = slow_rate / (1.0 - config.latency_objective)
        snapshot: dict[str, Any] = {
            "config": config.to_dict(),
            "window_jobs": jobs,
            "errors": errors,
            "error_rate": error_rate,
            "error_burn_rate": error_burn,
            "slow_jobs": slow,
            "slow_rate": slow_rate,
            "latency_burn_rate": latency_burn,
            "ok": error_burn <= 1.0 and latency_burn <= 1.0,
        }
        for quantile in (0.5, 0.95, 0.99):
            key = f"p{int(quantile * 100)}_seconds"
            snapshot[key] = (
                nearest_rank(durations, quantile) if durations else None
            )
        return snapshot

    def healthy(self) -> bool:
        """True while both burn rates are within budget."""
        return bool(self.snapshot()["ok"])
