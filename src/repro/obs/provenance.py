"""Prediction provenance: *why* a projection says what it says.

The paper's core claim is attributional — ignoring data transfer
mis-ranks GPU speedups — so a projection is only trustworthy if you can
see where the predicted time comes from.  A
:class:`ProjectionProvenance` answers that for one projection:

- per kernel: the winning mapping, its MWP/CWP regime and values, the
  runner-up mapping and its gap, and how the search width splits into
  explored / illegal-skipped / bound-pruned configurations;
- per transfer: the array, direction, bytes, and the ``α + β·d`` split
  of its predicted time (fixed latency vs. bandwidth term);
- overall: the kernel-vs-transfer share of the one-iteration total.

Exactness invariants (asserted by ``tests/obs/test_provenance.py`` and
the acceptance criteria): the per-kernel seconds sum to
``kernel_seconds`` bit-for-bit, the per-transfer seconds to
``transfer_seconds``, each transfer's ``alpha_seconds +
beta_seconds`` to its ``seconds``, and ``kernel_seconds +
transfer_seconds + setup_seconds`` to ``total_seconds`` — every sum is
computed once, in the same order the projection itself used, and stored.

The record round-trips exactly through ``to_dict``/``from_dict`` (and
JSON), so it can ride along inside a cached
:class:`~repro.core.serialize.ProjectionSummary`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.pcie.model import BusModel
from repro.util.validation import check_non_negative

if TYPE_CHECKING:  # circular at runtime: core.prediction -> ... -> obs
    from repro.core.prediction import Projection


@dataclass(frozen=True)
class KernelProvenance:
    """Why one kernel's projected time is what it is."""

    name: str
    best_mapping: str
    regime: str
    mwp: float
    cwp: float
    seconds: float
    #: Second-fastest explored mapping and how far behind it was;
    #: ``None``/``nan`` when the search produced a single candidate.
    runner_up_mapping: str | None
    runner_up_gap_seconds: float | None
    configs_explored: int
    configs_skipped: int
    configs_pruned: int

    def __post_init__(self) -> None:
        check_non_negative("seconds", self.seconds)
        check_non_negative("configs_explored", self.configs_explored)
        check_non_negative("configs_skipped", self.configs_skipped)
        check_non_negative("configs_pruned", self.configs_pruned)

    @property
    def search_width(self) -> int:
        return (
            self.configs_explored
            + self.configs_skipped
            + self.configs_pruned
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "best_mapping": self.best_mapping,
            "regime": self.regime,
            "mwp": self.mwp,
            "cwp": self.cwp,
            "seconds": self.seconds,
            "runner_up_mapping": self.runner_up_mapping,
            "runner_up_gap_seconds": self.runner_up_gap_seconds,
            "configs_explored": self.configs_explored,
            "configs_skipped": self.configs_skipped,
            "configs_pruned": self.configs_pruned,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "KernelProvenance":
        runner_up = data["runner_up_mapping"]
        gap = data["runner_up_gap_seconds"]
        return KernelProvenance(
            name=str(data["name"]),
            best_mapping=str(data["best_mapping"]),
            regime=str(data["regime"]),
            mwp=float(data["mwp"]),
            cwp=float(data["cwp"]),
            seconds=float(data["seconds"]),
            runner_up_mapping=(
                None if runner_up is None else str(runner_up)
            ),
            runner_up_gap_seconds=None if gap is None else float(gap),
            configs_explored=int(data["configs_explored"]),
            configs_skipped=int(data["configs_skipped"]),
            configs_pruned=int(data["configs_pruned"]),
        )


@dataclass(frozen=True)
class TransferProvenance:
    """One bus crossing with its ``T(d) = α + β·d`` decomposition."""

    array: str
    direction: str  # "H2D" | "D2H"
    bytes: int
    seconds: float
    #: The model's fixed per-transfer latency term (α).
    alpha_seconds: float
    #: The bandwidth term (β·d); ``alpha + beta == seconds`` exactly.
    beta_seconds: float
    conservative: bool

    def __post_init__(self) -> None:
        if self.direction not in ("H2D", "D2H"):
            raise ValueError(
                f"direction must be 'H2D' or 'D2H', got {self.direction!r}"
            )
        check_non_negative("seconds", self.seconds)
        check_non_negative("alpha_seconds", self.alpha_seconds)
        check_non_negative("beta_seconds", self.beta_seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "array": self.array,
            "direction": self.direction,
            "bytes": self.bytes,
            "seconds": self.seconds,
            "alpha_seconds": self.alpha_seconds,
            "beta_seconds": self.beta_seconds,
            "conservative": self.conservative,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "TransferProvenance":
        return TransferProvenance(
            array=str(data["array"]),
            direction=str(data["direction"]),
            bytes=int(data["bytes"]),
            seconds=float(data["seconds"]),
            alpha_seconds=float(data["alpha_seconds"]),
            beta_seconds=float(data["beta_seconds"]),
            conservative=bool(data["conservative"]),
        )


@dataclass(frozen=True)
class ServingProvenance:
    """Which serving path answered a query, and why.

    Attached by the surrogate front-end
    (:class:`~repro.surrogate.engine.SurrogateEngine`) to every response
    it serves: ``path`` is ``"surrogate"`` when the learned model
    answered and ``"exact"`` when the query ran through the exact
    streaming pipeline; ``reason`` says why that path was chosen
    (``accepted``, ``low_confidence``, ``out_of_domain``, ``requested``,
    ``arch_mismatch``, ``space_mismatch``, ``provenance``); and
    ``confidence`` is the calibrated accuracy estimate when the model
    scored the query (``None`` when it never did).
    """

    path: str  # "surrogate" | "exact"
    reason: str
    confidence: float | None = None
    model_arch: str | None = None

    def __post_init__(self) -> None:
        if self.path not in ("surrogate", "exact"):
            raise ValueError(
                f"path must be 'surrogate' or 'exact', got {self.path!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"path": self.path, "reason": self.reason}
        if self.confidence is not None:
            record["confidence"] = self.confidence
        if self.model_arch is not None:
            record["model_arch"] = self.model_arch
        return record

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ServingProvenance":
        confidence = data.get("confidence")
        model_arch = data.get("model_arch")
        return ServingProvenance(
            path=str(data["path"]),
            reason=str(data["reason"]),
            confidence=None if confidence is None else float(confidence),
            model_arch=None if model_arch is None else str(model_arch),
        )


@dataclass(frozen=True)
class ProjectionProvenance:
    """The full explanation of one projection's bottom line."""

    program: str
    kernel_seconds: float
    transfer_seconds: float
    setup_seconds: float
    #: ``kernel_seconds + transfer_seconds + setup_seconds``, stored so
    #: consumers can verify the components sum to it *exactly*.
    total_seconds: float
    kernels: tuple[KernelProvenance, ...]
    transfers: tuple[TransferProvenance, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", tuple(self.kernels))
        object.__setattr__(self, "transfers", tuple(self.transfers))
        check_non_negative("kernel_seconds", self.kernel_seconds)
        check_non_negative("transfer_seconds", self.transfer_seconds)
        check_non_negative("setup_seconds", self.setup_seconds)
        check_non_negative("total_seconds", self.total_seconds)

    # Shares ---------------------------------------------------------------
    @property
    def kernel_share(self) -> float:
        """Kernel fraction of the one-iteration total (0 when empty)."""
        if not self.total_seconds:
            return 0.0
        return self.kernel_seconds / self.total_seconds

    @property
    def transfer_share(self) -> float:
        """Transfer fraction of the one-iteration total (0 when empty)."""
        if not self.total_seconds:
            return 0.0
        return self.transfer_seconds / self.total_seconds

    @property
    def alpha_seconds(self) -> float:
        """Total fixed-latency (α) share of the transfer time."""
        return sum(t.alpha_seconds for t in self.transfers)

    @property
    def beta_seconds(self) -> float:
        """Total bandwidth (β·d) share of the transfer time."""
        return sum(t.beta_seconds for t in self.transfers)

    @property
    def configs_explored(self) -> int:
        return sum(k.configs_explored for k in self.kernels)

    @property
    def configs_pruned(self) -> int:
        return sum(k.configs_pruned for k in self.kernels)

    # Round-trip -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "kernel_seconds": self.kernel_seconds,
            "transfer_seconds": self.transfer_seconds,
            "setup_seconds": self.setup_seconds,
            "total_seconds": self.total_seconds,
            "kernels": [k.to_dict() for k in self.kernels],
            "transfers": [t.to_dict() for t in self.transfers],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ProjectionProvenance":
        return ProjectionProvenance(
            program=str(data["program"]),
            kernel_seconds=float(data["kernel_seconds"]),
            transfer_seconds=float(data["transfer_seconds"]),
            setup_seconds=float(data["setup_seconds"]),
            total_seconds=float(data["total_seconds"]),
            kernels=tuple(
                KernelProvenance.from_dict(k) for k in data["kernels"]
            ),
            transfers=tuple(
                TransferProvenance.from_dict(t) for t in data["transfers"]
            ),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ProjectionProvenance":
        return ProjectionProvenance.from_dict(json.loads(text))

    # Presentation ---------------------------------------------------------
    def explain(self) -> str:
        """Human-readable account — the ``repro trace`` CLI prints this."""
        lines = [f"provenance for {self.program}:"]
        lines.append(
            f"  total {self.total_seconds * 1e3:.3f} ms = kernel "
            f"{self.kernel_seconds * 1e3:.3f} ms "
            f"({self.kernel_share:.0%}) + transfer "
            f"{self.transfer_seconds * 1e3:.3f} ms "
            f"({self.transfer_share:.0%})"
            + (
                f" + setup {self.setup_seconds * 1e3:.3f} ms"
                if self.setup_seconds
                else ""
            )
        )
        lines.append("  kernels (why each winner won):")
        for k in self.kernels:
            lines.append(
                f"    {k.name:<20} {k.best_mapping:<16} "
                f"{k.seconds * 1e6:10.1f} us  {k.regime} "
                f"(MWP={k.mwp:.1f}, CWP={k.cwp:.1f})"
            )
            if k.runner_up_mapping is not None:
                gap = k.runner_up_gap_seconds or 0.0
                lines.append(
                    f"      runner-up {k.runner_up_mapping} "
                    f"+{gap * 1e6:.1f} us behind; "
                    f"{k.configs_explored} explored, "
                    f"{k.configs_skipped} illegal, "
                    f"{k.configs_pruned} pruned"
                )
            else:
                lines.append(
                    f"      sole candidate; {k.configs_skipped} illegal, "
                    f"{k.configs_pruned} pruned"
                )
        if self.transfers:
            lines.append(
                f"  transfers (alpha "
                f"{self.alpha_seconds * 1e3:.3f} ms latency + beta "
                f"{self.beta_seconds * 1e3:.3f} ms bandwidth):"
            )
            for t in self.transfers:
                tag = " [conservative]" if t.conservative else ""
                lines.append(
                    f"    {t.direction} {t.array:<16} "
                    f"{t.bytes / 2**20:8.2f} MB  "
                    f"{t.seconds * 1e3:8.3f} ms "
                    f"(a {t.alpha_seconds * 1e6:.1f} us + b·d "
                    f"{t.beta_seconds * 1e3:.3f} ms){tag}"
                )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"provenance[{self.program}]: kernel {self.kernel_share:.0%} "
            f"/ transfer {self.transfer_share:.0%} of "
            f"{self.total_seconds * 1e3:.3f} ms"
        )


def _runner_up(kp) -> tuple[str | None, float | None]:
    """Second-best candidate's (mapping label, gap) — None when alone.

    The best is the explorer's pick (first minimum); the runner-up is
    the best of everything else, with the same first-minimum tie-break,
    skipping candidates with the identical config (parallel merges can
    rebuild equal objects).
    """
    best = kp.best
    runner = None
    for candidate in kp.candidates:
        if candidate.config == best.config:
            continue
        if runner is None or candidate.seconds < runner.seconds:
            runner = candidate
    if runner is None:
        return None, None
    gap = runner.seconds - best.seconds
    # Guard degenerate float cases; the gap is >= 0 by best-ness.
    return runner.config.label(), (gap if math.isfinite(gap) else None)


def build_provenance(
    projection: Projection, bus: BusModel
) -> ProjectionProvenance:
    """Derive the provenance record of ``projection`` under ``bus``.

    ``bus`` must be the model that priced the projection — the α/β split
    is reconstructed from it, and ``alpha + beta*d`` re-computes the
    identical float the projection's per-transfer seconds hold (the same
    expression the model evaluated; the builder asserts it).
    """
    kernels = []
    for kp in projection.kernels.kernels:
        runner_mapping, runner_gap = _runner_up(kp)
        breakdown = kp.best.breakdown
        kernels.append(
            KernelProvenance(
                name=kp.kernel,
                best_mapping=kp.best.config.label(),
                regime=breakdown.regime,
                mwp=breakdown.mwp,
                cwp=breakdown.cwp,
                seconds=kp.seconds,
                runner_up_mapping=runner_mapping,
                runner_up_gap_seconds=runner_gap,
                configs_explored=len(kp.candidates),
                configs_skipped=len(kp.skipped),
                configs_pruned=len(kp.pruned),
            )
        )
    transfers = []
    for transfer, seconds in zip(
        projection.plan.transfers, projection.per_transfer_seconds
    ):
        model = bus.for_direction(transfer.direction)
        alpha = model.alpha
        beta_part = model.beta * transfer.bytes
        if alpha + beta_part != seconds:
            raise ValueError(
                f"bus does not reproduce the projection's transfer time "
                f"for {transfer.array!r} {transfer.direction.short}: "
                f"{alpha + beta_part!r} != {seconds!r} — pass the bus "
                f"that priced the projection"
            )
        transfers.append(
            TransferProvenance(
                array=transfer.array,
                direction=transfer.direction.short,
                bytes=transfer.bytes,
                seconds=seconds,
                alpha_seconds=alpha,
                beta_seconds=beta_part,
                conservative=transfer.conservative,
            )
        )
    return ProjectionProvenance(
        program=projection.program,
        kernel_seconds=projection.kernel_seconds,
        transfer_seconds=projection.transfer_seconds,
        setup_seconds=projection.setup_seconds,
        total_seconds=projection.total_seconds(1),
        kernels=tuple(kernels),
        transfers=tuple(transfers),
    )
