"""Shadow auditing: re-score a sample of surrogate answers exactly.

The surrogate's calibrated confidence gate was fit offline; nothing in
serving verifies it stays honest as the query mix drifts.  The
:class:`ShadowAuditor` closes that loop without touching the hot path:

- :meth:`consider` is called after every **accepted** surrogate answer
  (the :class:`~repro.surrogate.engine.SurrogateEngine` hook).  It is
  two integer ops on the non-sampled path; every ``1/rate``-th answer
  is copied onto a bounded queue (full queue → drop and count, never
  block serving).
- A background thread replays sampled requests through the **exact**
  engine and compares: per-kernel winning-mapping agreement (top-1) and
  the absolute log-total drift between the surrogate's predicted time
  and the exact projection.
- Verdicts land three places: counters on the shared
  :class:`~repro.service.metrics.ServiceMetrics`
  (``obs_surrogate_audits`` / ``obs_surrogate_audit_disagreements``),
  optional ``audit`` events on the daemon's event log, and a rolling
  agreement window that drives :meth:`healthy` — the daemon's
  ``/v1/status`` health field flips to ``degraded`` when live agreement
  drops below ``min_agreement``.

Sampling is deterministic (a counter, not a PRNG): every Nth accepted
answer is audited, so tests and replays see the same sample.
"""

from __future__ import annotations

import math
import queue
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.obs.events import EventLog
    from repro.service.engine import ProjectionEngine, ProjectionRequest
    from repro.service.metrics import ServiceMetrics
    from repro.surrogate.engine import SurrogateResponse

#: Sentinel telling the audit thread to exit.
_STOP = object()


class ShadowAuditor:
    """Samples accepted surrogate answers and re-scores them exactly."""

    def __init__(
        self,
        exact: "ProjectionEngine",
        rate: float = 0.01,
        min_agreement: float = 0.9,
        min_samples: int = 5,
        window: int = 256,
        max_pending: int = 64,
        metrics: "ServiceMetrics | None" = None,
        events: "EventLog | None" = None,
    ) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if not 0.0 < min_agreement <= 1.0:
            raise ValueError(
                f"min_agreement must be in (0, 1], got {min_agreement}"
            )
        self._exact = exact
        self.rate = rate
        self.min_agreement = min_agreement
        #: Health stays "ok" until at least this many audits landed —
        #: one early disagreement should not page anyone.
        self.min_samples = max(1, min_samples)
        #: Every Nth accepted answer is sampled.
        self._every = max(1, round(1.0 / rate))
        self._metrics = metrics if metrics is not None else exact.metrics
        self._events = events
        self._lock = threading.Lock()
        self._considered = 0
        self._dropped = 0
        self._audits = 0
        self._disagreements = 0
        self._drift_sum = 0.0
        #: Rolling (agreed, abs log drift) verdicts driving health.
        self._window: list[bool] = []
        self._window_size = max(1, window)
        self._pending: queue.Queue = queue.Queue(maxsize=max(1, max_pending))
        self._thread: threading.Thread | None = None

    # Lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Start the background audit thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._worker, name="repro-shadow-audit", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain the pending queue and join the audit thread."""
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        self._pending.put(_STOP)
        thread.join(timeout)

    # Hot-path hook --------------------------------------------------------
    def consider(
        self, request: "ProjectionRequest", response: "SurrogateResponse"
    ) -> bool:
        """Maybe sample one accepted answer; returns True when sampled.

        Cheap by construction: a counter increment and a modulo on the
        common path, one non-blocking enqueue on the sampled path.
        """
        with self._lock:
            self._considered += 1
            sampled = self._considered % self._every == 0
        if not sampled:
            return False
        try:
            self._pending.put_nowait((request, response))
        except queue.Full:
            with self._lock:
                self._dropped += 1
            self._metrics.incr("obs_audit_dropped")
            return False
        return True

    # Audit work -----------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._pending.get()
            if item is _STOP:
                return
            request, response = item
            try:
                self._audit_one(request, response)
            except Exception:  # noqa: BLE001 - audits never kill serving
                self._metrics.incr("obs_audit_errors")

    def _audit_one(
        self, request: "ProjectionRequest", response: "SurrogateResponse"
    ) -> None:
        exact = self._exact.project(request)
        surrogate_labels = dict(response.estimate.mappings)
        exact_labels = {
            kernel.name: kernel.best_mapping
            for kernel in exact.summary.kernels
        }
        agreed = surrogate_labels == exact_labels
        drift = abs(
            math.log(max(response.total_seconds, 1e-30))
            - math.log(max(exact.total_seconds, 1e-30))
        )
        with self._lock:
            self._audits += 1
            self._drift_sum += drift
            if not agreed:
                self._disagreements += 1
            self._window.append(agreed)
            if len(self._window) > self._window_size:
                del self._window[0]
        self._metrics.incr("obs_surrogate_audits")
        if not agreed:
            self._metrics.incr("obs_surrogate_audit_disagreements")
        if self._events is not None:
            self._events.emit(
                "audit",
                job_id=str(response.request_id or ""),
                agreed=agreed,
                abs_log_drift=drift,
                confidence=response.confidence,
            )

    # Views ----------------------------------------------------------------
    def agreement(self) -> float | None:
        """Rolling top-1 agreement over the verdict window."""
        with self._lock:
            if not self._window:
                return None
            return sum(self._window) / len(self._window)

    def healthy(self) -> bool:
        """False once enough audits landed and agreement fell below bar."""
        with self._lock:
            if self._audits < self.min_samples or not self._window:
                return True
            agreement = sum(self._window) / len(self._window)
        return agreement >= self.min_agreement

    def pending(self) -> int:
        return self._pending.qsize()

    def snapshot(self) -> dict[str, Any]:
        """The audit block of ``/v1/slo`` and ``/v1/status``."""
        with self._lock:
            audits = self._audits
            snapshot: dict[str, Any] = {
                "rate": self.rate,
                "min_agreement": self.min_agreement,
                "considered": self._considered,
                "audits": audits,
                "disagreements": self._disagreements,
                "dropped": self._dropped,
                "pending": self._pending.qsize(),
                "agreement": (
                    sum(self._window) / len(self._window)
                    if self._window
                    else None
                ),
                "mean_abs_log_drift": (
                    self._drift_sum / audits if audits else None
                ),
            }
        snapshot["healthy"] = self.healthy()
        return snapshot
