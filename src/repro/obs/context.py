"""Request-scoped trace context, propagated across process boundaries.

A :class:`TraceContext` is the tiny record a client attaches to a
daemon submission — a stable ``trace_id`` plus the client's own
submission wall-clock — that lets spans recorded in *different places*
(the client's process, the daemon's HTTP front end, the worker thread
that eventually runs the job) stitch into one Chrome/Perfetto trace.

The stitching trick: in-process spans
(:class:`~repro.obs.trace.Tracer`) are timed against a
``perf_counter`` epoch whose wall-clock instant the tracer records
(``Tracer.wall_epoch``), while cross-process lifecycle edges (client
submit, queue dwell) exist only as wall-clock job timestamps.
:func:`build_job_trace` rebases both onto absolute unix microseconds,
synthesizing ``client-submit`` and ``queue-dwell`` spans from the job
record and tagging every event with the ``trace_id``, so the exported
document reads as one nested timeline:

    client-submit → queue-dwell → job → project → search → ...

Everything here is stdlib-only and allocation-light; nothing runs
unless a job asked to be traced.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Any

from repro.obs.trace import CHROME_EVENT_KEYS, Tracer

#: Category given to the synthesized cross-process lifecycle spans.
LIFECYCLE_CATEGORY = "lifecycle"

#: The synthetic tid lifecycle spans render under (a dedicated lane
#: above the worker-thread lanes in Chrome/Perfetto).
LIFECYCLE_TID = 0


def new_trace_id() -> str:
    """A globally unique, URL-safe trace id."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """What a client propagates with a request to join its trace."""

    trace_id: str
    #: The client's wall clock at submission (unix seconds); lets the
    #: daemon synthesize the client-submit span even though the two
    #: processes never shared a perf_counter epoch.
    client_submitted: float | None = None

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"trace_id": self.trace_id}
        if self.client_submitted is not None:
            record["client_submitted"] = self.client_submitted
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "TraceContext":
        submitted = record.get("client_submitted")
        return cls(
            trace_id=str(record["trace_id"]),
            client_submitted=(
                float(submitted) if submitted is not None else None
            ),
        )


def lifecycle_event(
    name: str,
    start_wall: float,
    end_wall: float,
    trace_id: str,
    pid: int,
    **args: Any,
) -> dict[str, Any]:
    """One synthetic complete event over a wall-clock interval."""
    return {
        "name": name,
        "cat": LIFECYCLE_CATEGORY,
        "ph": "X",
        "ts": start_wall * 1e6,
        "dur": max(0.0, end_wall - start_wall) * 1e6,
        "pid": pid,
        "tid": LIFECYCLE_TID,
        "args": {"trace_id": trace_id, **args},
    }


def build_job_trace(
    *,
    trace_id: str,
    job_id: str,
    tracer: Tracer,
    pid: int,
    submitted: float,
    started: float | None = None,
    finished: float | None = None,
    client_submitted: float | None = None,
) -> dict[str, Any]:
    """Assemble one job's Chrome trace document.

    Combines the worker-side spans the job's scoped tracer recorded
    (rebased from perf_counter-relative to absolute wall microseconds
    via ``tracer.wall_epoch``) with synthetic lifecycle spans derived
    from the job record's wall-clock timestamps:

    - ``client-submit``: the client's submission instant to the
      daemon's accept (only when the client sent its clock);
    - ``queue-dwell``: daemon accept to worker claim.

    Every event's ``args`` carries the ``trace_id``, so multi-job trace
    files concatenate without ambiguity.
    """
    events: list[dict[str, Any]] = []
    if client_submitted is not None:
        events.append(
            lifecycle_event(
                "client-submit",
                client_submitted,
                submitted,
                trace_id,
                pid,
                job=job_id,
            )
        )
    if started is not None:
        events.append(
            lifecycle_event(
                "queue-dwell", submitted, started, trace_id, pid,
                job=job_id,
            )
        )
    epoch_us = tracer.wall_epoch * 1e6
    for span in tracer.spans():
        event = span.to_chrome_event(pid)
        event["ts"] += epoch_us
        event["args"]["trace_id"] = trace_id
        events.append(event)
    events.sort(key=lambda event: event["ts"])
    document: dict[str, Any] = {
        "displayTimeUnit": "ms",
        "trace_id": trace_id,
        "job_id": job_id,
        "traceEvents": events,
    }
    if finished is not None:
        document["finished"] = finished
    return document


def validate_chrome_trace(document: dict[str, Any]) -> int:
    """Sanity-check a trace document; returns its event count.

    Raises ``ValueError`` on a malformed document — used by tests and
    the CI ``obs-e2e`` job so "the endpoint returned JSON" never passes
    for "the endpoint returned a loadable trace".
    """
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace document has no traceEvents")
    trace_id = document.get("trace_id")
    for event in events:
        for key in CHROME_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event}")
        if event["ph"] != "X":
            raise ValueError(f"unexpected phase {event['ph']!r}")
        if trace_id and event.get("args", {}).get("trace_id") != trace_id:
            raise ValueError(
                f"event trace_id mismatch in {event['name']!r}"
            )
    return len(events)
