"""Hierarchical trace spans for the projection stack.

A :class:`Tracer` records *spans* — named, timed regions of the pipeline
(``project`` → per-kernel ``search`` → ``score`` batches →
``transfer-planning`` → ``integrate``) — with parent/child nesting per
thread, so a single traced projection explains where its wall time went.
Everything is standard library only and thread-safe: worker threads from
the service pool record concurrently into the same tracer, each on its
own lane.

Tracing is **ambient and off by default**: instrumentation points call
the module-level :func:`span` function, which is a shared no-op context
manager until a tracer is installed with :func:`install` (or the
:func:`tracing` context manager).  The disabled path costs one global
read and one identity check per instrumentation point, which is what
keeps the overhead bound in
``benchmarks/bench_explorer_throughput.py`` comfortably under 2%.

On top of the process-wide ambient tracer there is a **thread-scoped**
layer (:func:`scoped_tracing`) for concurrent per-request tracing: the
daemon's workers each install a per-job tracer on their own thread, so
four jobs running at once record four disjoint traces with no
cross-request span leakage.  The scope check is guarded by a global
counter (``_scopes_active``) so the fully-disabled path stays the same
two instructions; threads only pay the thread-local lookup while at
least one scope exists anywhere in the process.

Exports:

- :meth:`Tracer.to_jsonl` / :meth:`Tracer.write_jsonl` — one JSON object
  per span, for log pipelines;
- :meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome_trace` — the
  Chrome ``trace_event`` JSON object format (complete ``"X"`` events
  with ``name``/``cat``/``ph``/``ts``/``dur``/``pid``/``tid``),
  loadable in ``chrome://tracing`` and Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Chrome trace_event keys every exported event carries; the CI step and
#: ``tests/obs/test_trace.py`` validate emitted traces against this.
CHROME_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


@dataclass(frozen=True)
class TraceSpan:
    """One finished region: what ran, when, for how long, under what."""

    span_id: int
    parent_id: int | None
    name: str
    category: str
    #: Seconds since the tracer's epoch (its construction instant).
    start: float
    duration: float
    thread_id: int
    thread_name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record (the JSONL export's row)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "attrs": dict(self.attrs),
        }

    def to_chrome_event(self, pid: int) -> dict[str, Any]:
        """Complete-event (``ph: "X"``) form; times in microseconds."""
        args = dict(self.attrs)
        args["span_id"] = self.span_id
        if self.parent_id is not None:
            args["parent_id"] = self.parent_id
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start * 1e6,
            "dur": self.duration * 1e6,
            "pid": pid,
            "tid": self.thread_id,
            "args": args,
        }


class _SpanHandle:
    """The object a ``with span(...)`` block receives.

    ``set(key=value)`` attaches attributes discovered mid-span (e.g. the
    pruned-row count, or whether a request hit the cache); they land in
    the finished span's ``attrs``.
    """

    __slots__ = ("attrs",)

    def __init__(self, attrs: dict[str, Any]) -> None:
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """Shared, reusable no-op span: the cost of tracing when disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe recorder of hierarchical spans.

    Nesting is tracked per thread: a span opened while another is open
    on the same thread records it as its parent.  Spans on pool workers
    start their own per-thread lanes (Chrome/Perfetto renders one track
    per ``tid``), so a parallel exploration reads as parallel.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[TraceSpan] = []
        self._stack = threading.local()
        self._next_id = 0
        self._epoch = time.perf_counter()
        #: Wall-clock instant of the perf_counter epoch: span ``start``
        #: values are relative to it, so ``wall_epoch + span.start`` is
        #: the span's absolute unix time.  Used to stitch in-process
        #: spans together with cross-process lifecycle timestamps (the
        #: daemon's client-submit / queue-dwell synthetic spans).
        self.wall_epoch = time.time()

    # Recording -----------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, category: str = "projection", **attrs: Any
    ) -> Iterator[_SpanHandle]:
        """Record one region; yields a handle for mid-span attributes."""
        stack = getattr(self._stack, "frames", None)
        if stack is None:
            stack = []
            self._stack.frames = stack
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        handle = _SpanHandle(dict(attrs))
        start = time.perf_counter() - self._epoch
        try:
            yield handle
        finally:
            duration = time.perf_counter() - self._epoch - start
            stack.pop()
            thread = threading.current_thread()
            record = TraceSpan(
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                category=category,
                start=start,
                duration=duration,
                thread_id=thread.ident or 0,
                thread_name=thread.name,
                attrs=handle.attrs,
            )
            with self._lock:
                self._spans.append(record)

    # Views ---------------------------------------------------------------
    def spans(self) -> tuple[TraceSpan, ...]:
        """Every finished span, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    # Exports -------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per span, newline-delimited."""
        return "\n".join(
            json.dumps(s.to_dict(), sort_keys=True) for s in self.spans()
        )

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "", encoding="utf-8")
        return path

    def chrome_trace(self) -> dict[str, Any]:
        """The Chrome ``trace_event`` JSON object form of the trace."""
        pid = os.getpid()
        return {
            "displayTimeUnit": "ms",
            "traceEvents": [s.to_chrome_event(pid) for s in self.spans()],
        }

    def write_chrome_trace(self, path: str | Path) -> Path:
        path = Path(path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)
        return path

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"tracer: {len(self)} span(s)"


# The ambient tracer ------------------------------------------------------
_active: Tracer | None = None

# The thread-scoped layer: a per-thread tracer that takes precedence
# over the ambient one.  ``_scopes_active`` counts live scopes across
# the whole process so the common no-scope case never touches the
# thread-local (one extra global read on the disabled path).
_scope = threading.local()
_scopes_active = 0
_scope_lock = threading.Lock()


def current() -> Tracer | None:
    """The effective tracer for this thread, or None when disabled.

    A thread-scoped tracer (:func:`scoped_tracing`) wins over the
    process-wide ambient one.
    """
    if _scopes_active:
        scoped = getattr(_scope, "tracer", None)
        if scoped is not None:
            return scoped
    return _active


def scope_active() -> bool:
    """True when any thread in the process holds a scoped tracer."""
    return bool(_scopes_active)


def install(tracer: Tracer) -> None:
    """Install ``tracer`` as the process-wide ambient tracer."""
    global _active
    _active = tracer


def uninstall() -> None:
    """Disable tracing (instrumentation reverts to the no-op span)."""
    global _active
    _active = None


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a block; yields it.

    The previously installed tracer (usually None) is restored on exit,
    so nested or test-scoped tracing never leaks.
    """
    # Not ``tracer or Tracer()``: an empty Tracer is falsy (__len__ == 0)
    # and the caller's tracer would be silently swapped for a fresh one.
    if tracer is None:
        tracer = Tracer()
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


@contextmanager
def scoped_tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for this thread only, for the block's duration.

    Unlike :func:`tracing` (process-wide), a scoped tracer is visible
    solely to spans opened on the installing thread — the daemon's
    workers each trace their own job concurrently without leaking spans
    into each other's traces.  Scopes nest: the previous thread-scoped
    tracer (usually None) is restored on exit.
    """
    global _scopes_active
    if tracer is None:
        tracer = Tracer()
    previous = getattr(_scope, "tracer", None)
    _scope.tracer = tracer
    with _scope_lock:
        _scopes_active += 1
    try:
        yield tracer
    finally:
        with _scope_lock:
            _scopes_active -= 1
        _scope.tracer = previous


def span(name: str, category: str = "projection", **attrs: Any):
    """Record a span on the effective tracer — a shared no-op without one.

    This is the function the pipeline's instrumentation points call; the
    disabled cost is two global reads, one comparison, and the kwargs
    dict the caller built.  The thread-local scope is consulted only
    while at least one :func:`scoped_tracing` block is live anywhere in
    the process, and a thread's scoped tracer wins over the ambient one.
    """
    if _scopes_active:
        # Not ``scoped or _active``: a tracer with no spans yet is falsy
        # (``__len__`` == 0) and would be silently skipped.
        scoped = getattr(_scope, "tracer", None)
        tracer = scoped if scoped is not None else _active
    else:
        tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)
