"""The daemon's structured event log: a ring in memory, JSONL on disk.

Every job lifecycle transition — and the interesting in-flight moments
(checkpoints, rate-limit rejections, surrogate accept/fallback
decisions, shadow-audit verdicts) — lands here as one typed
:class:`Event`.  Two sinks, one emit:

- a bounded in-memory ring (``capacity`` most recent events) that
  ``GET /v1/events`` and ``repro daemon tail`` read with
  monotonically-increasing sequence numbers, so a follower polls with
  ``after=<last seq>`` and never re-reads or misses an event the ring
  still holds;
- an append-only JSONL file that size-rotates in place
  (``events.jsonl`` → ``events.jsonl.1`` → … up to ``rotations``
  files), for post-mortems that outlive the ring.

Emission is cheap (one dict, one JSON line, no fsync — this is
observability, not the journal of record) and thread-safe; the
scheduler's per-job overhead is a handful of microseconds, far inside
the daemon's ≤10% overhead gate.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

#: The typed lifecycle vocabulary.  ``emit`` rejects anything else so a
#: typo'd event type fails loudly in tests instead of silently skewing
#: dashboards.
EVENT_TYPES = (
    "submit",
    "dequeue",
    "start",
    "checkpoint",
    "requeue",
    "complete",
    "fail",
    "cancel",
    "rate_limit",
    "surrogate_accept",
    "surrogate_fallback",
    "audit",
)


@dataclass(frozen=True)
class Event:
    """One structured daemon event."""

    seq: int
    at: float  # wall clock, unix seconds
    type: str
    job_id: str = ""
    trace_id: str = ""
    client: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON form (the JSONL row and the ``/v1/events`` item)."""
        record: dict[str, Any] = {
            "seq": self.seq,
            "at": self.at,
            "type": self.type,
        }
        if self.job_id:
            record["job_id"] = self.job_id
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.client:
            record["client"] = self.client
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Event":
        return cls(
            seq=int(record["seq"]),
            at=float(record["at"]),
            type=str(record["type"]),
            job_id=str(record.get("job_id", "")),
            trace_id=str(record.get("trace_id", "")),
            client=str(record.get("client", "")),
            attrs=dict(record.get("attrs", {})),
        )


class EventLog:
    """Thread-safe bounded ring + size-rotated JSONL sink."""

    def __init__(
        self,
        path: str | Path | None = None,
        capacity: int = 1024,
        max_bytes: int = 1_000_000,
        rotations: int = 3,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes < 1024:
            raise ValueError(f"max_bytes must be >= 1024, got {max_bytes}")
        self._path = Path(path) if path is not None else None
        self._max_bytes = max_bytes
        self._rotations = max(1, rotations)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._bytes = 0
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if self._path.exists():
                self._bytes = self._path.stat().st_size

    @property
    def path(self) -> Path | None:
        return self._path

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # Emission -------------------------------------------------------------
    def emit(
        self,
        type: str,  # noqa: A002 - the natural field name
        job_id: str = "",
        trace_id: str = "",
        client: str = "",
        **attrs: Any,
    ) -> Event:
        """Record one event in the ring and (when configured) on disk."""
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; know {EVENT_TYPES}"
            )
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq,
                at=self._clock(),
                type=type,
                job_id=job_id,
                trace_id=trace_id,
                client=client,
                attrs=attrs,
            )
            self._ring.append(event)
            if self._path is not None:
                self._write(event)
        return event

    def _write(self, event: Event) -> None:
        """Append one JSONL line; rotate first when the file is full."""
        if self._bytes >= self._max_bytes:
            self._rotate()
        line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
        with open(self._path, "a", encoding="utf-8") as fh:
            fh.write(line)
        self._bytes += len(line.encode("utf-8"))

    def _rotate(self) -> None:
        """Shift ``events.jsonl`` → ``.1`` → … , dropping the oldest."""
        oldest = self._path.with_name(
            f"{self._path.name}.{self._rotations}"
        )
        oldest.unlink(missing_ok=True)
        for index in range(self._rotations - 1, 0, -1):
            source = self._path.with_name(f"{self._path.name}.{index}")
            if source.exists():
                source.rename(
                    self._path.with_name(f"{self._path.name}.{index + 1}")
                )
        if self._path.exists():
            self._path.rename(
                self._path.with_name(f"{self._path.name}.1")
            )
        self._bytes = 0

    # Reading --------------------------------------------------------------
    def tail(
        self,
        limit: int = 50,
        after: int = 0,
        types: Iterable[str] | None = None,
    ) -> list[Event]:
        """The most recent ``limit`` ring events with ``seq > after``.

        ``types`` optionally filters to a subset of the vocabulary.
        Results come back oldest-first, so a follower appends them and
        passes the last seq back as the next ``after``.
        """
        wanted = None if types is None else set(types)
        with self._lock:
            matched = [
                event
                for event in self._ring
                if event.seq > after
                and (wanted is None or event.type in wanted)
            ]
        return matched[-max(0, limit):] if limit else matched

    def counts(self) -> dict[str, int]:
        """Ring events per type (present types only)."""
        with self._lock:
            totals: dict[str, int] = {}
            for event in self._ring:
                totals[event.type] = totals.get(event.type, 0) + 1
        return totals
