"""repro.obs — observability for the projection stack.

Three concerns, one package (tour in ``docs/OBSERVABILITY.md``):

- **tracing** (:mod:`repro.obs.trace`): hierarchical spans over the
  pipeline (``project`` → per-kernel ``search`` → ``score`` →
  ``transfer-planning`` → ``integrate``), exportable as JSONL or Chrome
  ``trace_event`` JSON for ``chrome://tracing``/Perfetto.  Ambient and
  zero-cost-when-off; ``python -m repro trace <skeleton>`` is the CLI
  face.
- **provenance** (:mod:`repro.obs.provenance`): a per-projection record
  of *why* the result is what it is — winning mapping and regime per
  kernel, runner-up gap, search accounting, per-array ``α + β·d``
  transfer split — with exact component-sum invariants, attached to
  :class:`~repro.core.serialize.ProjectionSummary` on request.
- **metrics** (:mod:`repro.obs.metrics`, :mod:`repro.obs.prometheus`):
  latency histograms (p50/p95/p99) behind
  :class:`~repro.service.metrics.ServiceMetrics`, with Prometheus text
  exposition via ``python -m repro metrics --prometheus``.

The v2 layer adds daemon-wide, request-scoped observability:

- **context** (:mod:`repro.obs.context`): trace ids propagated from
  client to worker, with :func:`~repro.obs.context.build_job_trace`
  stitching client-submit / queue-dwell lifecycle spans and the
  worker's scoped spans into one Chrome trace per job;
- **events** (:mod:`repro.obs.events`): typed lifecycle events in a
  bounded ring + size-rotated JSONL (``repro daemon tail``);
- **slo** (:mod:`repro.obs.slo`): rolling-window latency/error burn
  rates (``/v1/slo``, ``/metrics`` gauges);
- **audit** (:mod:`repro.obs.audit`): shadow re-scoring of accepted
  surrogate answers through the exact engine, driving the daemon
  health field.
"""

from repro.obs.audit import ShadowAuditor
from repro.obs.context import (
    TraceContext,
    build_job_trace,
    new_trace_id,
    validate_chrome_trace,
)
from repro.obs.events import EVENT_TYPES, Event, EventLog
from repro.obs.metrics import DEFAULT_QUANTILES, Histogram, nearest_rank
from repro.obs.slo import SLOConfig, SLOMonitor
from repro.obs.prometheus import (
    metric_name,
    parse_exposition,
    render_snapshot,
)
from repro.obs.provenance import (
    KernelProvenance,
    ProjectionProvenance,
    TransferProvenance,
    build_provenance,
)
from repro.obs.trace import (
    CHROME_EVENT_KEYS,
    TraceSpan,
    Tracer,
    current,
    install,
    scope_active,
    scoped_tracing,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "CHROME_EVENT_KEYS",
    "DEFAULT_QUANTILES",
    "EVENT_TYPES",
    "Event",
    "EventLog",
    "Histogram",
    "KernelProvenance",
    "ProjectionProvenance",
    "SLOConfig",
    "SLOMonitor",
    "ShadowAuditor",
    "TraceContext",
    "TraceSpan",
    "Tracer",
    "TransferProvenance",
    "build_job_trace",
    "build_provenance",
    "current",
    "install",
    "metric_name",
    "nearest_rank",
    "new_trace_id",
    "parse_exposition",
    "render_snapshot",
    "scope_active",
    "scoped_tracing",
    "span",
    "tracing",
    "uninstall",
    "validate_chrome_trace",
]
