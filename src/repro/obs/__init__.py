"""repro.obs — observability for the projection stack.

Three concerns, one package (tour in ``docs/OBSERVABILITY.md``):

- **tracing** (:mod:`repro.obs.trace`): hierarchical spans over the
  pipeline (``project`` → per-kernel ``search`` → ``score`` →
  ``transfer-planning`` → ``integrate``), exportable as JSONL or Chrome
  ``trace_event`` JSON for ``chrome://tracing``/Perfetto.  Ambient and
  zero-cost-when-off; ``python -m repro trace <skeleton>`` is the CLI
  face.
- **provenance** (:mod:`repro.obs.provenance`): a per-projection record
  of *why* the result is what it is — winning mapping and regime per
  kernel, runner-up gap, search accounting, per-array ``α + β·d``
  transfer split — with exact component-sum invariants, attached to
  :class:`~repro.core.serialize.ProjectionSummary` on request.
- **metrics** (:mod:`repro.obs.metrics`, :mod:`repro.obs.prometheus`):
  latency histograms (p50/p95/p99) behind
  :class:`~repro.service.metrics.ServiceMetrics`, with Prometheus text
  exposition via ``python -m repro metrics --prometheus``.
"""

from repro.obs.metrics import DEFAULT_QUANTILES, Histogram, nearest_rank
from repro.obs.prometheus import (
    metric_name,
    parse_exposition,
    render_snapshot,
)
from repro.obs.provenance import (
    KernelProvenance,
    ProjectionProvenance,
    TransferProvenance,
    build_provenance,
)
from repro.obs.trace import (
    CHROME_EVENT_KEYS,
    TraceSpan,
    Tracer,
    current,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "CHROME_EVENT_KEYS",
    "DEFAULT_QUANTILES",
    "Histogram",
    "KernelProvenance",
    "ProjectionProvenance",
    "TraceSpan",
    "Tracer",
    "TransferProvenance",
    "build_provenance",
    "current",
    "install",
    "metric_name",
    "nearest_rank",
    "parse_exposition",
    "render_snapshot",
    "span",
    "tracing",
    "uninstall",
]
