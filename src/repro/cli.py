"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list`` — workloads and their datasets;
- ``calibrate`` — run the 2-point bus calibration and print the models;
- ``project <workload>`` — full GROPHECY++ projection for one dataset;
- ``project-file <path>`` — project a skeleton written in the text
  format (see :mod:`repro.skeleton.parser`, examples in
  ``examples/skeletons/``);
- ``advise <workload>`` — pinned/pageable memory recommendation;
- ``experiment <id>`` — regenerate one paper artifact (table1, table2,
  fig2..fig12), optionally as markdown/CSV or an ASCII chart;
- ``sweep <workload>`` — parameter sweep along ``--axis size``,
  ``iterations``, or ``bus`` through the parametric sweep engine
  (``docs/SWEEP.md``); ``--check`` cross-checks every point against the
  per-point pipeline; ``--arch ID``/``--arch all`` scores one dataset
  across the architecture registry on paired PCIe buses
  (``docs/ARCHITECTURES.md``);
- ``arch list|show <id>`` — the architecture registry: named GPU
  generations with per-arch tables, paired PCIe defaults, and content
  fingerprints;
- ``artifacts <outdir>`` — regenerate everything into a directory;
- ``batch <requests.jsonl>`` — project many requests through the
  cached, parallel :mod:`repro.service` engine (JSONL in, JSONL out);
- ``cache-stats`` — inspect an on-disk projection cache directory,
  including accumulated hit rates from past batch runs;
- ``trace <skeleton>`` — run one traced projection and write the span
  tree as Chrome ``trace_event`` JSON (load in Perfetto / chrome://
  tracing) or JSONL, plus the prediction's provenance record;
- ``metrics`` — exercise the service engine on one workload and print
  its metrics snapshot (JSON, or ``--prometheus`` text exposition);
- ``version`` (also ``--version``) — package and protocol version;
- ``daemon start|status|submit|result|cancel`` — the always-on
  projection daemon: persistent job queue, checkpoint/resume for
  sweeps, rate limiting (``docs/DAEMON.md``).

See ``docs/OBSERVABILITY.md`` for the tracing/provenance/metrics tour.

Everything runs against the virtual Argonne testbed (seeded, so output is
reproducible); ``--seed`` selects a different lab day.

Errors a user can cause (unknown workload or dataset, a missing or
unparsable skeleton file) print a one-line ``error: ...`` to stderr and
exit with status 2; tracebacks are reserved for actual bugs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core.advisor import MemoryKindAdvisor
from repro.datausage.transfers import Direction
from repro.harness import figures
from repro.harness.apps import (
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
    run_table1_measured,
)
from repro.harness.context import ExperimentContext
from repro.harness.export import export
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.util.units import MiB, seconds_to_human
from repro.version import package_version
from repro.workloads.registry import all_workloads, get_workload

EXPERIMENTS = (
    "compare",
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GROPHECY++: GPU performance projection with data-transfer "
            "modeling (IPDPS'13 reproduction)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=2013,
        help="virtual-testbed seed (default: 2013)",
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and datasets")

    sub.add_parser("calibrate", help="run the 2-point bus calibration")

    p = sub.add_parser("project", help="project one workload/dataset")
    p.add_argument("workload", help="CFD | HotSpot | SRAD | Stassuij | VectorAdd")
    p.add_argument("--dataset", default=None, help="dataset label (default: largest)")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument(
        "--allocation", action="store_true",
        help="charge one-time memory-allocation overhead",
    )
    p.add_argument(
        "--reference-explorer", action="store_true",
        help="force the scalar reference explorer instead of the fast "
        "path (identical results; see docs/EXPLORER.md)",
    )
    p.add_argument(
        "--stream-explorer", action="store_true",
        help="use the fused streaming explorer (argmin-only scoring; "
        "same best mappings, see docs/EXPLORER.md)",
    )
    p.add_argument(
        "--surrogate", default=None, metavar="MODEL",
        help="serve through a trained surrogate model (.npz) with a "
        "confidence-gated exact fallback (see docs/SURROGATE.md)",
    )

    p = sub.add_parser(
        "project-file",
        help="project a skeleton written in the text format "
        "(see repro.skeleton.parser)",
    )
    p.add_argument("path", help="skeleton file")
    p.add_argument(
        "--cpu-ms", type=float, default=None,
        help="measured CPU time per iteration in ms (for a speedup verdict)",
    )
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument(
        "--reference-explorer", action="store_true",
        help="force the scalar reference explorer instead of the fast path",
    )
    p.add_argument(
        "--stream-explorer", action="store_true",
        help="use the fused streaming explorer (argmin-only scoring)",
    )

    p = sub.add_parser("advise", help="pinned vs pageable recommendation")
    p.add_argument("workload")
    p.add_argument("--dataset", default=None)
    p.add_argument("--reuses", type=int, default=1)

    p = sub.add_parser(
        "artifacts",
        help="regenerate EVERY table/figure into a directory "
        "(text + markdown + CSV + ASCII charts + summary)",
    )
    p.add_argument("outdir", help="output directory (created if missing)")
    p.add_argument("--no-charts", action="store_true")

    p = sub.add_parser("experiment", help="regenerate one paper artifact")
    p.add_argument("id", choices=EXPERIMENTS)
    p.add_argument(
        "--format", choices=("text", "markdown", "csv"), default="text"
    )
    p.add_argument(
        "--chart", action="store_true",
        help="render as an ASCII chart instead of a table (figures only)",
    )

    p = sub.add_parser(
        "sweep",
        help="parameter sweep through the parametric sweep engine "
        "(analyze once, evaluate every point; see docs/SWEEP.md)",
    )
    p.add_argument("workload", help="CFD | HotSpot | SRAD | Stassuij | VectorAdd")
    p.add_argument(
        "--axis", choices=("size", "iterations", "bus"), default="size",
        help="sweep axis: data size (default), iteration count, or "
        "PCIe bus generation",
    )
    p.add_argument(
        "--dataset", default=None,
        help="dataset label for the iterations/bus axes (default: largest)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="cross-check every sweep point against the per-point "
        "pipeline (raises on any mismatch)",
    )
    p.add_argument(
        "--argmin", action="store_true",
        help="find only the best point of the size axis, pruning whole "
        "tiles whose provable lower bound exceeds the incumbent",
    )
    p.add_argument(
        "--tile", type=int, default=4,
        help="points per pruning tile for --argmin (default: 4)",
    )
    p.add_argument(
        "--arch", action="append", default=None, metavar="ID",
        help="architecture axis: a registry id (repeatable) or 'all'; "
        "scores one dataset across the fleet, each architecture on its "
        "paired PCIe-generation bus (`repro arch list` shows ids)",
    )

    p = sub.add_parser(
        "arch",
        help="the architecture registry: named GPU generations with "
        "per-arch tables and paired PCIe defaults "
        "(see docs/ARCHITECTURES.md)",
    )
    asub = p.add_subparsers(dest="arch_command", required=True)
    asub.add_parser(
        "list", help="list the registered architecture generations"
    )
    ap = asub.add_parser(
        "show", help="full parameter tables for one architecture"
    )
    ap.add_argument("arch_id", help="registry id (see `repro arch list`)")

    p = sub.add_parser(
        "batch",
        help="project a JSONL file of requests through the service "
        "engine (cached + parallel; see docs/SERVICE.md)",
    )
    p.add_argument("requests", help="requests file, one JSON object per line")
    p.add_argument(
        "-o", "--output", default=None,
        help="results file (default: <requests>.results.jsonl)",
    )
    p.add_argument(
        "--jobs", type=int, default=4,
        help="worker threads (default: 4)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-request timeout in seconds",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="on-disk cache directory "
        "(default: .repro-cache next to the requests file)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="disable result caching for this run",
    )
    p.add_argument(
        "--reference-explorer", action="store_true",
        help="force the scalar reference explorer instead of the fast path",
    )
    p.add_argument(
        "--stream-explorer", action="store_true",
        help="use the fused streaming explorer (argmin-only scoring)",
    )
    p.add_argument(
        "--prune", action="store_true",
        help="enable bound-based pruning on the fast path "
        "(same best mappings; losing candidates are skipped early)",
    )
    p.add_argument(
        "--surrogate", default=None, metavar="MODEL",
        help="serve the batch through a trained surrogate model (.npz) "
        "with a confidence-gated exact fallback",
    )
    p.add_argument(
        "--serving-mode", choices=("auto", "surrogate", "exact"),
        default="auto",
        help="surrogate serving mode for --surrogate (default: auto)",
    )

    p = sub.add_parser(
        "surrogate",
        help="learned microsecond projections with an exact fallback "
        "(see docs/SURROGATE.md)",
    )
    ssub = p.add_subparsers(dest="surrogate_command", required=True)

    sp = ssub.add_parser(
        "train",
        help="label a size grid through the streaming scorer, fit the "
        "ridge+exemplar model, calibrate, and save",
    )
    sp.add_argument(
        "-o", "--output", default="surrogate.npz",
        help="model artifact path (default: surrogate.npz)",
    )
    sp.add_argument(
        "--sizes-per-kernel", type=int, default=24,
        help="grid points per kernel (default: 24)",
    )
    sp.add_argument(
        "--target-accuracy", type=float, default=0.93,
        help="calibration accuracy target for the accept threshold "
        "(default: 0.93)",
    )
    sp.add_argument(
        "--holdout-fraction", type=float, default=0.25,
        help="rows held out of training for the printed evaluation "
        "(default: 0.25)",
    )
    sp.add_argument(
        "--split-seed", type=int, default=7,
        help="holdout split seed (default: 7)",
    )

    sp = ssub.add_parser(
        "eval",
        help="evaluate a trained model on a freshly labeled grid",
    )
    sp.add_argument("model", help="model artifact (.npz)")
    sp.add_argument(
        "--sizes-per-kernel", type=int, default=29,
        help="grid density for evaluation — pick one different from "
        "training so the sizes fall off the training grid (default: 29)",
    )

    sp = ssub.add_parser(
        "project",
        help="serve one workload/dataset through the gated surrogate",
    )
    sp.add_argument("model", help="model artifact (.npz)")
    sp.add_argument("workload", help="registry workload name")
    sp.add_argument("--dataset", default=None)
    sp.add_argument("--iterations", type=int, default=1)
    sp.add_argument(
        "--mode", choices=("auto", "surrogate", "exact"), default="auto",
        help="serving mode (default: auto — confidence-gated)",
    )

    p = sub.add_parser(
        "cache-stats", help="inspect an on-disk projection cache"
    )
    p.add_argument(
        "cache_dir", nargs="?", default=".repro-cache",
        help="cache directory (default: .repro-cache)",
    )

    p = sub.add_parser(
        "trace",
        help="project a skeleton file with tracing on and write the "
        "span tree (Chrome trace_event JSON, Perfetto-loadable)",
    )
    p.add_argument("path", help="skeleton file")
    p.add_argument(
        "-o", "--output", default=None,
        help="trace file (default: <skeleton>.trace.json)",
    )
    p.add_argument(
        "--jsonl", action="store_true",
        help="write one span per line (JSONL) instead of Chrome JSON",
    )
    p.add_argument(
        "--no-provenance", action="store_true",
        help="skip the prediction-provenance report",
    )

    p = sub.add_parser(
        "metrics",
        help="run one workload through the service engine and print "
        "its metrics (counters + stage latency percentiles)",
    )
    p.add_argument(
        "--workload", default="VectorAdd",
        help="workload to exercise (default: VectorAdd)",
    )
    p.add_argument(
        "--prometheus", action="store_true",
        help="print Prometheus text exposition instead of JSON",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the JSON snapshot explicitly (the default; "
        "mutually exclusive with --prometheus)",
    )

    sub.add_parser("version", help="print package and protocol version")

    p = sub.add_parser(
        "daemon",
        help="the always-on projection daemon (see docs/DAEMON.md)",
    )
    dsub = p.add_subparsers(dest="daemon_command", required=True)

    def _endpoint_args(dp) -> None:
        dp.add_argument(
            "--state-dir", default=".repro-daemon",
            help="daemon state directory (default: .repro-daemon)",
        )
        dp.add_argument(
            "--url", default=None,
            help="daemon URL (default: read <state-dir>/daemon.json)",
        )

    dp = dsub.add_parser(
        "start", help="run the daemon in the foreground until SIGTERM"
    )
    dp.add_argument(
        "--state-dir", default=".repro-daemon",
        help="journal/results/checkpoints directory "
        "(default: .repro-daemon)",
    )
    dp.add_argument("--host", default="127.0.0.1")
    dp.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: 0 = pick a free one)",
    )
    dp.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing jobs (default: 2)",
    )
    dp.add_argument(
        "--rate", type=float, default=None,
        help="per-client rate limit in jobs/second (default: off)",
    )
    dp.add_argument(
        "--burst", type=float, default=10.0,
        help="rate-limit burst size (default: 10)",
    )
    dp.add_argument(
        "--max-client-running", type=int, default=2,
        help="max concurrently running jobs per client (default: 2)",
    )
    dp.add_argument(
        "--drain-deadline", type=float, default=10.0,
        help="seconds to wait for in-flight jobs on shutdown "
        "(default: 10)",
    )
    dp.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk projection cache",
    )
    dp.add_argument(
        "--surrogate-model", default=None, metavar="MODEL",
        help="serve projection jobs through this trained surrogate "
        "model (.npz); jobs pick auto/surrogate/exact via the payload's "
        "'mode' field",
    )
    dp.add_argument(
        "--audit-rate", type=float, default=0.01,
        help="fraction of accepted surrogate answers to shadow-audit "
        "through the exact engine (default: 0.01; 0 disables)",
    )
    dp.add_argument(
        "--audit-min-agreement", type=float, default=0.9,
        help="top-1 agreement below which /v1/status flips to "
        "'degraded' (default: 0.9)",
    )

    dp = dsub.add_parser(
        "status", help="daemon health + human-readable job table"
    )
    _endpoint_args(dp)
    dp.add_argument(
        "--json", action="store_true",
        help="print the /v1/status body (plus jobs) as JSON",
    )

    dp = dsub.add_parser("submit", help="submit one job")
    _endpoint_args(dp)
    dp.add_argument(
        "--kind", choices=("projection", "batch", "sweep"),
        default="projection",
    )
    dp.add_argument(
        "--client", default=None,
        help="client name for rate limiting / fairness",
    )
    dp.add_argument(
        "--payload", default=None,
        help="payload file: JSON object, or JSONL request lines for "
        "--kind batch ('-' reads stdin)",
    )
    dp.add_argument(
        "--workload", default=None,
        help="build the payload from a registry workload instead",
    )
    dp.add_argument(
        "--dataset", action="append", default=None,
        help="dataset label (repeatable for --kind sweep)",
    )
    dp.add_argument(
        "--arch", action="append", default=None, metavar="ID",
        help="registry architecture id; repeatable (or 'all') for "
        "--kind sweep to cross an architecture axis with the datasets",
    )
    dp.add_argument(
        "--mode", choices=("auto", "surrogate", "exact"), default=None,
        help="serving mode for --kind projection on a daemon started "
        "with --surrogate-model",
    )
    dp.add_argument(
        "--trace", action="store_true",
        help="record worker-side spans for this job so `daemon trace` "
        "can fetch one stitched Chrome trace later",
    )
    dp.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    dp.add_argument(
        "--timeout", type=float, default=300.0,
        help="--wait timeout in seconds (default: 300)",
    )

    dp = dsub.add_parser("result", help="fetch a finished job's result")
    _endpoint_args(dp)
    dp.add_argument("job_id")
    dp.add_argument(
        "-o", "--output", default=None,
        help="also write the full result document to this JSON file",
    )
    dp.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    dp.add_argument(
        "--timeout", type=float, default=300.0,
        help="--wait timeout in seconds (default: 300)",
    )

    dp = dsub.add_parser("cancel", help="cancel a queued or running job")
    _endpoint_args(dp)
    dp.add_argument("job_id")

    dp = dsub.add_parser(
        "trace",
        help="fetch a traced job's stitched Chrome trace document",
    )
    _endpoint_args(dp)
    dp.add_argument("job_id")
    dp.add_argument(
        "-o", "--output", default=None,
        help="write the trace JSON here instead of stdout "
        "(open it in chrome://tracing or Perfetto)",
    )

    dp = dsub.add_parser(
        "tail", help="show the daemon's structured event log"
    )
    _endpoint_args(dp)
    dp.add_argument(
        "-n", "--lines", type=int, default=20,
        help="events to show initially (default: 20)",
    )
    dp.add_argument(
        "--follow", action="store_true",
        help="keep polling for new events until interrupted",
    )
    dp.add_argument(
        "--json", action="store_true",
        help="print one JSON object per event instead of text",
    )
    dp.add_argument(
        "--poll", type=float, default=1.0,
        help="--follow poll interval in seconds (default: 1)",
    )
    return parser


def _pick_dataset(workload, label):
    if label is None:
        return max(workload.datasets(), key=lambda d: d.size)
    return workload.dataset(label)


def _cmd_list(args, out: Callable[[str], None]) -> int:
    for workload in all_workloads():
        datasets = ", ".join(d.label for d in workload.datasets())
        out(f"{workload.name}: {workload.description}")
        out(f"  datasets: {datasets}")
    return 0


def _cmd_calibrate(args, out) -> int:
    ctx = ExperimentContext(seed=args.seed)
    out("2-point PCIe calibration (1B and 512MB, 10 runs each):")
    out(f"  host->device: {ctx.bus_model.h2d}")
    out(f"  device->host: {ctx.bus_model.d2h}")
    return 0


def _explorer_choice(args) -> str:
    """Resolve the explorer flags (mutually exclusive) to a path name."""
    if getattr(args, "reference_explorer", False) and getattr(
        args, "stream_explorer", False
    ):
        raise ValueError(
            "--reference-explorer and --stream-explorer are "
            "mutually exclusive"
        )
    if getattr(args, "reference_explorer", False):
        return "reference"
    if getattr(args, "stream_explorer", False):
        return "stream"
    return "fast"


def _surrogate_serving(model_path, seed):
    """(SurrogateEngine, exact ProjectionEngine) for a saved model."""
    from repro.gpu.arch import quadro_fx_5600
    from repro.service.engine import ProjectionEngine
    from repro.surrogate import SurrogateEngine, load_model

    ctx = ExperimentContext(seed=seed)
    engine = ProjectionEngine(
        arch=quadro_fx_5600(), bus=ctx.bus_model, explorer="stream"
    )
    model = load_model(model_path, engine.arch, engine.space)
    return SurrogateEngine(model, engine), engine


def _print_surrogate_response(resp, out) -> None:
    """Render one SurrogateResponse for project/surrogate-project."""
    serving = resp.provenance
    line = f"  path: {serving.path} ({serving.reason})"
    if serving.confidence is not None:
        line += f", confidence {serving.confidence:.1%}"
    out(line)
    if resp.estimate is not None:
        est = resp.estimate
        out("  kernels: " + ", ".join(
            f"{name}={label}" for name, label in est.mappings
        ))
        out(f"  predicted kernel time/iter: "
            f"{seconds_to_human(est.kernel_seconds)} "
            f"(x/{_band_factor(est.log_band)} conformal band)")
        out(f"  predicted transfer time:    "
            f"{seconds_to_human(est.transfer_seconds)}")
        out(f"  predicted total:            "
            f"{seconds_to_human(resp.total_seconds)} "
            f"for {resp.iterations} iteration(s)")
    else:
        summary = resp.response.summary
        out("  kernels: " + ", ".join(
            f"{k.name}={k.best_mapping}" for k in summary.kernels
        ))
        out(f"  projected kernel time/iter: "
            f"{seconds_to_human(summary.kernel_seconds)}")
        out(f"  projected transfer time:    "
            f"{seconds_to_human(summary.transfer_seconds)}")
        out(f"  projected total:            "
            f"{seconds_to_human(resp.total_seconds)} "
            f"for {resp.iterations} iteration(s)")
    out(f"  served in {seconds_to_human(resp.seconds)}")


def _band_factor(log_band: float) -> str:
    """The conformal band in multiplicative form, e.g. ``1.03``."""
    import math

    return f"{math.exp(log_band):.2f}"


def _serve_one_surrogate(model_path, args, out, mode: str) -> int:
    """Shared by ``project --surrogate`` and ``surrogate project``."""
    from repro.service.engine import ProjectionRequest

    serving, _engine = _surrogate_serving(model_path, args.seed)
    try:
        workload = get_workload(args.workload)
        dataset = _pick_dataset(workload, args.dataset)
        request = ProjectionRequest(
            program=workload.skeleton(dataset),
            hints=workload.hints(dataset),
            iterations=args.iterations,
            request_id=f"{workload.name}/{dataset.label}",
        )
        resp = serving.project(request, mode)
        out(f"{workload.name} / {dataset.label}  "
            f"({args.iterations} iteration(s))")
        _print_surrogate_response(resp, out)
    finally:
        serving.close()
    return 0


def _cmd_project(args, out) -> int:
    if args.surrogate is not None:
        return _serve_one_surrogate(args.surrogate, args, out, "auto")
    explorer = _explorer_choice(args)
    ctx = ExperimentContext(seed=args.seed, explorer=explorer)
    workload = get_workload(args.workload)
    dataset = _pick_dataset(workload, args.dataset)
    if args.allocation:
        from repro.core.projector import GrophecyPlusPlus
        from repro.gpu.arch import quadro_fx_5600
        from repro.pcie.allocation import cuda23_era_allocation_model

        projector = GrophecyPlusPlus(
            quadro_fx_5600(),
            ctx.bus_model,
            allocation=cuda23_era_allocation_model(),
            explorer=explorer,
        )
        projection = projector.project(
            workload.skeleton(dataset), workload.hints(dataset)
        )
    else:
        projection = ctx.projection(workload, dataset)
    measured = ctx.measured(workload, dataset)
    n = args.iterations

    out(f"{workload.name} / {dataset.label}  ({n} iteration(s))")
    out(f"  kernels: "
        + ", ".join(
            f"{k.kernel}={k.best.config.label()}"
            for k in projection.kernels.kernels
        ))
    out(f"  projected kernel time/iter: "
        f"{seconds_to_human(projection.kernel_seconds)}")
    out(f"  projected transfer time:    "
        f"{seconds_to_human(projection.transfer_seconds)} "
        f"({projection.plan.total_bytes / MiB:.1f} MB, "
        f"{projection.plan.transfer_count} transfers)")
    if projection.setup_seconds:
        out(f"  projected allocation time:  "
            f"{seconds_to_human(projection.setup_seconds)}")
    out(f"  projected total:            "
        f"{seconds_to_human(projection.total_seconds(n))}")
    out(f"  measured CPU time/iter:     "
        f"{seconds_to_human(measured.cpu_seconds)}")
    speedup = projection.speedup(measured.cpu_seconds, n)
    kernel_only = projection.speedup(
        measured.cpu_seconds, n, include_transfer=False
    )
    out(f"  projected speedup:          {speedup:.2f}x "
        f"(kernel-only would claim {kernel_only:.2f}x)")
    verdict = "worth porting" if speedup > 1 else "NOT worth porting"
    out(f"  verdict at {n} iteration(s): {verdict}")
    return 0


def _cmd_project_file(args, out) -> int:
    from repro.skeleton.parser import parse_skeleton_file

    explorer = _explorer_choice(args)
    ctx = ExperimentContext(seed=args.seed, explorer=explorer)
    program = parse_skeleton_file(args.path)
    projection = ctx.projector.project(program)
    n = args.iterations
    out(f"{program.name}  ({len(program.kernels)} kernel(s), "
        f"{len(program.arrays)} array(s))")
    for kp in projection.kernels.kernels:
        out(f"  {kp.kernel}: best {kp.best.config.label()} -> "
            f"{seconds_to_human(kp.seconds)} "
            f"({kp.best.breakdown.regime})")
    out(f"  transfer: {seconds_to_human(projection.transfer_seconds)} "
        f"({projection.plan.total_bytes / MiB:.2f} MB, "
        f"{projection.plan.transfer_count} transfers)")
    out(f"  total for {n} iteration(s): "
        f"{seconds_to_human(projection.total_seconds(n))}")
    if args.cpu_ms is not None:
        cpu = args.cpu_ms * 1e-3
        speedup = projection.speedup(cpu, n)
        out(f"  projected speedup vs your CPU time: {speedup:.2f}x "
            f"({'worth porting' if speedup > 1 else 'NOT worth porting'})")
    return 0


def _cmd_advise(args, out) -> int:
    ctx = ExperimentContext(seed=args.seed)
    workload = get_workload(args.workload)
    dataset = _pick_dataset(workload, args.dataset)
    plan = ctx.projection(workload, dataset).plan
    advice = MemoryKindAdvisor(ctx.testbed.bus).advise(plan, args.reuses)
    out(str(advice))
    out(f"  pinned:   setup {seconds_to_human(advice.pinned_setup_seconds)}"
        f" + {seconds_to_human(advice.pinned_transfer_seconds)}/use")
    out(f"  pageable: setup "
        f"{seconds_to_human(advice.pageable_setup_seconds)}"
        f" + {seconds_to_human(advice.pageable_transfer_seconds)}/use")
    if advice.breakeven_reuses is not None:
        out(f"  pinned pays off from {advice.breakeven_reuses} reuse(s)")
    return 0


def _cmd_artifacts(args, out) -> int:
    from repro.harness.artifacts import write_all_artifacts

    ctx = ExperimentContext(seed=args.seed)
    paths = write_all_artifacts(
        ctx, args.outdir, charts=not args.no_charts
    )
    out(f"wrote {len(paths)} artifacts to {args.outdir}")
    out(f"summary: {paths[-1]}")
    return 0


def _cmd_experiment(args, out) -> int:
    ctx = ExperimentContext(seed=args.seed)
    exp = args.id
    if exp == "compare":
        from repro.harness.comparison import compare_with_paper

        result = compare_with_paper(ctx)
        if args.format == "text":
            out(result.render())
            return 0
    elif exp == "table1":
        result = run_table1_measured(ctx)
    elif exp == "table2":
        result = run_table2_speedup_error(ctx)
    elif exp == "fig2":
        result = run_fig2_transfer_times(ctx, Direction.H2D)
        if args.chart:
            out(figures.fig2_chart(result))
            return 0
    elif exp == "fig3":
        result = run_fig3_pinned_speedup(ctx)
        if args.chart:
            out(figures.fig3_chart(result))
            return 0
    elif exp == "fig4":
        result = run_fig4_model_error(ctx)
        if args.chart:
            out(figures.fig4_chart(result))
            return 0
    elif exp == "fig5":
        result = run_fig5_transfer_scatter(ctx)
        if args.chart:
            out(figures.fig5_chart(result))
            return 0
    elif exp == "fig6":
        result = run_fig6_error_scatter(ctx)
        if args.chart:
            out(figures.fig6_chart(result))
            return 0
    elif exp in ("fig7", "fig9", "fig11"):
        name = {"fig7": "CFD", "fig9": "HotSpot", "fig11": "SRAD"}[exp]
        result = run_speedup_vs_size(ctx, get_workload(name))
        if args.chart:
            out(figures.speedup_vs_size_chart(result))
            return 0
    else:  # fig8 / fig10 / fig12
        name = {"fig8": "CFD", "fig10": "HotSpot", "fig12": "SRAD"}[exp]
        result = run_speedup_vs_iterations(ctx, get_workload(name))
        if args.chart:
            out(figures.speedup_vs_iterations_chart(result))
            return 0
    if args.chart:
        out(f"note: no chart form for {exp}; printing the table")
    out(export(result, args.format))
    return 0


def _cmd_arch(args, out) -> int:
    from repro.gpu.registry import all_specs, get_spec

    if args.arch_command == "list":
        out(
            "architecture registry, chronological "
            "(see docs/ARCHITECTURES.md):"
        )
        for spec in all_specs():
            tag = "calibrated" if spec.calibrated else "nominal"
            out(
                f"  {spec.id}: {spec.display_name} — {spec.generation}, "
                f"CC {spec.compute_capability}, {spec.year}, "
                f"{spec.geometry.num_sms} SMs @ "
                f"{spec.geometry.clock_ghz}GHz, "
                f"{spec.memory.sustained_bandwidth / 1e9:.0f}GB/s "
                f"sustained, PCIe gen {spec.pcie_gen} [{tag}]"
            )
        return 0
    # arch_command == "show"
    spec = get_spec(args.arch_id.lower())
    geometry, memory, latencies = spec.geometry, spec.memory, spec.latencies
    out(
        f"{spec.id}: {spec.display_name} ({spec.generation}, {spec.chip}, "
        f"CC {spec.compute_capability}, {spec.year})"
    )
    out(
        "  calibration: "
        + (
            "published measurements (paper testbed / ISCA'09 Table 3)"
            if spec.calibrated
            else "nominal datasheet figures — what-if trends only"
        )
    )
    out(f"  paired bus: PCIe gen {spec.pcie_gen}")
    out(
        f"  geometry: {geometry.num_sms} SMs @ {geometry.clock_ghz}GHz, "
        f"warp {geometry.warp_size}, per SM "
        f"{geometry.max_threads_per_sm} threads / "
        f"{geometry.max_warps_per_sm} warps / "
        f"{geometry.max_blocks_per_sm} blocks, "
        f"{geometry.registers_per_sm} registers, "
        f"{geometry.shared_mem_per_sm // 1024}KiB shared"
    )
    out(
        f"  memory: {memory.dram}, "
        f"{memory.sustained_bandwidth / 1e9:.1f}GB/s sustained of "
        f"{memory.theoretical_bandwidth / 1e9:.1f} theoretical, "
        f"latency {memory.mem_latency_cycles:.0f} cycles, L2 "
        + (
            f"{memory.l2_bytes // 1024}KiB"
            if memory.l2_bytes
            else "none (texture-only caching)"
        )
        + f", coalescing {'strict' if memory.strict_coalescing else 'relaxed'}"
    )
    out(
        f"  latencies: issue {latencies.issue_cycles:g}, departure "
        f"{latencies.departure_del_coal:g} coal / "
        f"{latencies.departure_del_uncoal:g} uncoal, sync "
        f"{latencies.sync_cycles:g} cycles"
    )
    if spec.notes:
        out(f"  notes: {spec.notes}")
    out(f"  fingerprint: {spec.fingerprint()}")
    return 0


def _sweep_arch_axis(args, ctx, workload, engine, out) -> int:
    from repro.gpu.registry import arch_ids, get_spec

    if args.axis != "size":
        raise ValueError(
            "--arch is its own sweep axis; drop --axis"
        )
    requested: list[str] = []
    for item in args.arch:
        if item.lower() == "all":
            requested.extend(arch_ids())
        else:
            requested.append(item.lower())
    seen: set[str] = set()
    ids = [a for a in requested if not (a in seen or seen.add(a))]
    dataset = _pick_dataset(workload, args.dataset)
    program = workload.skeleton(dataset)
    hints = workload.hints(dataset)
    cpu = ctx.measured(workload, dataset).cpu_seconds

    if args.argmin:
        best = engine.argmin_arches(program, ids, hints=hints, buses="paired")
        spec = get_spec(best.point.arch_id)
        out(
            f"{workload.name} / {dataset.label}: best of "
            f"{len(ids)} architecture(s)"
        )
        out(
            f"  best: {spec.id} ({spec.display_name}, PCIe gen "
            f"{spec.pcie_gen}) -> {seconds_to_human(best.seconds)}  ->  "
            f"{best.point.projection.speedup(cpu, 1):.2f}x"
        )
        return 0

    points = engine.sweep_arches(
        program, ids, hints=hints, buses="paired", check=args.check
    )
    header = (
        f"{workload.name} / {dataset.label}: what-if across "
        f"{len(points)} architecture(s), paired PCIe buses"
    )
    if args.check:
        header += "  [every point checked against the per-arch pipeline]"
    out(header)
    best_index = min(range(len(points)), key=lambda i: points[i].seconds)
    worth_marked = False
    for index, point in enumerate(points):
        spec = get_spec(point.arch_id)
        speedup = point.projection.speedup(cpu, 1)
        marks = []
        if speedup > 1.0 and not worth_marked:
            worth_marked = True
            marks.append("first worth porting")
        if index == best_index:
            marks.append("best")
        suffix = f"  [{', '.join(marks)}]" if marks else ""
        out(
            f"  {point.arch_id} (PCIe gen {spec.pcie_gen}): kernel "
            f"{seconds_to_human(point.projection.kernel_seconds)} + "
            f"transfer "
            f"{seconds_to_human(point.projection.transfer_seconds)} = "
            f"{seconds_to_human(point.seconds)}  ->  {speedup:.2f}x{suffix}"
        )
    stats = engine.stats
    out(
        f"  served: 1 transfer plan re-priced per architecture, kernel "
        f"grids shared across {stats['groups_shared']}/"
        f"{stats['coalescing_groups']} coalescing group(s)"
    )
    return 0


def _cmd_sweep(args, out) -> int:
    from repro.pcie.presets import bus_for_generation

    ctx = ExperimentContext(seed=args.seed)
    workload = get_workload(args.workload)
    engine = ctx.sweep_engine

    if args.arch:
        return _sweep_arch_axis(args, ctx, workload, engine, out)

    if args.argmin:
        if args.axis != "size":
            raise ValueError("--argmin only applies to --axis size")
        datasets = list(workload.datasets())
        result = engine.argmin_workload(workload, tile=args.tile)
        stats = result.stats
        out(
            f"{workload.name}: best of {stats['points']} size point(s) "
            f"(tile {args.tile})"
        )
        out(
            f"  best: {datasets[result.index].label} -> "
            f"{seconds_to_human(result.seconds)}"
        )
        out(
            f"  pruning: {stats['points_evaluated']} point(s) evaluated, "
            f"{stats['points_pruned']} pruned "
            f"({stats['tiles_pruned']}/{stats['tiles']} tile(s))"
        )
        return 0

    if args.axis == "size":
        datasets = list(workload.datasets())
        projections = engine.sweep_workload(workload, check=args.check)
        header = f"{workload.name}: size sweep, {len(datasets)} point(s)"
        if args.check:
            header += "  [every point checked against the per-point pipeline]"
        out(header)
        for dataset, projection in zip(datasets, projections):
            cpu = ctx.measured(workload, dataset).cpu_seconds
            speedup = projection.speedup(cpu, 1)
            out(
                f"  {dataset.label}: kernel "
                f"{seconds_to_human(projection.kernel_seconds)}"
                f" + transfer "
                f"{seconds_to_human(projection.transfer_seconds)}"
                f" = {seconds_to_human(projection.total_seconds(1))}"
                f"  ->  {speedup:.2f}x"
            )
        stats = engine.stats
        out(
            f"  served: kernel structure "
            f"{'shared across the sweep' if stats['kernels_shared'] else 'computed per point'}, "
            f"{stats['plans_from_template']} plan(s) from template, "
            f"{stats['plans_exact']} exact"
        )
        return 0

    if args.axis == "iterations":
        dataset = (
            workload.dataset(args.dataset)
            if args.dataset is not None
            else None
        )
        result = run_speedup_vs_iterations(ctx, workload, dataset=dataset)
        out(result.render())
        return 0

    # axis == "bus": re-price one dataset's fixed transfer plan.
    dataset = _pick_dataset(workload, args.dataset)
    projection = ctx.projection(workload, dataset)
    cpu = ctx.measured(workload, dataset).cpu_seconds
    generations = (1, 2, 3)
    points = engine.sweep_buses(
        projection.plan, [bus_for_generation(g) for g in generations]
    )
    out(
        f"{workload.name} / {dataset.label}: what-if across PCIe "
        f"generations (fixed transfer plan, "
        f"{projection.plan.transfer_count} transfers)"
    )
    for generation, point in zip(generations, points):
        total = projection.kernel_seconds + point.transfer_seconds
        out(
            f"  PCIe gen {generation}: transfer "
            f"{seconds_to_human(point.transfer_seconds)}, total "
            f"{seconds_to_human(total)}  ->  {cpu / total:.2f}x"
        )
    return 0


def _cmd_batch(args, out) -> int:
    from pathlib import Path

    from repro.gpu.arch import quadro_fx_5600
    from repro.service.cache import ProjectionCache
    from repro.service.engine import ProjectionEngine
    from repro.service.jobs import run_batch

    requests_path = Path(args.requests)
    if not requests_path.is_file():
        raise FileNotFoundError(f"no such requests file: {requests_path}")
    ctx = ExperimentContext(seed=args.seed)
    cache = None
    if not args.no_cache:
        cache_dir = (
            Path(args.cache_dir)
            if args.cache_dir is not None
            else requests_path.resolve().parent / ".repro-cache"
        )
        cache = ProjectionCache(disk_dir=cache_dir)
    engine = ProjectionEngine(
        arch=quadro_fx_5600(),
        bus=ctx.bus_model,
        cache=cache,
        max_workers=max(1, args.jobs),
        explorer=_explorer_choice(args),
        prune=args.prune,
    )
    batch_engine = engine
    if args.surrogate is not None:
        from repro.surrogate import SurrogateEngine, load_model
        from repro.surrogate.engine import SurrogateBatchAdapter

        model = load_model(args.surrogate, engine.arch, engine.space)
        batch_engine = SurrogateBatchAdapter(
            SurrogateEngine(model, engine), mode=args.serving_mode
        )
    result = run_batch(
        requests_path,
        output_path=args.output,
        engine=batch_engine,
        max_workers=max(1, args.jobs),
        timeout=args.timeout,
    )
    out(result.report())
    out(engine.metrics.report())
    if cache is not None:
        from repro.service.cache import record_run_meta

        stats = cache.stats()
        kernel_stats = (
            engine.kernel_cache.stats()
            if engine.kernel_cache is not None
            else None
        )
        out(
            f"cache: {stats['hits']} hit(s), {stats['misses']} miss(es)"
            f"{_rate_suffix(stats['hit_rate'])}, "
            f"{stats['disk']['entries']} entr(ies) on disk at "
            f"{stats['disk']['path']}"
        )
        if kernel_stats is not None:
            out(
                f"kernel cache: {kernel_stats['hits']} hit(s), "
                f"{kernel_stats['misses']} miss(es)"
                f"{_rate_suffix(kernel_stats['hit_rate'])}"
            )
        record_run_meta(cache.disk_dir, stats, kernel_stats)
    return 0


def _rate_suffix(rate: float | None) -> str:
    """`` (NN.N% hit rate)`` or empty when nothing was looked up."""
    if rate is None:
        return ""
    return f" ({rate:.1%} hit rate)"


def _format_metric(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _cmd_surrogate(args, out) -> int:
    from repro.gpu.arch import quadro_fx_5600
    from repro.surrogate import (
        evaluate_model,
        generate_training_set,
        load_model,
        save_model,
        train_surrogate,
    )
    from repro.surrogate.dataset import split_rows
    from repro.transform.space import TransformationSpace

    verb = args.surrogate_command
    arch = quadro_fx_5600()
    space = TransformationSpace.default()

    if verb == "train":
        training = generate_training_set(
            arch, space, sizes_per_kernel=args.sizes_per_kernel
        )
        hold_idx, train_idx = split_rows(
            training.rows, (args.holdout_fraction,), seed=args.split_seed
        )
        model = train_surrogate(
            training.subset(train_idx),
            arch,
            space,
            target_accuracy=args.target_accuracy,
        )
        report = evaluate_model(model, training.subset(hold_idx))
        path = save_model(model, args.output)
        stats = model.stats
        out(f"trained on {stats['fit_rows']} rows "
            f"({stats['kernels']} kernels, {stats['classes']} mapping "
            f"classes), calibrated on {stats['calibration_rows']}")
        out(f"  accept threshold {model.threshold:.4f} "
            f"(target accuracy {model.target_accuracy:.0%})")
        out("  holdout: " + ", ".join(
            f"{key}={_format_metric(report[key])}"
            for key in (
                "acceptance_rate",
                "accepted_top1_agreement",
                "top1_agreement",
                "log_mae",
            )
        ))
        out(f"saved model to {path}")
        return 0

    if verb == "eval":
        model = load_model(args.model, arch, space)
        grid = generate_training_set(
            arch, space, sizes_per_kernel=args.sizes_per_kernel
        )
        report = evaluate_model(model, grid)
        out(f"evaluated {report['rows']} rows "
            f"(grid density {args.sizes_per_kernel}/kernel):")
        for key in (
            "acceptance_rate",
            "accepted_top1_agreement",
            "top1_agreement",
            "accepted_log_mae",
            "log_mae",
            "threshold",
            "conformal_log_band",
        ):
            out(f"  {key}: {_format_metric(report[key])}")
        return 0

    # verb == "project"
    return _serve_one_surrogate(args.model, args, out, args.mode)


def _cmd_cache_stats(args, out) -> int:
    from repro.service.cache import (
        disk_cache_stats,
        hit_rate,
        read_run_meta,
    )
    from repro.util.units import bytes_to_human

    stats = disk_cache_stats(args.cache_dir)
    out(f"projection cache at {stats['path']}:")
    out(
        f"  {stats['entries']} entr(ies), "
        f"{bytes_to_human(stats['total_bytes'])}"
    )
    meta = read_run_meta(args.cache_dir)
    if meta is not None:
        for label, counters in (
            ("projection", meta["projection"]),
            ("kernel", meta["kernel"]),
        ):
            rate = hit_rate(counters["hits"], counters["misses"])
            rendered = "n/a (no lookups)" if rate is None else f"{rate:.1%}"
            out(
                f"  {label} hit rate: {rendered} "
                f"({counters['hits']} hit(s), {counters['misses']} "
                f"miss(es) over {meta['runs']} run(s))"
            )
    if stats["entries"] == 0:
        out("  (run `python -m repro batch <requests.jsonl>` to populate)")
    return 0


def _cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.obs.provenance import build_provenance
    from repro.obs.trace import Tracer, tracing
    from repro.skeleton.parser import parse_skeleton_file

    ctx = ExperimentContext(seed=args.seed)
    program = parse_skeleton_file(args.path)
    tracer = Tracer()
    with tracing(tracer):
        projection = ctx.projector.project(program)
    default_suffix = ".trace.jsonl" if args.jsonl else ".trace.json"
    target = Path(
        args.output
        if args.output is not None
        else Path(args.path).with_suffix(default_suffix)
    )
    if args.jsonl:
        tracer.write_jsonl(target)
    else:
        tracer.write_chrome_trace(target)
    out(f"{program.name}: {len(tracer)} span(s) -> {target}")
    for span in tracer.spans():
        if span.parent_id is None:
            out(
                f"  {span.name}: {seconds_to_human(span.duration)} "
                f"({sum(1 for s in tracer.spans() if s.parent_id == span.span_id)} "
                f"child span(s))"
            )
    if not args.no_provenance:
        out(build_provenance(projection, ctx.bus_model).explain())
    return 0


def _cmd_metrics(args, out) -> int:
    import json

    from repro.gpu.arch import quadro_fx_5600
    from repro.service.cache import ProjectionCache
    from repro.service.engine import ProjectionEngine, ProjectionRequest
    from repro.service.jobs import BadRequestError

    ctx = ExperimentContext(seed=args.seed)
    workload = get_workload(args.workload)
    engine = ProjectionEngine(
        arch=quadro_fx_5600(),
        bus=ctx.bus_model,
        cache=ProjectionCache(),
        provenance=True,
    )
    datasets = list(workload.datasets())
    # Every dataset once, then the first again: the replay exercises the
    # cache-hit path so hit counters and lookup timers are non-trivial.
    for dataset in datasets + datasets[:1]:
        engine.project(
            ProjectionRequest(
                program=workload.skeleton(dataset),
                hints=workload.hints(dataset),
            )
        )
    if args.prometheus and args.json:
        raise BadRequestError(
            "--prometheus and --json are mutually exclusive",
            field="--json",
            hint="pick one output format",
        )
    if args.prometheus:
        out(engine.metrics.to_prometheus())
    else:
        # --json is the explicit spelling of the default: the same
        # snapshot document the daemon embeds in its HTTP bodies.
        out(
            json.dumps(
                engine.metrics.snapshot(), indent=2, sort_keys=True
            )
        )
    return 0


def _cmd_version(args, out) -> int:
    from repro.daemon.protocol import PROTOCOL_VERSION

    out(f"repro {package_version()} (daemon protocol {PROTOCOL_VERSION})")
    return 0


def _daemon_client(args):
    from repro.daemon.client import DaemonClient

    if args.url is not None:
        return DaemonClient(base_url=args.url)
    return DaemonClient(state_dir=args.state_dir)


def _daemon_payload(args) -> dict:
    """Build the job payload from --payload or the workload flags."""
    import json
    from pathlib import Path

    from repro.service.jobs import BadRequestError

    if args.payload is not None:
        text = (
            sys.stdin.read()
            if args.payload == "-"
            else Path(args.payload).read_text(encoding="utf-8")
        )
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            if args.kind != "batch":
                raise BadRequestError(
                    f"{args.payload} is not a JSON object",
                    field="payload",
                    hint="JSONL payloads are for --kind batch",
                ) from None
            data = [
                json.loads(line)
                for line in text.splitlines()
                if line.strip()
            ]
        if args.kind == "batch" and isinstance(data, list):
            return {"requests": data}
        if not isinstance(data, dict):
            raise BadRequestError(
                "payload must be a JSON object",
                field="payload",
                hint="see docs/DAEMON.md for the payload shapes",
            )
        if getattr(args, "mode", None) and args.kind == "projection":
            data.setdefault("mode", args.mode)
        return data
    if args.workload is None:
        raise BadRequestError(
            "need --payload or --workload to build a job",
            field="payload",
            hint="e.g. `daemon submit --workload VectorAdd`",
        )
    payload: dict = {"workload": args.workload}
    arches = getattr(args, "arch", None)
    if args.kind == "sweep":
        if args.dataset:
            payload["datasets"] = args.dataset
        if arches:
            payload["arches"] = (
                "all"
                if any(a.lower() == "all" for a in arches)
                else [a.lower() for a in arches]
            )
        return payload
    if args.kind == "batch":
        raise BadRequestError(
            "batch submissions need --payload",
            field="payload",
            hint="a JSONL requests file, like `python -m repro batch`",
        )
    if args.dataset:
        payload["dataset"] = args.dataset[0]
    if arches:
        payload["arch"] = arches[0].lower()
    if getattr(args, "mode", None):
        payload["mode"] = args.mode
    return payload


def _print_result_body(body: dict, out, output: str | None) -> None:
    """Render a terminal job's result the way ``batch`` reports runs."""
    import json
    from pathlib import Path

    from repro.service.jobs import summary_lines

    out(f"job {body['id']}: {body['state']}")
    error = body.get("error")
    if isinstance(error, dict):
        out(f"  error: {error.get('error', 'unknown failure')}")
        if error.get("field"):
            out(f"  field: {error['field']}")
        if error.get("hint"):
            out(f"  hint:  {error['hint']}")
    result = body.get("result")
    if isinstance(result, dict):
        summary = result.get("summary")
        if isinstance(summary, dict):
            for line in summary_lines(
                summary.get("total", 0),
                summary.get("ok", 0),
                summary.get("errors", 0),
                summary.get("cache_hits", 0),
                summary.get("p95_seconds"),
            ):
                out(line)
        record = result.get("record")
        if isinstance(record, dict) and record.get("ok"):
            out(
                f"  projected total: "
                f"{seconds_to_human(record.get('total_seconds', 0.0))}"
            )
    if output is not None and result is not None:
        target = Path(output)
        target.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        out(f"  result document -> {target}")


def _cmd_daemon(args, out) -> int:
    verb = args.daemon_command
    if verb == "start":
        from repro.daemon.server import run_daemon

        return run_daemon(
            args.state_dir,
            host=args.host,
            port=args.port,
            out=out,
            seed=args.seed,
            workers=args.workers,
            rate=args.rate,
            burst=args.burst,
            max_client_running=args.max_client_running,
            drain_deadline=args.drain_deadline,
            use_cache=not args.no_cache,
            surrogate_model=args.surrogate_model,
            audit_rate=args.audit_rate,
            audit_min_agreement=args.audit_min_agreement,
        )

    client = _daemon_client(args)
    if verb == "status":
        status = client.status()
        if args.json:
            import json

            status["jobs"] = client.jobs()
            out(json.dumps(status, indent=2, sort_keys=True))
            return 0
        limiter = "on" if status["rate_limited"] else "off"
        out(
            f"repro daemon v{status['version']} at {client.base_url} "
            f"(pid {status['pid']}, up {status['uptime_seconds']:.1f}s)"
        )
        out(
            f"  workers {status['workers']}, rate limit {limiter}, "
            f"surrogate {'on' if status.get('surrogate') else 'off'}, "
            f"draining {'yes' if status['draining'] else 'no'}, "
            f"health {status.get('health', 'ok')}, "
            f"state {status['state_dir']}"
        )
        audit = status.get("audit")
        if isinstance(audit, dict):
            agreement = audit.get("agreement")
            out(
                "  shadow audit: "
                f"{audit.get('audits', 0)} audits, "
                f"{audit.get('disagreements', 0)} disagreements, "
                "agreement "
                + (
                    "n/a"
                    if agreement is None
                    else f"{agreement:.3f}"
                )
            )
        counts = status["queue"]
        out(
            "  queue: "
            + ", ".join(f"{counts[s]} {s}" for s in counts)
        )
        jobs = client.jobs()
        if jobs:
            out(f"  {'id':<14}{'kind':<12}{'state':<11}"
                f"{'client':<12}{'wait':>8}{'run':>8}")
            for job in jobs:
                wait = job.get("queue_wait_seconds")
                run = job.get("run_seconds")
                out(
                    f"  {job['id']:<14}{job['kind']:<12}"
                    f"{job['state']:<11}{job['client']:<12}"
                    f"{'' if wait is None else f'{wait:.2f}s':>8}"
                    f"{'' if run is None else f'{run:.2f}s':>8}"
                )
        return 0
    if verb == "submit":
        payload = _daemon_payload(args)
        submitted = client.submit(
            args.kind, payload, client=args.client, trace=args.trace
        )
        traced = " traced" if args.trace else ""
        out(
            f"submitted{traced} {args.kind} job {submitted['id']} "
            f"(position {submitted['position']})"
        )
        if args.wait:
            body = client.wait(submitted["id"], timeout=args.timeout)
            _print_result_body(body, out, None)
            return 0 if body["state"] == "done" else 1
        return 0
    if verb == "result":
        body = (
            client.wait(args.job_id, timeout=args.timeout)
            if args.wait
            else client.result(args.job_id)
        )
        _print_result_body(body, out, args.output)
        return 0 if body["state"] == "done" else 1
    if verb == "trace":
        import json
        from pathlib import Path

        document = client.trace(args.job_id)
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.output is not None:
            target = Path(args.output)
            target.write_text(text + "\n", encoding="utf-8")
            events = document.get("traceEvents", [])
            out(
                f"trace for job {args.job_id} "
                f"({len(events)} events) -> {target}"
            )
        else:
            out(text)
        return 0
    if verb == "tail":
        return _daemon_tail(args, client, out)
    # verb == "cancel"
    job = client.cancel(args.job_id)
    out(f"job {job['id']}: {job['state']}")
    return 0


def _format_event(event: dict) -> str:
    """One human-readable event-log line for ``daemon tail``."""
    import time as _time

    stamp = _time.strftime(
        "%H:%M:%S", _time.localtime(event.get("at", 0.0))
    )
    parts = [stamp, f"{event.get('type', '?'):<18}"]
    if event.get("job_id"):
        parts.append(f"job={event['job_id']}")
    if event.get("client"):
        parts.append(f"client={event['client']}")
    if event.get("trace_id"):
        parts.append(f"trace={event['trace_id'][:12]}")
    for key, value in sorted(event.get("attrs", {}).items()):
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def _daemon_tail(args, client, out) -> int:
    """``daemon tail``: print the event ring, optionally following."""
    import json
    import time as _time

    def render(event: dict) -> None:
        if args.json:
            out(json.dumps(event, sort_keys=True))
        else:
            out(_format_event(event))

    body = client.events(after=0, limit=max(1, args.lines))
    # The ring may hold more than -n events; show only the newest.
    for event in body["events"][-max(1, args.lines):]:
        render(event)
    last_seq = body["last_seq"]
    if not args.follow:
        return 0
    try:
        while True:
            _time.sleep(max(0.05, args.poll))
            body = client.events(after=last_seq, limit=500)
            for event in body["events"]:
                render(event)
            last_seq = max(last_seq, body["last_seq"])
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


_COMMANDS = {
    "list": _cmd_list,
    "calibrate": _cmd_calibrate,
    "project": _cmd_project,
    "project-file": _cmd_project_file,
    "advise": _cmd_advise,
    "artifacts": _cmd_artifacts,
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "arch": _cmd_arch,
    "batch": _cmd_batch,
    "surrogate": _cmd_surrogate,
    "cache-stats": _cmd_cache_stats,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "version": _cmd_version,
    "daemon": _cmd_daemon,
}


def _error_line(exc: Exception) -> str:
    """One line of human-readable cause, no traceback."""
    if isinstance(exc, OSError) and exc.filename:
        reason = exc.strerror or type(exc).__name__
        return f"{reason}: {exc.filename}"
    message = str(exc.args[0]) if exc.args else str(exc)
    return message.splitlines()[0] if message else type(exc).__name__


def main(argv: Sequence[str] | None = None, out=print, err=None) -> int:
    """CLI entry point; returns a process exit code.

    User-caused failures (unknown workload/dataset, missing or
    unparsable skeleton files) are reported as a single ``error: ...``
    line on stderr (or via ``err``) with exit status 2.
    """
    from repro.gpu.registry import UnknownArchitectureError
    from repro.service.jobs import BadRequestError

    if err is None:
        err = lambda s: print(s, file=sys.stderr)  # noqa: E731
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BadRequestError as exc:
        _emit_structured(exc.to_dict(), err)
        return 2
    except UnknownArchitectureError as exc:
        # Same {error, field, hint} contract as a bad batch/daemon
        # record, whichever surface the id came through.
        _emit_structured(
            {"error": str(exc), "field": "arch", "hint": exc.hint}, err
        )
        return 2
    except (KeyError, OSError, ValueError) as exc:
        err(f"error: {_error_line(exc)}")
        return 2
    except Exception as exc:
        # The daemon client's structured rejections carry the same
        # {error, field, hint} body the HTTP API returns.
        body = getattr(exc, "body", None)
        if isinstance(body, dict) and "error" in body:
            _emit_structured(body, err)
            return 2
        raise


def _emit_structured(body: dict, err) -> None:
    """Render a structured {error, field, hint} body on stderr.

    The first line stays ``error: <message>`` — the same contract every
    other CLI failure keeps — with the field and hint indented after.
    """
    err(f"error: {body.get('error', 'request rejected')}")
    if body.get("field"):
        err(f"  field: {body['field']}")
    if body.get("hint"):
        err(f"  hint:  {body['hint']}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
