"""What-if: the paper's conclusions on PCIe generations 2 and 3.

Section II-B quotes ~3/6/12 GB/s effective bandwidth for PCIe 1/2/3.
This experiment re-prices every workload's transfer plan on the newer
buses and asks which of the paper's verdicts change — most interestingly
whether Stassuij's "GPU loses" flips back to a win.
"""

from repro.harness.context import ExperimentContext
from repro.pcie.presets import bus_for_generation
from repro.workloads.registry import paper_workloads

_GENERATIONS = (1, 2, 3)


def _speedups_by_generation(ctx: ExperimentContext):
    """Each plan priced on every bus in one :meth:`sweep_buses` call.

    The transfer set is bus-independent, so the sweep engine re-prices a
    fixed plan per generation without re-exploring or re-analyzing.
    """
    buses = [bus_for_generation(gen) for gen in _GENERATIONS]
    out = {}
    for workload in paper_workloads():
        for dataset in workload.datasets():
            projection = ctx.projection(workload, dataset)
            cpu = ctx.measured(workload, dataset).cpu_seconds
            points = ctx.sweep_engine.sweep_buses(projection.plan, buses)
            row = {
                gen: cpu / (projection.kernel_seconds + p.transfer_seconds)
                for gen, p in zip(_GENERATIONS, points)
            }
            out[f"{workload.name}/{dataset.label}"] = row
    return out


def test_whatif_pcie_generations(benchmark, ctx):
    speedups = benchmark(_speedups_by_generation, ctx)
    for label, row in speedups.items():
        # Faster buses monotonically improve the end-to-end speedup.
        assert row[1] < row[2] < row[3], label
    # Stassuij: a PCIe v1 loser; even gen-3 bandwidth only brings it
    # near break-even — the kernel itself is barely faster than the CPU.
    stassuij = speedups["Stassuij/132 x 2048"]
    assert stassuij[1] < 0.5
    assert stassuij[3] < 1.3
    # The stencils turn decisively worthwhile at gen 3 single-iteration.
    assert speedups["SRAD/4096 x 4096"][3] > 1.5 * speedups[
        "SRAD/4096 x 4096"
    ][1]