"""Fig. 7: CFD speedup across data sizes (measured, pred w/ and w/o transfer)."""

from repro.harness.speedups import run_speedup_vs_size
from repro.workloads import get_workload


def test_fig7_cfd_speedup_vs_size(benchmark, ctx):
    result = benchmark(run_speedup_vs_size, ctx, get_workload("CFD"))
    assert result.labels == ("97K", "193K", "233K")
    for meas, with_t, without_t in zip(
        result.measured,
        result.predicted_with_transfer,
        result.predicted_without_transfer,
    ):
        # Kernel-only overpredicts by several x (paper: >4x).
        assert without_t > 3 * meas
        # Transfer-aware lands close.
        assert abs(with_t / meas - 1) < 0.35
