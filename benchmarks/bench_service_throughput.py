"""Service throughput: cold (explore everything) vs warm (cache hits).

The projection engine's pitch is that a cache hit costs a dictionary
lookup instead of a transformation-space search.  This benchmark serves
the same request set against a cold and a warm cache and asserts the
speedup the docs promise (>= 5x; in practice it is orders of magnitude).
"""

from repro.service.cache import ProjectionCache
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.workloads.registry import paper_workloads


def _requests() -> list[ProjectionRequest]:
    requests = []
    for workload in paper_workloads():
        for dataset in workload.datasets():
            requests.append(
                ProjectionRequest(
                    program=workload.skeleton(dataset),
                    hints=workload.hints(dataset),
                    request_id=f"{workload.name}/{dataset.label}",
                )
            )
    return requests


def _serve(engine: ProjectionEngine, requests) -> float:
    responses = engine.project_batch(requests)
    return sum(r.seconds for r in responses)


def test_cold_throughput(benchmark):
    requests = _requests()

    def cold():
        # A fresh cache every round: every request explores.
        return _serve(ProjectionEngine(cache=ProjectionCache()), requests)

    total = benchmark.pedantic(cold, rounds=3, warmup_rounds=1)
    assert total > 0.0


def test_warm_throughput(benchmark):
    requests = _requests()
    engine = ProjectionEngine(cache=ProjectionCache())
    _serve(engine, requests)  # pre-warm: every key lands in the cache

    total = benchmark.pedantic(
        lambda: _serve(engine, requests), rounds=3, warmup_rounds=1
    )
    assert total > 0.0
    assert engine.metrics.counter("cache_misses") == len(requests)


def test_warm_is_at_least_5x_faster():
    """The acceptance bar from docs/SERVICE.md, measured directly."""
    requests = _requests()
    engine = ProjectionEngine(cache=ProjectionCache())
    cold = _serve(engine, requests)
    warm = _serve(engine, requests)
    assert engine.metrics.counter("cache_hits") == len(requests)
    assert cold / warm >= 5.0
