"""Ablation: how many calibration repetitions does the bus model need?

The paper averages ten runs per calibration point.  This ablation sweeps
the repetition count and measures the resulting model's error against a
noise-free reference: one run is hostage to jitter on the 1-byte
measurement; a handful suffice; beyond ten the returns vanish.
"""

from repro.datausage import Direction
from repro.pcie.calibration import CalibrationConfig, Calibrator
from repro.pcie.channel import MemoryKind
from repro.sim.pcie_sim import SimulatedPcieBus, argonne_pcie_params
from repro.util.rng import RngStream
from repro.util.stats import error_magnitude


def _alpha_error_by_repetitions(trials: int = 30):
    """Mean |alpha error| vs repetitions, over independent calibrations."""
    truth = argonne_pcie_params()[(Direction.H2D, MemoryKind.PINNED)]
    results = {}
    for repetitions in (1, 3, 10, 30):
        errors = []
        for trial in range(trials):
            bus = SimulatedPcieBus(
                rng=RngStream(1000 + trial, "reps", str(repetitions))
            )
            model = Calibrator(
                bus, CalibrationConfig(repetitions=repetitions)
            ).calibrate_direction(Direction.H2D)
            errors.append(error_magnitude(model.alpha, truth.alpha))
        results[repetitions] = sum(errors) / len(errors)
    return results


def test_ablation_calibration_repetitions(benchmark):
    results = benchmark.pedantic(
        _alpha_error_by_repetitions, rounds=1, iterations=1
    )
    # Averaging monotonically helps (allowing small sampling wiggle)...
    assert results[10] < results[1]
    assert results[30] <= results[3] * 1.2
    # ...and the paper's choice of ten already sits near the floor.
    assert results[10] < 0.03
