"""Fig. 4: error magnitude of the linear model per transfer size."""

from repro.datausage import Direction
from repro.harness import paperref
from repro.harness.transfer_sweep import run_fig4_model_error


def test_fig4_model_error(benchmark, ctx):
    result = benchmark(run_fig4_model_error, ctx)
    # Paper: mean 2.0% / 0.8%, max 6.4% / 3.3%, ~0 above 1MB.
    assert result.mean_h2d < 2 * paperref.FIG4_MEAN_ERROR_H2D
    assert result.mean_d2h < 2 * paperref.FIG4_MEAN_ERROR_D2H
    assert result.mean_above(2**20, Direction.H2D) < 0.01
