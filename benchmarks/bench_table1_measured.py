"""Table I: measured kernel/transfer times and transfer sizes."""

import pytest

from repro.harness import paperref
from repro.harness.apps import run_table1_measured
from repro.harness.context import ExperimentContext


def _run_table1():
    # Fresh context: Table I *is* the measurement pass, so time all of it
    # (calibration + 10-run means for every dataset).
    return run_table1_measured(ExperimentContext(seed=2013))


def test_table1_measured(benchmark):
    result = benchmark(_run_table1)
    assert len(result.rows) == 10
    for (app, size), ref in paperref.TABLE1.items():
        row = result.row(app, size)
        assert row.kernel_ms == pytest.approx(ref.kernel_ms, rel=0.10)
        assert row.input_mb == pytest.approx(ref.input_mb, rel=0.10)
