"""Ablation: batching all arrays into one transfer per direction.

The paper assumes each array is transferred separately, noting batching
"may provide a minor performance benefit at the cost of more substantial
program modifications" — this ablation measures exactly how minor.
"""

from repro.harness.context import ExperimentContext
from repro.workloads.registry import paper_workloads


def _batching_savings(ctx: ExperimentContext) -> dict[str, float]:
    savings = {}
    for workload in paper_workloads():
        for dataset in workload.datasets():
            projection = ctx.projection(workload, dataset)
            separate = projection.transfer_seconds
            batched = ctx.bus_model.predict_plan(projection.plan.batched())
            savings[f"{workload.name}/{dataset.label}"] = (
                1.0 - batched / separate
            )
    return savings


def test_ablation_batched_transfers(benchmark, ctx):
    savings = benchmark(_batching_savings, ctx)
    for label, saving in savings.items():
        assert saving >= 0.0, label
        # "Minor": batching saves a few alphas out of milliseconds —
        # under 2% for every megabyte-scale plan.
        if label != "HotSpot/64 x 64":
            assert saving < 0.02, label
    # The exception proves the rule: HotSpot 64x64 moves kilobytes, so
    # per-transfer latency is a fifth of its total and batching matters.
    small = savings["HotSpot/64 x 64"]
    assert small == max(savings.values())
    assert small > 0.10
