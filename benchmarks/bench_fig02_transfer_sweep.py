"""Fig. 2: pinned/pageable transfer-time sweep with the model overlay."""

from repro.datausage import Direction
from repro.harness.transfer_sweep import run_fig2_transfer_times


def test_fig2_h2d_sweep(benchmark, ctx):
    result = benchmark(run_fig2_transfer_times, ctx, Direction.H2D)
    assert len(result.sizes) == 30
    # Pinned beats pageable at the 512MB end (Fig. 2's visual).
    assert result.pinned[-1] < result.pageable[-1]


def test_fig2_d2h_sweep(benchmark, ctx):
    result = benchmark(run_fig2_transfer_times, ctx, Direction.D2H)
    assert result.pinned[-1] < result.pageable[-1]
    # The model overlay tracks the pinned measurements at the large end.
    assert abs(result.predicted_pinned[-1] / result.pinned[-1] - 1) < 0.05
