"""Streaming scorer throughput on large grids: serial fused vs pool.

The explorer benchmark measures the end-to-end service path on the
144-point ``wide()`` grid, where per-call overhead dominates.  This
bench isolates the scoring core on grids big enough to stream in
chunks (thousands of rows from a dense synthetic space), comparing:

- ``fused_argmin`` — the serial one-pass arena scorer;
- ``StreamWorkerPool`` — shared-memory chunks scored by a persistent
  fork pool, returning only per-chunk argmin triples.

Both must return the identical ``(index, seconds, legal)`` triple; the
bench asserts that before timing.  Rates land in the ``stream_core``
section of ``BENCH_explorer.json``.  The pool benchmarks are skipped
where the ``fork`` start method is unavailable.
"""

import multiprocessing
import time

import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.gpu.vectorized import ScoreArena, fused_argmin
from repro.service.parallel import StreamWorkerPool
from repro.transform.analysis import analyze_kernel
from repro.transform.space import TransformationSpace
from repro.workloads.registry import get_workload

fork_available = "fork" in multiprocessing.get_all_start_methods()

#: Dense synthetic grid: 16 blocks x 2 smem x 8 unrolls x 8 coarsenings
#: = 2048 candidate mappings per kernel.
DENSE_SPACE = TransformationSpace(
    block_sizes=tuple(range(32, 544, 32)),
    shared_memory_options=(False, True),
    unroll_factors=(1, 2, 3, 4, 6, 8, 12, 16),
    coarsening_factors=(1, 2, 3, 4, 6, 8, 12, 16),
)


@pytest.fixture(scope="module")
def dense_columns():
    """Column grid of the dense space over a real stencil kernel."""
    workload = get_workload("HotSpot")
    dataset = max(workload.datasets(), key=lambda d: d.size)
    program = workload.skeleton(dataset)
    model = GpuPerformanceModel(quadro_fx_5600())
    analysis = analyze_kernel(
        program.kernels[0], program.array_map, model.arch.strict_coalescing
    )
    columns, _index_map, _errors = analysis.config_columns(
        list(DENSE_SPACE.configs())
    )
    return model, columns


def _best_of(fn, rounds=5):
    fn()  # warm up
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_serial_fused(benchmark, dense_columns):
    model, columns = dense_columns
    arena = ScoreArena()
    benchmark.pedantic(
        lambda: fused_argmin(model, columns, arena),
        rounds=5,
        warmup_rounds=1,
    )


@pytest.mark.skipif(not fork_available, reason="needs the fork start method")
def test_pool_streaming(benchmark, dense_columns):
    model, columns = dense_columns
    pool = StreamWorkerPool(workers=2)
    try:
        pool.score_columns(model, columns)  # fork + attach once, up front
        benchmark.pedantic(
            lambda: pool.score_columns(model, columns),
            rounds=5,
            warmup_rounds=1,
        )
    finally:
        pool.close()


def test_record_core_rates(dense_columns, bench_json):
    """Serial vs pool on the same grid, identical triples, rates to JSON."""
    model, columns = dense_columns
    rows = int(columns["block_size"].shape[0])
    arena = ScoreArena()

    serial_result = fused_argmin(model, columns, arena)
    serial = _best_of(lambda: fused_argmin(model, columns, arena))
    payload = {
        "rows": rows,
        "serial_fused_configs_per_s": rows / serial,
    }
    line = f"\nserial fused: {rows / serial:,.0f} configs/s"

    if fork_available:
        pool = StreamWorkerPool(workers=2)
        try:
            assert pool.score_columns(model, columns) == serial_result
            pooled = _best_of(lambda: pool.score_columns(model, columns))
        finally:
            pool.close()
        payload["pool_configs_per_s"] = rows / pooled
        payload["pool_workers"] = 2
        line += f"   pool(2): {rows / pooled:,.0f} configs/s"

    bench_json("stream_core", payload)
    print(line)
    # The serial fused core alone must clear the headline rate; the
    # pool exists for grids past memory-bandwidth saturation, not for
    # a speedup on this size.
    assert rows / serial >= 450_000
