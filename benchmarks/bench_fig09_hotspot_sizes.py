"""Fig. 9: HotSpot speedup across data sizes."""

from repro.harness.speedups import run_speedup_vs_size
from repro.workloads import get_workload


def test_fig9_hotspot_speedup_vs_size(benchmark, ctx):
    result = benchmark(run_speedup_vs_size, ctx, get_workload("HotSpot"))
    assert len(result.labels) == 3
    # Paper: without transfers the prediction is 2-4x reality; with
    # transfers it lands in the right neighbourhood.
    for meas, with_t, without_t in zip(
        result.measured,
        result.predicted_with_transfer,
        result.predicted_without_transfer,
    ):
        assert without_t > 2 * meas
        assert with_t < without_t
