"""Fig. 11: SRAD speedup across data sizes."""

from repro.harness.speedups import run_speedup_vs_size
from repro.workloads import get_workload


def test_fig11_srad_speedup_vs_size(benchmark, ctx):
    result = benchmark(run_speedup_vs_size, ctx, get_workload("SRAD"))
    assert len(result.labels) == 3
    for meas, with_t in zip(
        result.measured, result.predicted_with_transfer
    ):
        # Paper: transfer-aware SRAD errors are 25% / 9% / 1%.
        assert abs(with_t / meas - 1) < 0.30
