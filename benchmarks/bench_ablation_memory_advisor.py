"""Ablation: the pinned/pageable advisor (the paper's future work, closed).

Prices every workload's transfer plan under both memory kinds including
the one-time allocation premium of pinning, across reuse counts.
"""

from repro.core.advisor import MemoryKindAdvisor
from repro.harness.context import ExperimentContext
from repro.pcie.channel import MemoryKind
from repro.workloads.registry import paper_workloads


def _advise_all(ctx: ExperimentContext):
    advisor = MemoryKindAdvisor(ctx.testbed.bus)
    out = {}
    for workload in paper_workloads():
        for dataset in workload.datasets():
            plan = ctx.projection(workload, dataset).plan
            out[f"{workload.name}/{dataset.label}"] = (
                advisor.advise(plan, reuses=1),
                advisor.advise(plan, reuses=1000),
            )
    return out


def test_ablation_memory_advisor(benchmark, ctx):
    advice = benchmark(_advise_all, ctx)
    # With enough reuse, pinning always wins (bandwidth advantage).
    for label, (once, many) in advice.items():
        assert many.recommended is MemoryKind.PINNED, label
    # One-shot megabyte-scale plans also prefer pinned...
    assert advice["SRAD/4096 x 4096"][0].recommended is MemoryKind.PINNED
    # ...but the kilobyte-scale HotSpot 64x64 cannot amortize the pinning
    # premium in a single use — the nuance the paper left to future work.
    assert (
        advice["HotSpot/64 x 64"][0].recommended is MemoryKind.PAGEABLE
    )
