"""Table II: speedup-prediction error under the three time models.

This is the paper's headline artifact: averaging over applications, the
kernel-only prediction errs by 255%, transfer-only by 68%, and the
combination by 9% — modeling data transfer is what makes the projection
usable.
"""

from repro.harness.speedups import run_table2_speedup_error


def test_table2_speedup_error(benchmark, ctx):
    result = benchmark(run_table2_speedup_error, ctx)
    avg = result.application_average
    assert avg.kernel_only_error > 2.0
    assert avg.both_error < 0.35
    assert avg.kernel_only_error > avg.transfer_only_error > avg.both_error
    # The Stassuij row: both-error within a few percent (paper: 2%).
    assert result.row("Stassuij", "132 x 2048").both_error < 0.10
