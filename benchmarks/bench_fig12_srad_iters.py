"""Fig. 12: SRAD speedup vs iteration count (4096x4096)."""

from repro.harness.speedups import run_speedup_vs_iterations
from repro.workloads import get_workload


def test_fig12_srad_speedup_vs_iterations(benchmark, ctx):
    result = benchmark(
        run_speedup_vs_iterations, ctx, get_workload("SRAD")
    )
    assert result.data_size == "4096 x 4096"
    # Paper: accurate at ALL iteration counts (kernel error 0.7%; ours
    # ~1%), with a very late crossover (paper 228).
    assert result.limit_error < 0.05
    assert result.accuracy_crossover is None or result.accuracy_crossover > 50
