"""Ablation: Stassuij with and without sparse-extent hints.

Without hints the analyzer conservatively transfers the whole allocated
CSR arrays (Section III-B); with nnz hints it transfers the used prefix.
"""

from repro.datausage import analyze_transfers
from repro.harness.context import ExperimentContext
from repro.workloads import Stassuij


def _hint_effect(ctx: ExperimentContext) -> dict[str, float]:
    workload = Stassuij()
    dataset = workload.datasets()[0]
    program = workload.skeleton(dataset)
    hinted = analyze_transfers(program, workload.hints(dataset))
    conservative = analyze_transfers(program)
    return {
        "hinted_bytes": float(hinted.total_bytes),
        "conservative_bytes": float(conservative.total_bytes),
        "hinted_time": ctx.bus_model.predict_plan(hinted),
        "conservative_time": ctx.bus_model.predict_plan(conservative),
    }


def test_ablation_sparse_hints(benchmark, ctx):
    result = benchmark(_hint_effect, ctx)
    # Conservative never transfers less.
    assert result["conservative_bytes"] >= result["hinted_bytes"]
    assert result["conservative_time"] >= result["hinted_time"]
    # For Stassuij the dense complex operands dominate, so the paper's
    # conservative fallback costs little here — the hint machinery matters
    # most when the sparse operand is the big one.
    assert result["conservative_time"] < 1.2 * result["hinted_time"]
