"""Ablation: full transformation search vs a naive fixed mapping.

GROPHECY's value (before any transfer modeling) is searching the mapping
space; this quantifies best-of-space against "just launch 256-thread
blocks" across the paper's kernels.
"""

from repro.core.projector import Grophecy
from repro.gpu.arch import quadro_fx_5600

from repro.transform.space import TransformationSpace


def _search_gains(programs) -> dict[str, float]:
    full = Grophecy(quadro_fx_5600())
    naive = Grophecy(quadro_fx_5600(), TransformationSpace.naive())
    gains = {}
    for name, program in programs.items():
        t_full = full.project_kernels(program).seconds
        t_naive = naive.project_kernels(program).seconds
        gains[name] = t_naive / t_full
    return gains


def test_ablation_transformation_search(benchmark, largest_programs):
    gains = benchmark(_search_gains, largest_programs)
    for name, gain in gains.items():
        assert gain >= 1.0, name  # search can never lose
    # At least one workload must benefit substantially from the search
    # (the stencils, via shared-memory staging).
    assert max(gains.values()) > 1.2
