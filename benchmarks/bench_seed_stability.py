"""Robustness: the headline result across independent testbed seeds.

Each seed is an independent virtual "lab day" (fresh jitter, fresh
bimodal draws).  The paper's conclusion — transfer modeling collapses
the speedup error by an order of magnitude — must hold on every one.
"""

from repro.harness.stability import headline_across_seeds


def test_seed_stability(benchmark):
    result = benchmark.pedantic(
        headline_across_seeds,
        kwargs={"seeds": (2013, 1, 7)},
        rounds=1,
        iterations=1,
    )
    assert result.conclusion_stable
    # The spread across seeds is small: measurement noise, not model
    # instability (10-run means tame the jitter).
    assert result.both.std < 0.05
    assert result.kernel_only.std < 0.5
