"""Ablation: iteration fusion (temporal blocking) for HotSpot.

The paper notes HotSpot's kernel invocations across iterations "can be
fused together"; this extension quantifies the projected benefit of the
trapezoid scheme on the paper's GPU and finds the sweet spot where halo
redundancy and shared-memory pressure eat the traffic savings.
"""

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.transform.fusion import best_fusion, fused_characteristics
from repro.workloads import HotSpot


def _fusion_curve():
    workload = HotSpot()
    program = workload.skeleton(workload.dataset("1024 x 1024"))
    kernel = program.kernels[0]
    model = GpuPerformanceModel(quadro_fx_5600())
    per_iteration = {}
    for t in (1, 2, 4, 8, 16):
        try:
            chars = fused_characteristics(kernel, program.array_map, t)
            per_iteration[t] = model.kernel_time(chars) / t
        except ValueError:
            per_iteration[t] = None  # illegal (shared memory overflow)
    best = best_fusion(kernel, program.array_map, model, max_fusion=16)
    return per_iteration, best


def test_ablation_iteration_fusion(benchmark):
    curve, best = benchmark(_fusion_curve)
    assert curve[1] is not None
    # Fusion pays off relative to one step per launch...
    assert best.fusion > 1
    assert best.seconds_per_iteration < curve[1]
    # ...but not unboundedly: factor 16 overflows shared memory, so the
    # optimum is interior, and it beats every sampled factor.
    assert curve[16] is None
    assert best.fusion < 16
    sampled = [v for v in curve.values() if v is not None]
    assert best.seconds_per_iteration <= min(sampled) + 1e-12
