"""Fig. 6: per-dataset transfer-prediction error vs kernel-prediction error."""

from repro.harness.apps import run_fig6_error_scatter


def test_fig6_error_scatter(benchmark, ctx):
    result = benchmark(run_fig6_error_scatter, ctx)
    assert len(result.points) == 10
    # Transfer predictions are collectively tighter than kernel ones
    # (the paper's reason to trust the new component).
    assert result.mean_transfer_error < result.mean_kernel_error
