"""Sweep-engine throughput: parametric sweep vs point-at-a-time.

The paper's studies are sweeps — speedup vs data size, speedup vs
iteration count, what-if bus generations — so points-projected-per-second
is the sweep engine's hot-path metric.  This benchmark projects a
CFD-style 50-point data-size sweep once through
:class:`~repro.sweep.engine.SweepEngine` and once through the canonical
point-at-a-time :class:`~repro.core.projector.GrophecyPlusPlus` API, on
identical pre-built skeletons, and asserts the acceptance bar from
``docs/SWEEP.md``: the sweep engine is at least 5x faster, with results
verified equal first (dataclass equality over the full projection,
candidate tables included).

Both paths allocate the same large result tables; CPython's
allocation-count GC triggers mid-measurement scans of whichever run
happens to cross the threshold, so the ratio assertion pauses collection
(standard microbenchmark hygiene — pyperf does the same) and re-enables
it afterwards.
"""

import gc
import time

from repro.core.projector import GrophecyPlusPlus
from repro.gpu.arch import tesla_c1060
from repro.pcie.presets import pcie_gen2_bus
from repro.sweep import SweepEngine
from repro.transform.space import TransformationSpace
from repro.workloads.base import Dataset
from repro.workloads.cfd import Cfd

_POINTS = 50


def _sweep_inputs():
    """Pre-built skeletons/hints/sizes for a 50-point CFD size sweep."""
    workload = Cfd()
    datasets = [
        Dataset(str(i), 90_000 + 2_048 * i) for i in range(_POINTS)
    ]
    programs = [workload.skeleton(d) for d in datasets]
    hints = [workload.hints(d) for d in datasets]
    sizes = [d.size for d in datasets]
    return programs, hints, sizes


def _engines():
    space = TransformationSpace.default()
    sweep = SweepEngine(tesla_c1060(), pcie_gen2_bus(), space)
    point = GrophecyPlusPlus(tesla_c1060(), pcie_gen2_bus(), space)
    return sweep, point


def test_sweep_engine(benchmark):
    sweep, _ = _engines()
    programs, hints, sizes = _sweep_inputs()
    benchmark.pedantic(
        lambda: sweep.sweep(programs, hints=hints, sizes=sizes),
        rounds=3,
        warmup_rounds=1,
    )


def test_point_at_a_time(benchmark):
    _, point = _engines()
    programs, hints, _ = _sweep_inputs()
    benchmark.pedantic(
        lambda: [
            point.project(program, hint)
            for program, hint in zip(programs, hints)
        ],
        rounds=3,
        warmup_rounds=1,
    )


def test_sweep_is_at_least_5x_faster():
    """The PR's acceptance bar, measured directly in points/second."""
    sweep, point = _engines()
    programs, hints, sizes = _sweep_inputs()

    def run_sweep():
        return sweep.sweep(programs, hints=hints, sizes=sizes)

    def run_points():
        return [
            point.project(program, hint)
            for program, hint in zip(programs, hints)
        ]

    # Identical results first — speed means nothing if the engine drifts.
    assert run_sweep() == run_points()
    assert sweep.stats["kernels_shared"] == 1
    assert sweep.stats["plans_from_template"] == _POINTS - 3

    def measure(run, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    # One retry: a transient scheduler stall during the (short) sweep
    # measurement can dent the ratio; a real regression fails twice.
    ratio = 0.0
    for _ in range(2):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            swept = measure(run_sweep, rounds=5)
            pointwise = measure(run_points, rounds=3)
        finally:
            if gc_was_enabled:
                gc.enable()
            gc.collect()
        ratio = pointwise / swept
        print(
            f"\nsweep: {_POINTS / swept:,.0f} points/s   "
            f"point-at-a-time: {_POINTS / pointwise:,.0f} points/s   "
            f"ratio: {ratio:.1f}x"
        )
        if ratio >= 5.0:
            break
    assert ratio >= 5.0
