"""Extended validation: the framework on applications beyond the paper.

The paper's future work proposes validating "on a wider range of
applications"; this bench runs the full predict-vs-measure pipeline on
PathFinder and KMeans against the *uncalibrated* simulator (no Table-I
replay), so the errors here are the framework's earned accuracy on
unseen workloads.
"""

from repro.harness.context import ExperimentContext
from repro.workloads.registry import extended_workloads


def _validate(ctx: ExperimentContext):
    out = {}
    for workload in extended_workloads():
        for dataset in workload.datasets():
            report = ctx.report(workload, dataset)
            out[f"{workload.name}/{dataset.label}"] = {
                "kernel_error": report.kernel_error,
                "transfer_error": report.transfer_error,
                "both_error": report.speedup_error("both"),
                "kernel_only_error": report.speedup_error("kernel"),
            }
    return out


def test_extended_validation(benchmark, ctx):
    results = benchmark(_validate, ctx)
    for label, errors in results.items():
        # The headline ordering must generalize beyond the paper's apps.
        assert errors["both_error"] < errors["kernel_only_error"], label
        assert errors["transfer_error"] < 0.10, label
        assert errors["both_error"] < 0.60, label
