"""Explorer throughput: fast path vs reference oracle, pruning on/off.

The projected kernel time is the min over the transformation space, so
configs-scored-per-second is the system's hot-path metric.  This
benchmark sweeps every registered workload's kernels over
``TransformationSpace.wide()`` with each scoring path and asserts the
acceptance bar from ``docs/EXPLORER.md``: the fast path is at least 5x
faster than the reference explorer across the registered workloads.

Per-kernel ratios vary (the smallest skeletons are dominated by the
dataclass construction both paths share); the bar is on the aggregate —
total configs scored over total wall time.
"""

import time

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.transform.explorer import explore_kernel
from repro.transform.space import TransformationSpace
from repro.workloads.registry import all_workloads


def _kernel_suite():
    """(kernel, program) for every kernel of every registered workload."""
    suite = []
    for workload in all_workloads():
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        for kernel in program.kernels[:2]:  # cap PathFinder's 64 rows
            suite.append((workload.name, kernel, program))
    return suite


def _sweep(model, space, explorer, prune=False):
    for _, kernel, program in _kernel_suite():
        explore_kernel(
            kernel, program, model, space, explorer=explorer, prune=prune
        )


def test_reference_explorer(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "reference"), rounds=3, warmup_rounds=1
    )


def test_fast_explorer(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "fast"), rounds=3, warmup_rounds=1
    )


def test_fast_explorer_with_pruning(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "fast", prune=True),
        rounds=3,
        warmup_rounds=1,
    )


def test_fast_is_at_least_5x_faster():
    """The PR's acceptance bar, measured directly in configs/second."""
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    suite = _kernel_suite()
    configs_per_sweep = len(space) * len(suite)

    def measure(explorer, rounds):
        _sweep(model, space, explorer)  # warm up caches and imports
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _sweep(model, space, explorer)
            best = min(best, time.perf_counter() - start)
        return best

    ref = measure("reference", rounds=3)
    fast = measure("fast", rounds=3)
    ref_rate = configs_per_sweep / ref
    fast_rate = configs_per_sweep / fast
    print(
        f"\nreference: {ref_rate:,.0f} configs/s   "
        f"fast: {fast_rate:,.0f} configs/s   ratio: {ref / fast:.1f}x"
    )
    assert ref / fast >= 5.0


def test_tracing_disabled_overhead_under_2_percent():
    """Observability acceptance bar: tracing off must cost < 2%.

    Raw A/B wall-clock of the same sweep is noisier than the bound
    itself, so the check is constructive: measure the per-call cost of a
    disabled instrumentation point (one global read + identity check +
    the kwargs dict), count the spans one traced sweep emits, and bound
    the total instrumentation cost against the sweep's wall time.
    """
    from repro.obs.trace import span, tracing

    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()

    _sweep(model, space, "fast")  # warm up caches and imports
    sweep_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _sweep(model, space, "fast")
        sweep_seconds = min(sweep_seconds, time.perf_counter() - start)

    with tracing() as tracer:
        _sweep(model, space, "fast")
    spans_per_sweep = len(tracer)
    assert spans_per_sweep > 0  # the sweep is actually instrumented

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with span("probe", kernel="k"):
            pass
    disabled_cost = (time.perf_counter() - start) / calls

    overhead = disabled_cost * spans_per_sweep / sweep_seconds
    print(
        f"\ntracing disabled: {disabled_cost * 1e9:.0f} ns/span x "
        f"{spans_per_sweep} span(s) over a {sweep_seconds * 1e3:.1f} ms "
        f"sweep = {overhead:.4%} overhead"
    )
    assert overhead < 0.02
