"""Explorer throughput: fast path vs reference oracle, pruning on/off.

The projected kernel time is the min over the transformation space, so
configs-scored-per-second is the system's hot-path metric.  This
benchmark sweeps every registered workload's kernels over
``TransformationSpace.wide()`` with each scoring path and asserts the
acceptance bar from ``docs/EXPLORER.md``: the fast path is at least 5x
faster than the reference explorer across the registered workloads.

Per-kernel ratios vary (the smallest skeletons are dominated by the
dataclass construction both paths share); the bar is on the aggregate —
total configs scored over total wall time.
"""

import time

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.transform.explorer import explore_kernel
from repro.transform.space import TransformationSpace
from repro.workloads.registry import all_workloads


def _kernel_suite():
    """(kernel, program) for every kernel of every registered workload."""
    suite = []
    for workload in all_workloads():
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        for kernel in program.kernels[:2]:  # cap PathFinder's 64 rows
            suite.append((workload.name, kernel, program))
    return suite


def _sweep(model, space, explorer, prune=False):
    for _, kernel, program in _kernel_suite():
        explore_kernel(
            kernel, program, model, space, explorer=explorer, prune=prune
        )


def test_reference_explorer(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "reference"), rounds=3, warmup_rounds=1
    )


def test_fast_explorer(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "fast"), rounds=3, warmup_rounds=1
    )


def test_fast_explorer_with_pruning(benchmark):
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    benchmark.pedantic(
        lambda: _sweep(model, space, "fast", prune=True),
        rounds=3,
        warmup_rounds=1,
    )


def test_fast_is_at_least_5x_faster():
    """The PR's acceptance bar, measured directly in configs/second."""
    model = GpuPerformanceModel(quadro_fx_5600())
    space = TransformationSpace.wide()
    suite = _kernel_suite()
    configs_per_sweep = len(space) * len(suite)

    def measure(explorer, rounds):
        _sweep(model, space, explorer)  # warm up caches and imports
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _sweep(model, space, explorer)
            best = min(best, time.perf_counter() - start)
        return best

    ref = measure("reference", rounds=3)
    fast = measure("fast", rounds=3)
    ref_rate = configs_per_sweep / ref
    fast_rate = configs_per_sweep / fast
    print(
        f"\nreference: {ref_rate:,.0f} configs/s   "
        f"fast: {fast_rate:,.0f} configs/s   ratio: {ref / fast:.1f}x"
    )
    assert ref / fast >= 5.0
