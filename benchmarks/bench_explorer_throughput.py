"""Explorer throughput: reference vs fast vs fused streaming.

The projected kernel time is the min over the transformation space, so
configs-scored-per-second is the system's hot-path metric.  This
benchmark sweeps every registered workload's kernels over
``TransformationSpace.wide()`` with each scoring path and asserts the
acceptance bars from ``docs/EXPLORER.md``:

- the fast path is at least 5x faster than the reference explorer;
- the warm streaming path is at least 5x faster than the fast path
  (and clears ~450k configs/s on this suite).

Per-kernel ratios vary (the smallest skeletons are dominated by work
both paths share); the bars are on the aggregate — total configs scored
over total wall time.  Measured rates land in ``BENCH_explorer.json``
(per path, configs/s) for the CI ``throughput`` job to upload.
"""

import time

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.transform.explorer import explore_kernel
from repro.transform.stream import StreamingExplorer


def _sweep(suite, model, space, explorer, prune=False):
    for _, kernel, program in suite:
        explore_kernel(
            kernel, program, model, space, explorer=explorer, prune=prune
        )


def _sweep_streaming(suite, streamer, space):
    """One warm pass: analyses/columns cached, arena reused."""
    for _, kernel, program in suite:
        streamer.explore_kernel(kernel, program, space)


def _best_of(fn, rounds=3):
    fn()  # warm up caches and imports
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_reference_explorer(benchmark, kernel_suite, wide_space):
    model = GpuPerformanceModel(quadro_fx_5600())
    benchmark.pedantic(
        lambda: _sweep(kernel_suite, model, wide_space, "reference"),
        rounds=3,
        warmup_rounds=1,
    )


def test_fast_explorer(benchmark, kernel_suite, wide_space):
    model = GpuPerformanceModel(quadro_fx_5600())
    benchmark.pedantic(
        lambda: _sweep(kernel_suite, model, wide_space, "fast"),
        rounds=3,
        warmup_rounds=1,
    )


def test_fast_explorer_with_pruning(benchmark, kernel_suite, wide_space):
    model = GpuPerformanceModel(quadro_fx_5600())
    benchmark.pedantic(
        lambda: _sweep(kernel_suite, model, wide_space, "fast", prune=True),
        rounds=3,
        warmup_rounds=1,
    )


def test_stream_explorer_warm(benchmark, kernel_suite, wide_space):
    model = GpuPerformanceModel(quadro_fx_5600())
    streamer = StreamingExplorer(model)
    _sweep_streaming(kernel_suite, streamer, wide_space)  # warm the caches
    benchmark.pedantic(
        lambda: _sweep_streaming(kernel_suite, streamer, wide_space),
        rounds=3,
        warmup_rounds=1,
    )


def test_fast_is_at_least_5x_faster(kernel_suite, wide_space, bench_json):
    """Acceptance bar #1, measured directly in configs/second."""
    model = GpuPerformanceModel(quadro_fx_5600())
    configs_per_sweep = len(wide_space) * len(kernel_suite)

    ref = _best_of(
        lambda: _sweep(kernel_suite, model, wide_space, "reference")
    )
    fast = _best_of(lambda: _sweep(kernel_suite, model, wide_space, "fast"))
    ref_rate = configs_per_sweep / ref
    fast_rate = configs_per_sweep / fast
    bench_json(
        "explorer",
        {
            "configs_per_sweep": configs_per_sweep,
            "reference_configs_per_s": ref_rate,
            "fast_configs_per_s": fast_rate,
            "fast_over_reference": ref / fast,
        },
    )
    print(
        f"\nreference: {ref_rate:,.0f} configs/s   "
        f"fast: {fast_rate:,.0f} configs/s   ratio: {ref / fast:.1f}x"
    )
    assert ref / fast >= 5.0


def test_stream_is_at_least_5x_faster_than_fast(
    kernel_suite, wide_space, bench_json
):
    """Acceptance bar #2: the fused streaming path vs the fast path.

    The gate measures the warm steady state (persistent explorer:
    analyses, column grids, and arena all cached) — the service/sweep
    serving pattern the streaming path exists for.  The cold first pass
    is recorded alongside for the JSON artifact but not gated.
    """
    model = GpuPerformanceModel(quadro_fx_5600())
    configs_per_sweep = len(wide_space) * len(kernel_suite)

    fast = _best_of(lambda: _sweep(kernel_suite, model, wide_space, "fast"))

    cold_streamer = StreamingExplorer(model)
    start = time.perf_counter()
    _sweep_streaming(kernel_suite, cold_streamer, wide_space)
    cold = time.perf_counter() - start

    streamer = StreamingExplorer(model)
    warm = _best_of(
        lambda: _sweep_streaming(kernel_suite, streamer, wide_space)
    )

    fast_rate = configs_per_sweep / fast
    cold_rate = configs_per_sweep / cold
    warm_rate = configs_per_sweep / warm
    bench_json(
        "stream",
        {
            "configs_per_sweep": configs_per_sweep,
            "fast_configs_per_s": fast_rate,
            "stream_cold_configs_per_s": cold_rate,
            "stream_warm_configs_per_s": warm_rate,
            "stream_warm_over_fast": fast / warm,
        },
    )
    print(
        f"\nfast: {fast_rate:,.0f} configs/s   "
        f"stream cold: {cold_rate:,.0f} configs/s   "
        f"stream warm: {warm_rate:,.0f} configs/s   "
        f"warm ratio: {fast / warm:.1f}x"
    )
    assert fast / warm >= 5.0
    assert warm_rate >= 450_000


def test_tracing_disabled_overhead_under_2_percent(kernel_suite, wide_space):
    """Observability acceptance bar: tracing off must cost < 2%.

    Raw A/B wall-clock of the same sweep is noisier than the bound
    itself, so the check is constructive: measure the per-call cost of a
    disabled instrumentation point (one global read + identity check +
    the kwargs dict), count the spans one traced sweep emits, and bound
    the total instrumentation cost against the sweep's wall time.
    """
    from repro.obs.trace import span, tracing

    model = GpuPerformanceModel(quadro_fx_5600())

    sweep_seconds = _best_of(
        lambda: _sweep(kernel_suite, model, wide_space, "fast")
    )

    with tracing() as tracer:
        _sweep(kernel_suite, model, wide_space, "fast")
    spans_per_sweep = len(tracer)
    assert spans_per_sweep > 0  # the sweep is actually instrumented

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with span("probe", kernel="k"):
            pass
    disabled_cost = (time.perf_counter() - start) / calls

    overhead = disabled_cost * spans_per_sweep / sweep_seconds
    print(
        f"\ntracing disabled: {disabled_cost * 1e9:.0f} ns/span x "
        f"{spans_per_sweep} span(s) over a {sweep_seconds * 1e3:.1f} ms "
        f"sweep = {overhead:.4%} overhead"
    )
    assert overhead < 0.02


def test_obs_v2_disabled_overhead_under_2_percent(
    kernel_suite, wide_space, tmp_path
):
    """Obs v2 acceptance bar: trace-context + event-log paths off ≤ 2%.

    Same constructive method as the ambient-tracing gate, extended to
    the two new obs v2 paths an *untraced* request can see:

    - trace-context: once any scoped tracer is live anywhere in the
      process (a traced daemon job in flight), every disabled span on
      every other thread pays the thread-local lookup on top of the
      global reads.  Measure that worst-case per-call cost under a live
      scope held by another thread.
    - event log: a daemon job emits a handful of lifecycle events
      (submit/dequeue/start/complete plus surrogate and audit verdicts)
      to a disk-backed JSONL log; bound the whole per-job event cost.
    """
    import threading

    from repro.obs.events import EventLog
    from repro.obs.trace import span, tracing
    from repro.obs.trace import scoped_tracing

    model = GpuPerformanceModel(quadro_fx_5600())
    sweep_seconds = _best_of(
        lambda: _sweep(kernel_suite, model, wide_space, "fast")
    )
    with tracing() as tracer:
        _sweep(kernel_suite, model, wide_space, "fast")
    spans_per_sweep = len(tracer)
    assert spans_per_sweep > 0

    # Worst-case disabled span: another thread holds a live scope.
    holding = threading.Event()
    release = threading.Event()

    def hold_scope():
        with scoped_tracing():
            holding.set()
            release.wait(30)

    holder = threading.Thread(target=hold_scope, daemon=True)
    holder.start()
    assert holding.wait(5)
    try:
        calls = 200_000
        start = time.perf_counter()
        for _ in range(calls):
            with span("probe", kernel="k"):
                pass
        scoped_disabled_cost = (time.perf_counter() - start) / calls
    finally:
        release.set()
        holder.join(5)

    # Event-log emission, disk-backed like the daemon's.
    events = EventLog(tmp_path / "events.jsonl")
    emits = 20_000
    start = time.perf_counter()
    for _ in range(emits):
        events.emit("complete", job_id="j", trace_id="t", run_seconds=0.1)
    emit_cost = (time.perf_counter() - start) / emits
    events_per_job = 8  # submit..complete + surrogate/audit verdicts

    span_overhead = scoped_disabled_cost * spans_per_sweep / sweep_seconds
    event_overhead = emit_cost * events_per_job / sweep_seconds
    overhead = span_overhead + event_overhead
    print(
        f"\nobs v2 disabled: {scoped_disabled_cost * 1e9:.0f} ns/span "
        f"(scope live elsewhere) x {spans_per_sweep} span(s) "
        f"+ {emit_cost * 1e6:.1f} us/event x {events_per_job} event(s) "
        f"over a {sweep_seconds * 1e3:.1f} ms sweep "
        f"= {overhead:.4%} overhead"
    )
    assert overhead < 0.02
