"""Benchmark trend gate: fail CI on a >20% throughput regression.

Compares the fresh ``benchmarks/out/BENCH_*.json`` files against the
same files from the previous successful CI run (downloaded as an
artifact).  Only *throughput* leaves participate — numeric values whose
key ends in ``_per_s`` or ``_per_query_us`` — because those are the
numbers the benchmarks gate on; counters (``rows``, ``pool_workers``)
and ratios are ignored.  Higher is better for ``_per_s``; lower is
better for ``_per_query_us`` (it is a latency).

Exit codes: 0 when no previous baseline exists (first run, new file, or
artifact download failed — the trend gate never blocks bootstrap) or
when every leaf is within tolerance; 1 when any tracked leaf regressed
beyond the threshold.

Usage::

    python benchmarks/bench_trend.py PREVIOUS_DIR CURRENT_DIR [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Key suffixes that mark a leaf as a tracked throughput number, mapped
#: to the direction that counts as a regression.
HIGHER_IS_BETTER = "_per_s"
LOWER_IS_BETTER = "_per_query_us"

DEFAULT_THRESHOLD = 0.20


def throughput_leaves(data: object, prefix: str = "") -> dict[str, float]:
    """Flatten a benchmark JSON tree to its tracked numeric leaves.

    Keys become dotted paths (``stream.stream_warm_configs_per_s``);
    only leaves whose final key component carries a tracked suffix are
    kept.
    """
    leaves: dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, dict):
                leaves.update(throughput_leaves(value, path))
            elif isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                if str(key).endswith((HIGHER_IS_BETTER, LOWER_IS_BETTER)):
                    leaves[path] = float(value)
    return leaves


def compare_leaves(
    previous: dict[str, float],
    current: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Regression messages for every tracked leaf beyond ``threshold``.

    Leaves present only on one side are skipped (renamed or new
    benchmarks are not regressions).  A zero or negative baseline is
    skipped too — there is no meaningful ratio against it.
    """
    problems: list[str] = []
    for path in sorted(set(previous) & set(current)):
        before, after = previous[path], current[path]
        if before <= 0:
            continue
        if path.endswith(LOWER_IS_BETTER):
            change = after / before - 1.0  # +: slower (worse)
            regressed = change > threshold
            direction = "slower"
        else:
            change = 1.0 - after / before  # +: fewer per second (worse)
            regressed = change > threshold
            direction = "drop"
        if regressed:
            problems.append(
                f"{path}: {before:.6g} -> {after:.6g} "
                f"({change:+.1%} {direction}, limit {threshold:.0%})"
            )
    return problems


def compare_dirs(
    previous_dir: Path,
    current_dir: Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """(regressions, notes) across every ``BENCH_*.json`` in current."""
    problems: list[str] = []
    notes: list[str] = []
    current_files = sorted(current_dir.glob("BENCH_*.json"))
    if not current_files:
        notes.append(f"no BENCH_*.json under {current_dir} — nothing to gate")
        return problems, notes
    for current_file in current_files:
        previous_file = previous_dir / current_file.name
        if not previous_file.is_file():
            notes.append(f"{current_file.name}: no previous baseline, skipped")
            continue
        try:
            before = throughput_leaves(
                json.loads(previous_file.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError):
            notes.append(f"{current_file.name}: unreadable baseline, skipped")
            continue
        after = throughput_leaves(
            json.loads(current_file.read_text(encoding="utf-8"))
        )
        found = compare_leaves(before, after, threshold)
        problems.extend(f"{current_file.name}: {p}" for p in found)
        notes.append(
            f"{current_file.name}: {len(set(before) & set(after))} leaves "
            f"compared, {len(found)} regressed"
        )
    return problems, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", type=Path, help="previous run's out/ dir")
    parser.add_argument("current", type=Path, help="this run's out/ dir")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional regression that fails the gate (default 0.2)",
    )
    args = parser.parse_args(argv)
    if not args.previous.is_dir():
        print(f"trend: no previous baseline at {args.previous}; passing")
        return 0
    problems, notes = compare_dirs(args.previous, args.current, args.threshold)
    for note in notes:
        print(f"trend: {note}")
    for problem in problems:
        print(f"REGRESSION {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
