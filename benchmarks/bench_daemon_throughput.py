"""Daemon overhead vs direct run_batch: jobs/s and queue-wait p95.

The daemon adds an HTTP hop, a journaled queue, and a scheduler between
the client and the projection engine.  The acceptance bar (ISSUE /
docs/DAEMON.md): for a realistic batch, daemon wall time stays within
10% of a direct in-process ``run_batch`` of the same requests.  This
file measures both sides with identical engines (no cache, so every
request pays full projection cost on both paths) and reports jobs/s and
the p95 queue wait from the daemon's own histogram.
"""

import json
import statistics

from repro.daemon.client import DaemonClient
from repro.daemon.server import DaemonApp, DaemonServer
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.service.engine import ProjectionEngine
from repro.service.jobs import run_batch

#: A mixed batch: every paper-relevant projection a CI gate would ask.
#: Repeated 5x (cacheless, so every copy pays full projection cost) to
#: amortize the daemon's fixed per-job cost over a realistic run length.
REQUESTS = (
    [
        {"workload": "VectorAdd", "dataset": label}
        for label in ("4M", "16M", "64M")
    ]
    + [
        {"workload": "HotSpot", "dataset": "64 x 64", "iterations": n}
        for n in (1, 10, 100)
    ]
    + [
        {"workload": "SRAD", "dataset": "1024 x 1024"},
        {"workload": "CFD", "dataset": "97K"},
    ]
) * 10

#: The documented ceiling on daemon overhead vs direct run_batch.
MAX_OVERHEAD = 0.10


def _direct_engine():
    ctx = ExperimentContext(seed=2013)
    return ProjectionEngine(
        arch=quadro_fx_5600(), bus=ctx.bus_model, cache=None
    )


def _run_direct(tmp_path):
    requests_path = tmp_path / "requests.jsonl"
    with open(requests_path, "w", encoding="utf-8") as fh:
        for record in REQUESTS:
            fh.write(json.dumps(record) + "\n")
    return run_batch(requests_path, engine=_direct_engine())


def _run_daemon_batch(tmp_path, name="state"):
    app = DaemonApp(tmp_path / name, workers=1, use_cache=False)
    server = DaemonServer(app)
    server.serve_in_thread()
    try:
        client = DaemonClient(base_url=server.url)
        submitted = client.submit("batch", {"requests": REQUESTS})
        body = client.wait(submitted["id"], timeout=300)
        assert body["state"] == "done"
        return app, body
    finally:
        server.stop()


def test_direct_run_batch(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: _run_direct(tmp_path), rounds=3, warmup_rounds=1
    )
    assert result.error_count == 0


def test_daemon_round_trip(benchmark, tmp_path):
    counter = [0]

    def once():
        counter[0] += 1
        return _run_daemon_batch(tmp_path, name=f"state{counter[0]}")

    app, body = benchmark.pedantic(once, rounds=3, warmup_rounds=1)
    assert body["result"]["summary"]["errors"] == 0


def test_daemon_overhead_within_bound(tmp_path):
    """The ≤10% acceptance bar, measured on interleaved best-of-5 runs.

    Five interleaved trials per side, minimum of each: noise on this
    machine is additive (scheduler hiccups, fsync latency spikes), so
    the min is the tight estimator of each path's true cost, and
    interleaving keeps slow phases from landing on only one side.  The
    whole measurement retries up to three times — a single fsync stall
    inside the daemon's journal can exceed the entire margin, and the
    gate is about systematic overhead, not one disk hiccup.
    """
    trials = 5
    attempts = 3
    overhead = None
    for attempt in range(attempts):
        direct_times = []
        daemon_times = []
        last_app = None
        for index in range(trials):
            direct = _run_direct(tmp_path)
            assert direct.error_count == 0
            direct_times.append(direct.elapsed)
            app, body = _run_daemon_batch(
                tmp_path, name=f"bound{attempt}-{index}"
            )
            assert body["result"]["summary"]["errors"] == 0
            job = app.queue.jobs()[0]
            daemon_times.append(job.finished - job.submitted)
            last_app = app
        direct_elapsed = min(direct_times)
        daemon_elapsed = min(daemon_times)

        overhead = daemon_elapsed / direct_elapsed - 1.0
        snapshot = last_app.engine.metrics.snapshot()
        wait = snapshot["timers"]["queue_wait"]
        print(
            f"\ndirect: {direct_elapsed:.3f}s "
            f"({len(REQUESTS) / direct_elapsed:.1f} jobs/s) | "
            f"daemon: {daemon_elapsed:.3f}s "
            f"({len(REQUESTS) / daemon_elapsed:.1f} jobs/s) | "
            f"overhead {overhead:+.1%} | "
            f"queue-wait p95 {wait.get('p95', 0.0) * 1e3:.2f} ms"
        )
        if overhead <= MAX_OVERHEAD:
            return
    raise AssertionError(
        f"daemon overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"on {attempts} consecutive measurements"
    )
