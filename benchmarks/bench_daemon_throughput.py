"""Daemon overhead vs direct run_batch: jobs/s and queue-wait p95.

The daemon adds an HTTP hop, a journaled queue, and a scheduler between
the client and the projection engine.  The acceptance bar (ISSUE /
docs/DAEMON.md): for a realistic batch, daemon wall time stays within
10% of a direct in-process ``run_batch`` of the same requests.  This
file measures both sides with identical engines (no cache, so every
request pays full projection cost on both paths) and reports jobs/s and
the p95 queue wait from the daemon's own histogram.
"""

import json
import statistics

from repro.daemon.client import DaemonClient
from repro.daemon.server import DaemonApp, DaemonServer
from repro.gpu.arch import quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.service.engine import ProjectionEngine
from repro.service.jobs import run_batch

#: A mixed batch: every paper-relevant projection a CI gate would ask.
#: Repeated 5x (cacheless, so every copy pays full projection cost) to
#: amortize the daemon's fixed per-job cost over a realistic run length.
REQUESTS = (
    [
        {"workload": "VectorAdd", "dataset": label}
        for label in ("4M", "16M", "64M")
    ]
    + [
        {"workload": "HotSpot", "dataset": "64 x 64", "iterations": n}
        for n in (1, 10, 100)
    ]
    + [
        {"workload": "SRAD", "dataset": "1024 x 1024"},
        {"workload": "CFD", "dataset": "97K"},
    ]
) * 10

#: The documented ceiling on daemon overhead vs direct run_batch.
MAX_OVERHEAD = 0.10


def _direct_engine():
    ctx = ExperimentContext(seed=2013)
    return ProjectionEngine(
        arch=quadro_fx_5600(), bus=ctx.bus_model, cache=None
    )


def _run_direct(tmp_path):
    requests_path = tmp_path / "requests.jsonl"
    with open(requests_path, "w", encoding="utf-8") as fh:
        for record in REQUESTS:
            fh.write(json.dumps(record) + "\n")
    return run_batch(requests_path, engine=_direct_engine())


def _run_daemon_batch(tmp_path, name="state"):
    app = DaemonApp(tmp_path / name, workers=1, use_cache=False)
    server = DaemonServer(app)
    server.serve_in_thread()
    try:
        client = DaemonClient(base_url=server.url)
        submitted = client.submit("batch", {"requests": REQUESTS})
        body = client.wait(submitted["id"], timeout=300)
        assert body["state"] == "done"
        return app, body
    finally:
        server.stop()


def test_direct_run_batch(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: _run_direct(tmp_path), rounds=3, warmup_rounds=1
    )
    assert result.error_count == 0


def test_daemon_round_trip(benchmark, tmp_path):
    counter = [0]

    def once():
        counter[0] += 1
        return _run_daemon_batch(tmp_path, name=f"state{counter[0]}")

    app, body = benchmark.pedantic(once, rounds=3, warmup_rounds=1)
    assert body["result"]["summary"]["errors"] == 0


def test_daemon_overhead_within_bound(tmp_path):
    """The ≤10% acceptance bar, measured on interleaved best-of-5 runs.

    Five interleaved trials per side, minimum of each: noise on this
    machine is additive (scheduler hiccups, fsync latency spikes), so
    the min is the tight estimator of each path's true cost, and
    interleaving keeps slow phases from landing on only one side.  The
    whole measurement retries up to three times — a single fsync stall
    inside the daemon's journal can exceed the entire margin, and the
    gate is about systematic overhead, not one disk hiccup.
    """
    trials = 5
    attempts = 3
    overhead = None
    for attempt in range(attempts):
        direct_times = []
        daemon_times = []
        last_app = None
        for index in range(trials):
            direct = _run_direct(tmp_path)
            assert direct.error_count == 0
            direct_times.append(direct.elapsed)
            app, body = _run_daemon_batch(
                tmp_path, name=f"bound{attempt}-{index}"
            )
            assert body["result"]["summary"]["errors"] == 0
            job = app.queue.jobs()[0]
            daemon_times.append(job.finished - job.submitted)
            last_app = app
        direct_elapsed = min(direct_times)
        daemon_elapsed = min(daemon_times)

        overhead = daemon_elapsed / direct_elapsed - 1.0
        snapshot = last_app.engine.metrics.snapshot()
        wait = snapshot["timers"]["queue_wait"]
        print(
            f"\ndirect: {direct_elapsed:.3f}s "
            f"({len(REQUESTS) / direct_elapsed:.1f} jobs/s) | "
            f"daemon: {daemon_elapsed:.3f}s "
            f"({len(REQUESTS) / daemon_elapsed:.1f} jobs/s) | "
            f"overhead {overhead:+.1%} | "
            f"queue-wait p95 {wait.get('p95', 0.0) * 1e3:.2f} ms"
        )
        if overhead <= MAX_OVERHEAD:
            return
    raise AssertionError(
        f"daemon overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"on {attempts} consecutive measurements"
    )


def _surrogate_model_path(tmp_path):
    """A small trained surrogate the audited daemon can serve from."""
    from repro.surrogate.dataset import generate_training_set
    from repro.surrogate.model import train_surrogate
    from repro.surrogate.store import save_model
    from repro.transform.space import TransformationSpace
    from repro.workloads.registry import get_workload

    arch = quadro_fx_5600()
    space = TransformationSpace.default()
    training = generate_training_set(
        arch,
        space,
        workloads=tuple(
            get_workload(name)
            for name in ("HotSpot", "VectorAdd", "SRAD")
        ),
        sizes_per_kernel=12,
    )
    model = train_surrogate(training, arch, space)
    return save_model(model, tmp_path / "surrogate.npz")


def _run_obs_side(tmp_path, name, model_path, traced):
    """One measured run: the batch plus a few surrogate projections.

    Both sides serve identical work from identical daemons (surrogate
    model loaded, cacheless); the traced side additionally records
    per-job spans, stitches trace files, and shadow-audits every
    accepted surrogate answer (rate 1.0) — the full obs v2 cost.
    """
    app = DaemonApp(
        tmp_path / name,
        workers=1,
        use_cache=False,
        surrogate_model=model_path,
        audit_rate=1.0 if traced else 0,
    )
    server = DaemonServer(app)
    server.serve_in_thread()
    try:
        client = DaemonClient(base_url=server.url)
        ids = [
            client.submit(
                "batch", {"requests": REQUESTS}, trace=traced
            )["id"]
        ]
        for _ in range(4):
            ids.append(
                client.submit(
                    "projection",
                    {"workload": "VectorAdd", "dataset": "4M",
                     "mode": "auto"},
                    trace=traced,
                )["id"]
            )
        for job_id in ids:
            body = client.wait(job_id, timeout=300)
            assert body["state"] == "done"
        jobs = {job.job_id: job for job in app.queue.jobs()}
        elapsed = max(
            jobs[job_id].finished for job_id in ids
        ) - min(jobs[job_id].submitted for job_id in ids)
        return app, elapsed
    finally:
        server.stop()


def test_traced_audited_daemon_overhead_within_bound(tmp_path):
    """Obs v2 acceptance bar: traced + audited ≤ 10% vs untraced.

    Same interleaved best-of-5 min + retry estimator as the daemon-vs-
    direct gate (see that test's docstring for why).  Identical work on
    both sides; only the observability differs — the traced side
    records every span, writes trace documents, and re-scores every
    accepted surrogate answer through the exact engine off the hot
    path.
    """
    model_path = _surrogate_model_path(tmp_path)
    trials = 5
    attempts = 3
    overhead = None
    for attempt in range(attempts):
        plain_times = []
        traced_times = []
        last_app = None
        for index in range(trials):
            _, plain = _run_obs_side(
                tmp_path, f"plain{attempt}-{index}", model_path,
                traced=False,
            )
            plain_times.append(plain)
            app, traced = _run_obs_side(
                tmp_path, f"traced{attempt}-{index}", model_path,
                traced=True,
            )
            traced_times.append(traced)
            last_app = app
        plain_elapsed = min(plain_times)
        traced_elapsed = min(traced_times)
        overhead = traced_elapsed / plain_elapsed - 1.0
        counters = last_app.engine.metrics.snapshot()["counters"]
        print(
            f"\nuntraced: {plain_elapsed:.3f}s | "
            f"traced+audited: {traced_elapsed:.3f}s | "
            f"overhead {overhead:+.1%} | "
            f"traces {counters.get('traces_written', 0)}, "
            f"audits {counters.get('obs_surrogate_audits', 0)}"
        )
        if overhead <= MAX_OVERHEAD:
            return
    raise AssertionError(
        f"traced+audited daemon overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} on {attempts} consecutive measurements"
    )
