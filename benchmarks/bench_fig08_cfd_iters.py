"""Fig. 8: CFD speedup vs iteration count (233K dataset)."""

from repro.harness.speedups import run_speedup_vs_iterations
from repro.workloads import get_workload


def test_fig8_cfd_speedup_vs_iterations(benchmark, ctx):
    result = benchmark(
        run_speedup_vs_iterations, ctx, get_workload("CFD")
    )
    assert result.data_size == "233K"
    # Paper: transfer-aware stays 2x more accurate below ~18 iterations.
    assert result.accuracy_crossover is not None
    assert 8 <= result.accuracy_crossover <= 60
    # Paper: 22.6% error in the infinite-iteration limit.
    assert result.limit_error < 0.45
