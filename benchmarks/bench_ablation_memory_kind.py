"""Ablation: what if the ported code used pageable instead of pinned memory?

The paper assumes pinned memory (Section III-C) and defers the tradeoff to
future work; this ablation quantifies it at the application level by
re-calibrating the bus model for pageable staging and repricing every
workload's transfer plan.
"""



from repro.harness.context import ExperimentContext
from repro.pcie import CalibrationConfig, Calibrator, MemoryKind
from repro.workloads.registry import paper_workloads


def _pageable_penalties(ctx: ExperimentContext) -> dict[str, float]:
    pageable_bus = Calibrator(
        ctx.testbed.bus, CalibrationConfig(memory=MemoryKind.PAGEABLE)
    ).calibrate()
    penalties = {}
    for workload in paper_workloads():
        for dataset in workload.datasets():
            plan = ctx.projection(workload, dataset).plan
            pinned = ctx.bus_model.predict_plan(plan)
            pageable = pageable_bus.predict_plan(plan)
            penalties[f"{workload.name}/{dataset.label}"] = pageable / pinned
    return penalties


def test_ablation_pageable_memory_penalty(benchmark, ctx):
    penalties = benchmark(_pageable_penalties, ctx)
    # Every paper workload moves megabytes, far beyond the ~2KB regime
    # where pageable wins: pinned must win everywhere, by roughly the
    # bandwidth ratio (~2x).
    for label, penalty in penalties.items():
        assert 1.3 < penalty < 2.6, label
