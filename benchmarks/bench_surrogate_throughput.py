"""Surrogate serving gates: microseconds, 100x, 90%, and bitwise exact.

Four asserted contracts, the acceptance criteria of the surrogate tier
(see docs/SURROGATE.md):

1. **latency** — warm forced-surrogate serving answers with a p50 of
   at most 100 µs/query;
2. **speedup** — the surrogate path is >= 100x faster than the *warm*
   streaming explorer on the same query set (total wall over all
   workloads x datasets);
3. **agreement** — on a held-out row split of the training grid, at
   least 90% of *accepted* queries name the exact argmin's mapping
   class;
4. **fallback** — with the accept threshold forced to +inf, every
   query falls back to the exact engine with a bitwise-identical
   summary and ``provenance.path == "exact"``.

Rates land in the ``serving`` / ``agreement`` sections of
``benchmarks/out/BENCH_surrogate.json`` for the CI trend gate.
"""

import time

import numpy as np
import pytest

from repro.gpu.arch import quadro_fx_5600
from repro.gpu.model import GpuPerformanceModel
from repro.pcie.presets import pcie_gen1_bus
from repro.service.engine import ProjectionEngine, ProjectionRequest
from repro.surrogate.dataset import generate_training_set, split_rows
from repro.surrogate.engine import SurrogateEngine
from repro.surrogate.model import evaluate_model, train_surrogate
from repro.transform.space import TransformationSpace
from repro.transform.stream import StreamingExplorer
from repro.workloads.registry import all_workloads

LATENCY_P50_GATE_US = 100.0
SPEEDUP_GATE = 100.0
AGREEMENT_GATE = 0.90

#: Per-query rounds of the warm latency loop (total = rounds x queries).
LATENCY_ROUNDS = 200


@pytest.fixture(scope="module")
def serving_stack():
    """(surrogate engine, exact engine, holdout report, query set)."""
    arch = quadro_fx_5600()
    space = TransformationSpace.default()
    training = generate_training_set(arch, space)
    holdout_idx, fit_idx = split_rows(training.rows, (0.25,), seed=7)
    model = train_surrogate(training.subset(fit_idx), arch, space)
    report = evaluate_model(model, training.subset(holdout_idx))

    engine = ProjectionEngine(
        arch=arch, bus=pcie_gen1_bus(), space=space, explorer="stream"
    )
    surrogate = SurrogateEngine(model, engine)

    requests = []
    for workload in all_workloads():
        for dataset in workload.datasets():
            requests.append(
                ProjectionRequest(
                    program=workload.skeleton(dataset),
                    hints=workload.hints(dataset),
                    request_id=f"{workload.name}/{dataset.label}",
                )
            )
    yield surrogate, engine, report, requests
    surrogate.close()


def _served_requests(surrogate, requests):
    """The queries the forced-surrogate path can actually serve."""
    served = [
        request
        for request in requests
        if surrogate.project(request, "surrogate").path == "surrogate"
    ]
    assert served, "no query is surrogate-servable - model is broken"
    return served


def test_latency_p50_under_100us(serving_stack, surrogate_json):
    """Gate 1: warm forced-surrogate p50 <= 100 µs/query."""
    surrogate, _engine, _report, requests = serving_stack
    served = _served_requests(surrogate, requests)
    # Warm every prepared-program cache entry before timing.
    for request in served:
        surrogate.project(request, "surrogate")
    samples = []
    for _ in range(LATENCY_ROUNDS):
        for request in served:
            start = time.perf_counter()
            response = surrogate.project(request, "surrogate")
            samples.append(time.perf_counter() - start)
            assert response.path == "surrogate"
    p50 = float(np.quantile(samples, 0.5)) * 1e6
    p95 = float(np.quantile(samples, 0.95)) * 1e6
    queries_per_s = len(samples) / sum(samples)
    surrogate_json(
        "serving",
        {
            "queries": len(served),
            "p50_per_query_us": p50,
            "p95_us": p95,
            "surrogate_queries_per_s": queries_per_s,
        },
    )
    print(
        f"\nsurrogate warm: p50 {p50:.1f} µs/query, p95 {p95:.1f} µs, "
        f"{queries_per_s:,.0f} queries/s over {len(served)} programs"
    )
    assert p50 <= LATENCY_P50_GATE_US, (
        f"surrogate p50 {p50:.1f} µs exceeds the "
        f"{LATENCY_P50_GATE_US:.0f} µs gate"
    )


def test_speedup_vs_warm_stream_explorer(serving_stack, surrogate_json):
    """Gate 2: >= 100x over the warm streaming explorer, same queries."""
    surrogate, engine, _report, requests = serving_stack
    served = _served_requests(surrogate, requests)

    # Warm streaming explorer: per-kernel analyses and column grids
    # cached, then the best of three full passes over the query set.
    # (Not engine.project - its request cache would answer from memory
    # and we are timing the search, not the cache.)
    explorer = StreamingExplorer(GpuPerformanceModel(engine.arch))
    space = engine.space

    def stream_pass():
        for request in served:
            explorer.project_program(request.program, space)

    stream_pass()  # warm
    stream_wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        stream_pass()
        stream_wall = min(stream_wall, time.perf_counter() - start)

    for request in served:
        surrogate.project(request, "surrogate")  # warm
    surrogate_wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for request in served:
            surrogate.project(request, "surrogate")
        surrogate_wall = min(surrogate_wall, time.perf_counter() - start)

    speedup = stream_wall / surrogate_wall
    surrogate_json(
        "speedup",
        {
            "queries": len(served),
            "stream_queries_per_s": len(served) / stream_wall,
            "surrogate_queries_per_s": len(served) / surrogate_wall,
            "surrogate_over_stream": speedup,
        },
    )
    print(
        f"\nwarm stream: {stream_wall / len(served) * 1e6:,.0f} µs/query   "
        f"surrogate: {surrogate_wall / len(served) * 1e6:.1f} µs/query   "
        f"speedup {speedup:,.0f}x"
    )
    assert speedup >= SPEEDUP_GATE, (
        f"surrogate is only {speedup:.0f}x faster than the warm stream "
        f"explorer (gate: {SPEEDUP_GATE:.0f}x)"
    )


def test_heldout_accepted_agreement(serving_stack, surrogate_json):
    """Gate 3: >= 90% top-1 mapping agreement among accepted queries."""
    _surrogate, _engine, report, _requests = serving_stack
    surrogate_json(
        "agreement",
        {
            "rows": report["rows"],
            "acceptance_rate": report["acceptance_rate"],
            "accepted_top1_agreement": report["accepted_top1_agreement"],
            "top1_agreement": report["top1_agreement"],
            "log_mae": report["log_mae"],
        },
    )
    print(
        f"\nheld-out: {report['rows']} rows, "
        f"acceptance {report['acceptance_rate']:.1%}, "
        f"accepted agreement {report['accepted_top1_agreement']:.1%}"
    )
    assert report["accepted_rows"] > 0, "gate accepted nothing on holdout"
    assert report["accepted_top1_agreement"] >= AGREEMENT_GATE, (
        f"accepted agreement {report['accepted_top1_agreement']:.3f} "
        f"below the {AGREEMENT_GATE:.0%} gate"
    )


def test_fallback_is_bitwise_exact(serving_stack):
    """Gate 4: below-threshold queries return the engine's summary
    bit-for-bit, stamped ``path == "exact"``."""
    surrogate, engine, _report, requests = serving_stack
    # +inf threshold: nothing clears the gate, everything falls back.
    gated = SurrogateEngine(surrogate.model.with_threshold(float("inf")), engine)
    # A pristine twin engine answers the same requests directly.
    direct = ProjectionEngine(
        arch=engine.arch,
        bus=engine.bus,
        space=engine.space,
        explorer="stream",
    )
    for request in requests:
        served = gated.project(request)
        assert served.path == "exact"
        assert served.provenance.path == "exact"
        assert served.provenance.reason in ("low_confidence", "unservable")
        expected = direct.project(request)
        assert (
            served.response.summary.to_json()
            == expected.summary.to_json()
        ), f"fallback summary diverged for {request.request_id}"
    direct.close()
