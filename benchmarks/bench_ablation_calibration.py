"""Ablation: 2-point calibration vs least-squares over the full sweep.

The paper's model needs only two measurements.  A 30-point unweighted OLS
fit is 15x the measurement cost, and because the large transfers dominate
the squared error it fits the bandwidth but can misplace alpha — the
2-point procedure is both cheaper and at least as good where it matters.
"""

from repro.datausage import Direction
from repro.harness.context import ExperimentContext
from repro.pcie.model import LinearTransferModel
from repro.pcie.sweep import measure_sweep, power_of_two_sizes
from repro.util.stats import mean_error_magnitude


def _compare_fits(ctx: ExperimentContext) -> dict[str, float]:
    sizes = power_of_two_sizes()
    samples = measure_sweep(ctx.testbed.bus, sizes, Direction.H2D)
    measured = [s.mean_time for s in samples]

    two_point = ctx.bus_model.h2d
    ols = LinearTransferModel.least_squares(sizes, measured)

    return {
        "two_point": mean_error_magnitude(
            [two_point.predict(s) for s in sizes], measured
        ),
        "ols": mean_error_magnitude(
            [ols.predict(s) for s in sizes], measured
        ),
        "ols_alpha_error": abs(ols.alpha - two_point.alpha)
        / two_point.alpha,
    }


def test_ablation_calibration_strategy(benchmark, ctx):
    result = benchmark(_compare_fits, ctx)
    # Both fits are fine on average...
    assert result["two_point"] < 0.10
    # ...but OLS learns nothing about alpha from a sweep its loss
    # function barely sees (it can be off by a large factor).
    assert result["ols"] > result["two_point"] / 4
