"""Fig. 10: HotSpot speedup vs iteration count (1024x1024)."""

from repro.harness.speedups import run_speedup_vs_iterations
from repro.workloads import get_workload


def test_fig10_hotspot_speedup_vs_iterations(benchmark, ctx):
    result = benchmark(
        run_speedup_vs_iterations, ctx, get_workload("HotSpot")
    )
    assert result.data_size == "1024 x 1024"
    assert result.accuracy_crossover is not None
    # Predictions with and without transfer converge as iterations grow.
    gap_first = abs(
        result.predicted_with_transfer[0]
        - result.predicted_without_transfer[0]
    )
    gap_last = abs(
        result.predicted_with_transfer[-1]
        - result.predicted_without_transfer[-1]
    )
    assert gap_last < 0.25 * gap_first
