"""Fig. 5: predicted vs measured time for every individual transfer."""

from repro.harness import paperref
from repro.harness.apps import run_fig5_transfer_scatter


def test_fig5_transfer_scatter(benchmark, ctx):
    result = benchmark(run_fig5_transfer_scatter, ctx)
    # Paper: 7.6% average per-transfer error, with a handful of outliers
    # (the bimodal CFD transfer and jittery tiny HotSpot transfers).
    assert result.mean_error < 2 * paperref.FIG5_MEAN_TRANSFER_ERROR
    assert {p.application for p in result.outliers(0.3)} == {"CFD"}
