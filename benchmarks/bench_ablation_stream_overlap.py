"""Ablation: how much transfer overhead could CUDA streams hide?

The paper's projection (and its ports) are synchronous.  This extension
bounds the benefit of chunked, double-buffered transfers on a
single-copy-engine GPU: overlap helps exactly where the paper says
transfers hurt, but it cannot beat the copy-engine's throughput — the
transfer problem shrinks, it does not disappear.
"""

from repro.core.overlap import estimate_overlap
from repro.harness.context import ExperimentContext
from repro.workloads.registry import paper_workloads


def _overlap_all(ctx: ExperimentContext):
    out = {}
    for workload in paper_workloads():
        for dataset in workload.datasets():
            projection = ctx.projection(workload, dataset)
            out[f"{workload.name}/{dataset.label}"] = estimate_overlap(
                projection, ctx.bus_model
            )
    return out


def test_ablation_stream_overlap(benchmark, ctx):
    estimates = benchmark(_overlap_all, ctx)
    for label, est in estimates.items():
        # Sane bounds: overlap never loses, never hides more than the
        # transfers themselves.
        assert 0.0 <= est.saving_fraction < 1.0, label
        assert est.overlapped_seconds <= est.serial_seconds + 1e-12
    # Transfer-dominated single-iteration runs gain substantially...
    assert estimates["SRAD/4096 x 4096"].saving_fraction > 0.25
    # ...but even perfect overlap cannot rescue Stassuij: the copies alone
    # exceed the CPU time, so the port still loses.
    stassuij = estimates["Stassuij/132 x 2048"]
    cpu = 2.85e-3
    assert cpu / stassuij.overlapped_seconds < 1.0