"""Fig. 3: speedup of pinned over pageable transfers."""

from repro.harness import paperref
from repro.harness.transfer_sweep import run_fig3_pinned_speedup


def test_fig3_pinned_speedup(benchmark, ctx):
    result = benchmark(run_fig3_pinned_speedup, ctx)
    crossover = result.crossover_size_h2d()
    assert crossover is not None
    # Paper: pinned wins H2D for everything above ~2KB.
    assert crossover <= 2 * paperref.FIG3_H2D_CROSSOVER_BYTES
    # Pinned is roughly 2x at the large end.
    assert 1.4 < result.h2d_speedup[-1] < 2.6
