"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md §4 for the experiment index).  Run with::

    pytest benchmarks/ --benchmark-only

The ``ctx`` fixture is session-scoped and pre-warmed so benchmarks measure
the experiment computation itself, not one-time calibration; benchmarks
that must include calibration construct their own context.
"""

import json
from pathlib import Path

import pytest

from repro.harness.context import ExperimentContext
from repro.transform.space import TransformationSpace
from repro.workloads.registry import all_workloads, paper_workloads

#: All machine-readable benchmark outputs live under this untracked
#: directory (gitignored as a whole); CI uploads ``BENCH_*.json`` from
#: here and :mod:`benchmarks.bench_trend` diffs them against the
#: previous run's artifact.
BENCH_DIR = Path(__file__).resolve().parent / "out"

#: Machine-readable throughput results (configs/s per scoring path);
#: written incrementally by the explorer/streaming benchmarks.
BENCH_JSON = BENCH_DIR / "BENCH_explorer.json"

#: Surrogate serving-path numbers (µs/query, speedup vs stream,
#: agreement) from ``bench_surrogate_throughput.py``.
SURROGATE_JSON = BENCH_DIR / "BENCH_surrogate.json"


def _merge_json(path: Path, section: str, payload: dict) -> None:
    """Read-merge-write one section into a benchmark JSON.

    Merging keeps results from separate pytest invocations (explorer vs
    streaming benches in the same CI job) in one file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    data = {}
    if path.is_file():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
    data[section] = payload
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def record_bench(section: str, payload: dict) -> None:
    """Merge one benchmark's numbers into ``BENCH_explorer.json``."""
    _merge_json(BENCH_JSON, section, payload)


def record_surrogate_bench(section: str, payload: dict) -> None:
    """Merge one benchmark's numbers into ``BENCH_surrogate.json``."""
    _merge_json(SURROGATE_JSON, section, payload)


@pytest.fixture(scope="session")
def bench_json():
    """The :func:`record_bench` writer, injected as a fixture."""
    return record_bench


@pytest.fixture(scope="session")
def surrogate_json():
    """The :func:`record_surrogate_bench` writer, as a fixture."""
    return record_surrogate_bench


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    context = ExperimentContext(seed=2013)
    # Pre-warm every projection and measurement cache.
    for workload in paper_workloads():
        for dataset in workload.datasets():
            context.report(workload, dataset)
    return context


@pytest.fixture()
def fresh_ctx() -> ExperimentContext:
    """An uncached context, for benchmarks that time the full pipeline."""
    return ExperimentContext(seed=2013)


@pytest.fixture(scope="session")
def wide_space() -> TransformationSpace:
    """The 144-config search grid the throughput benchmarks sweep."""
    return TransformationSpace.wide()


@pytest.fixture(scope="session")
def kernel_suite():
    """(workload name, kernel, program) across every registered workload.

    Largest dataset per workload, first two kernels per program (caps
    PathFinder's 64 rows) — the shared workload mix of the explorer and
    streaming throughput benchmarks.
    """
    suite = []
    for workload in all_workloads():
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        for kernel in program.kernels[:2]:
            suite.append((workload.name, kernel, program))
    return suite


@pytest.fixture(scope="session")
def largest_programs():
    """workload name -> skeleton of its largest dataset (paper set)."""
    programs = {}
    for workload in paper_workloads():
        dataset = max(workload.datasets(), key=lambda d: d.size)
        programs[workload.name] = workload.skeleton(dataset)
    return programs
