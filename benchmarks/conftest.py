"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md §4 for the experiment index).  Run with::

    pytest benchmarks/ --benchmark-only

The ``ctx`` fixture is session-scoped and pre-warmed so benchmarks measure
the experiment computation itself, not one-time calibration; benchmarks
that must include calibration construct their own context.
"""

import pytest

from repro.harness.context import ExperimentContext
from repro.workloads.registry import paper_workloads


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    context = ExperimentContext(seed=2013)
    # Pre-warm every projection and measurement cache.
    for workload in paper_workloads():
        for dataset in workload.datasets():
            context.report(workload, dataset)
    return context


@pytest.fixture()
def fresh_ctx() -> ExperimentContext:
    """An uncached context, for benchmarks that time the full pipeline."""
    return ExperimentContext(seed=2013)
