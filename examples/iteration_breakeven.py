#!/usr/bin/env python
"""Iteration break-even analysis for iterative stencil applications.

For CFD / HotSpot / SRAD the transfer set is iteration-independent: input
moves once before the first iteration, output once after the last
(paper Section IV-B).  So the GPU's advantage grows with iteration count —
this example answers two practical questions per workload:

1. after how many iterations does the GPU break even with the CPU?
2. up to how many iterations does modeling transfers matter (the paper's
   "twice as accurate" crossover of Figs. 8/10/12)?

Run:  python examples/iteration_breakeven.py
"""

from repro.harness.context import ExperimentContext
from repro.harness.speedups import run_speedup_vs_iterations
from repro.util.tables import Table
from repro.workloads import get_workload


def break_even_iterations(report, max_iterations: int = 100_000):
    """First iteration count where the projected GPU speedup exceeds 1."""
    proj, meas = report.projection, report.measured
    if meas.cpu_seconds <= proj.kernel_seconds:
        return None  # the GPU never wins, even with free transfers
    for n in range(1, max_iterations + 1):
        if proj.speedup(meas.cpu_seconds, n) >= 1.0:
            return n
    return None


def main() -> None:
    ctx = ExperimentContext()
    table = Table(
        ["Workload", "Dataset", "speedup @1 iter", "break-even iters",
         "transfer matters until", "limit speedup"],
        title="Iteration break-even analysis (virtual Argonne testbed)",
    )
    for name in ("CFD", "HotSpot", "SRAD"):
        workload = get_workload(name)
        dataset = max(workload.datasets(), key=lambda d: d.size)
        report = ctx.report(workload, dataset)
        sweep = run_speedup_vs_iterations(ctx, workload, dataset)
        table.add_row([
            name,
            dataset.label,
            f"{report.predicted_speedup('both', 1):.2f}x",
            break_even_iterations(report) or "never",
            f"{sweep.accuracy_crossover} iters",
            f"{report.projection.speedup_limit(report.measured.cpu_seconds):.2f}x",
        ])
    print(table.render())
    print(
        "\n'transfer matters until' = largest iteration count where the "
        "transfer-aware prediction stays twice as accurate as kernel-only "
        "(paper Figs. 8/10/12: 18 / 70 / 228)."
    )

    print("\nFull sweep for SRAD (the paper's Fig. 12):\n")
    print(run_speedup_vs_iterations(ctx, get_workload("SRAD")).render())


if __name__ == "__main__":
    main()
