#!/usr/bin/env python
"""Batch a parameter sweep through the projection service — and watch
the cache turn the second pass into dictionary lookups.

The sweep asks, for every paper workload and dataset, "is the port worth
it at 1, 10, and 100 iterations?" — 3x the requests, but the iteration
count is deliberately *not* part of the cache key (a projection is
iteration-independent; see paper Section IV-B), so the engine explores
each skeleton once and serves the other two variants from cache.  A
second identical sweep is then served entirely from cache.

Run:  python examples/batch_sweep.py
"""

import time

from repro.harness.context import ExperimentContext
from repro.service import ProjectionCache, ProjectionEngine
from repro.service.engine import ProjectionRequest
from repro.util.tables import Table
from repro.workloads import paper_workloads


def sweep_requests() -> list[ProjectionRequest]:
    requests = []
    for workload in paper_workloads():
        for dataset in workload.datasets():
            for iterations in (1, 10, 100):
                requests.append(
                    ProjectionRequest(
                        program=workload.skeleton(dataset),
                        hints=workload.hints(dataset),
                        iterations=iterations,
                        request_id=(
                            f"{workload.name}/{dataset.label}"
                            f"@{iterations}it"
                        ),
                    )
                )
    return requests


def main() -> None:
    ctx = ExperimentContext()
    engine = ProjectionEngine(
        bus=ctx.bus_model, cache=ProjectionCache(), max_workers=4
    )
    requests = sweep_requests()

    start = time.perf_counter()
    responses = engine.project_batch(requests)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    engine.project_batch(requests)
    warm = time.perf_counter() - start

    table = Table(
        ["Request", "kernel", "transfer", "total", "served from"],
        title=f"Iteration sweep ({len(requests)} requests)",
    )
    for response in responses:
        summary = response.summary
        table.add_row([
            response.request_id,
            f"{summary.kernel_seconds * 1e3:.2f}ms",
            f"{summary.transfer_seconds * 1e3:.2f}ms",
            f"{response.total_seconds * 1e3:.2f}ms",
            "cache" if response.cached else "exploration",
        ])
    print(table.render())
    print()

    stats = engine.cache.stats()
    print(f"first pass:  {cold * 1e3:8.1f} ms "
          f"({sum(1 for r in responses if not r.cached)} explorations)")
    print(f"second pass: {warm * 1e3:8.1f} ms (all cache hits)")
    print(f"speedup from caching: {cold / warm:.0f}x")
    print(f"cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['memory_entries']} entries")
    print()
    print(engine.metrics.report())


if __name__ == "__main__":
    main()
