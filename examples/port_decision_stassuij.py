#!/usr/bin/env python
"""The Stassuij decision flip (paper Section V-B.4).

Stassuij — the sparse x dense complex multiply at the core of Green's
Function Monte Carlo — is the paper's decisive case: a kernel-only
projection says the GPU *wins* (1.10x), but once data transfer is charged
the真 answer is a ~0.4x *slowdown*.  GROPHECY++ gets the direction right.

This example also shows the data-usage analyzer's hint machinery: without
the sparse-extent hints the CSR vectors are transferred whole
(conservatively); with hints the analyzer uses the true nnz.

Run:  python examples/port_decision_stassuij.py
"""



from repro.harness.context import ExperimentContext
from repro.util.units import MiB, seconds_to_human
from repro.workloads import Stassuij


def main() -> None:
    ctx = ExperimentContext()
    workload = Stassuij()
    dataset = workload.datasets()[0]

    print(f"== Workload: {workload.description} ==")
    program = workload.skeleton(dataset)
    print(f"   kernels: {[k.name for k in program.kernels]}")

    print("\n== Data usage analysis (with and without sparse hints) ==")
    with_hints = ctx.projector.project(program, workload.hints(dataset))
    without_hints = ctx.projector.project(program)
    print(f"   with nnz hints:    {with_hints.plan.total_bytes / MiB:.2f} MB "
          f"({with_hints.plan.transfer_count} transfers)")
    print(f"   without hints:     "
          f"{without_hints.plan.total_bytes / MiB:.2f} MB (conservative)")
    for t in with_hints.plan.transfers:
        print(f"     {t.direction.short:>3} {t.array:<10} "
              f"{t.bytes / MiB:6.2f} MB"
              + ("  [conservative]" if t.conservative else ""))

    print("\n== Projection vs the (virtual) testbed measurement ==")
    report = ctx.report(workload, dataset)
    proj, meas = report.projection, report.measured
    print(f"   kernel:   predicted {seconds_to_human(proj.kernel_seconds)}"
          f" / measured {seconds_to_human(meas.kernel_seconds)}")
    print(f"   transfer: predicted {seconds_to_human(proj.transfer_seconds)}"
          f" / measured {seconds_to_human(meas.transfer_seconds)}")
    print(f"   CPU baseline: {seconds_to_human(meas.cpu_seconds)}")

    print("\n== The decision ==")
    kernel_only = report.predicted_speedup("kernel")
    both = report.predicted_speedup("both")
    actual = meas.speedup()
    print(f"   kernel-only projection: {kernel_only:.2f}x  -> 'port it!'")
    print(f"   GROPHECY++ projection:  {both:.2f}x  -> 'do not port'")
    print(f"   actual GPU speedup:     {actual:.2f}x  -> "
          f"{'slowdown' if actual < 1 else 'speedup'}")
    print("\n   Only the transfer-aware projection calls the direction "
          "correctly (paper: 1.10x predicted vs 0.39x actual vs 0.38x "
          "transfer-aware).")


if __name__ == "__main__":
    main()
