#!/usr/bin/env python
"""Quickstart: should I port vector addition to the GPU?

This walks the paper's Section II-B motivating example end to end:

1. describe the CPU code as a *code skeleton* (no CUDA needed);
2. calibrate the PCIe model on the machine (two measurements);
3. let GROPHECY++ project kernel time, transfer time, and speedup;
4. compare against the kernel-only answer the pre-transfer-aware
   framework would have given.

Run:  python examples/quickstart.py
"""

from repro.core import GrophecyPlusPlus
from repro.cpu.model import CpuWorkProfile
from repro.gpu import quadro_fx_5600
from repro.pcie import calibrate_bus
from repro.sim import argonne_testbed
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.util.units import MiB, seconds_to_human

N = 16 * 1024 * 1024  # 16M floats per vector (64 MB each)


def build_skeleton():
    """c[i] = a[i] + b[i] — one data-parallel loop, one statement."""
    pb = ProgramBuilder("vectoradd")
    pb.array("a", (N,)).array("b", (N,)).array("c", (N,))
    kb = KernelBuilder("add").parallel_loop("i", N)
    kb.load("a", "i").load("b", "i").store("c", "i")
    kb.statement(flops=1, label="c[i] = a[i] + b[i]")
    return pb.kernel(kb).build()


def main() -> None:
    # The virtual testbed stands in for the paper's Argonne node
    # (Xeon E5405 + Quadro FX 5600 over PCIe v1); on real hardware you
    # would pass a channel that times actual cudaMemcpy calls.
    testbed = argonne_testbed()

    print("== 1. Calibrate the PCIe bus (paper Section III-C) ==")
    bus = calibrate_bus(testbed.bus)
    print(f"   host->device: {bus.h2d}")
    print(f"   device->host: {bus.d2h}")

    print("\n== 2. Project with GROPHECY++ ==")
    gpp = GrophecyPlusPlus(quadro_fx_5600(), bus)
    projection = gpp.project(build_skeleton())
    best = projection.kernels.kernels[0].best
    print(f"   best mapping: {best.config.label()} ({best.breakdown.regime})")
    print(f"   kernel time:   {seconds_to_human(projection.kernel_seconds)}")
    print(f"   transfer time: {seconds_to_human(projection.transfer_seconds)}"
          f"  ({projection.plan.total_bytes / MiB:.0f} MB across "
          f"{projection.plan.transfer_count} transfers)")
    print(f"   transfer share of total: {projection.transfer_fraction:.0%}")

    print("\n== 3. The porting decision ==")
    # CPU baseline: a bandwidth-bound streaming add (measured on the
    # testbed, as the paper measures its OpenMP baselines).
    cpu_profile = CpuWorkProfile("vectoradd", bytes_moved=12 * N, flops=N,
                                 efficiency=0.9)
    cpu_time = testbed.measure_cpu(cpu_profile).mean
    print(f"   measured CPU time: {seconds_to_human(cpu_time)}")

    kernel_only = projection.speedup(cpu_time, include_transfer=False)
    end_to_end = projection.speedup(cpu_time)
    print(f"   kernel-only projected speedup: {kernel_only:.1f}x  "
          "<- the misleading answer")
    print(f"   end-to-end projected speedup:  {end_to_end:.2f}x  "
          "<- with PCIe transfers")

    if end_to_end < 1:
        print("\n   Verdict: porting vector addition would SLOW the "
              "application down — the three PCIe crossings cost more than "
              "the GPU saves, exactly the paper's Section II-B warning.")
    else:  # pragma: no cover - depends on machine parameters
        print("\n   Verdict: the GPU wins even after transfers.")


if __name__ == "__main__":
    main()
