#!/usr/bin/env python
"""Bring your own workload: matrix multiplication (the paper's Fig. 1).

The paper's Figure 1 walks GROPHECY through a matrix-multiply code
skeleton; this example does the same with GROPHECY++, showing every step
a user takes to project *their own* CPU code:

1. declare the arrays and write the kernel skeleton (two parallel loops
   over the output, a serial reduction loop, one multiply-add statement);
2. look at what the transformation explorer discovers (shared-memory
   tiling of the reused operands, block-size choice);
3. read the projected kernel/transfer split and the speedup verdict as
   the matrix size grows — matmul's O(n^3) compute over O(n^2) data means
   transfers stop mattering quickly, the opposite of vector add.

Run:  python examples/custom_workload_matmul.py
"""

from repro.core import GrophecyPlusPlus
from repro.cpu.model import CpuWorkProfile
from repro.gpu import quadro_fx_5600
from repro.pcie import calibrate_bus
from repro.sim import argonne_testbed
from repro.skeleton import KernelBuilder, ProgramBuilder
from repro.util.tables import Table
from repro.util.units import seconds_to_human


def matmul_skeleton(n: int):
    """C = A @ B over n x n float32 matrices."""
    pb = ProgramBuilder(f"matmul-{n}")
    pb.array("A", (n, n)).array("B", (n, n)).array("C", (n, n))
    kb = KernelBuilder("matmul")
    kb.parallel_loop("i", n).parallel_loop("j", n)  # one thread per C[i,j]
    kb.loop("k", n)  # serial reduction
    kb.load("A", "i", "k").load("B", "k", "j")
    kb.statement(flops=2, label="acc += A[i,k] * B[k,j]")
    kb.store("C", "i", "j")
    kb.statement(flops=0, label="C[i,j] = acc", amortize=("i", "j"))
    return pb.kernel(kb).build()


def main() -> None:
    testbed = argonne_testbed()
    bus = calibrate_bus(testbed.bus)
    gpp = GrophecyPlusPlus(quadro_fx_5600(), bus)

    table = Table(
        ["n", "best mapping", "kernel", "transfer", "transfer share",
         "CPU (roofline)", "speedup", "kernel-only claim"],
        title="Matrix multiply: projection vs matrix size",
    )
    for n in (256, 512, 1024, 2048):
        program = matmul_skeleton(n)
        projection = gpp.project(program)
        best = projection.kernels.kernels[0].best

        # CPU baseline: a reasonable blocked OpenMP matmul sustains a
        # good fraction of the node's 32 GFLOPS peak.
        cpu_profile = CpuWorkProfile(
            f"matmul-{n}",
            bytes_moved=3 * n * n * 4,
            flops=2 * n**3,
            efficiency=0.55,
        )
        cpu_time = testbed.measure_cpu(cpu_profile).mean

        table.add_row([
            n,
            best.config.label(),
            seconds_to_human(projection.kernel_seconds),
            seconds_to_human(projection.transfer_seconds),
            f"{projection.transfer_fraction:.0%}",
            seconds_to_human(cpu_time),
            f"{projection.speedup(cpu_time):.2f}x",
            f"{projection.speedup(cpu_time, include_transfer=False):.2f}x",
        ])
    print(table.render())
    print(
        "\nCompute-intensity effect: at n=256 the PCIe crossings eat a "
        "large share of the total, but matmul's O(n^3)/O(n^2) ratio means "
        "the transfer share — and the gap between the honest and the "
        "kernel-only speedup — collapses as n grows.  Contrast with "
        "quickstart.py's vector add, where the gap never closes."
    )


if __name__ == "__main__":
    main()
