#!/usr/bin/env python
"""What-if analysis: would a faster GPU fix the transfer problem?

GROPHECY's GPU model "can be configured to reflect different GPU
architectures" (paper Section II-C).  This example re-projects every
workload on a GT200-class GeForce GTX 280 (~2x the FX 5600's bandwidth,
relaxed coalescing rules) while keeping the *same PCIe v1 bus* — and
shows the paper's deeper point: a faster GPU widens the gap between the
kernel-only fantasy and the end-to-end reality, because the bus doesn't
get any faster.

Run:  python examples/gpu_whatif.py
"""

from repro.core import GrophecyPlusPlus
from repro.gpu import gtx_280, quadro_fx_5600
from repro.harness.context import ExperimentContext
from repro.util.tables import Table
from repro.workloads import paper_workloads


def main() -> None:
    ctx = ExperimentContext()
    old_gpu = GrophecyPlusPlus(quadro_fx_5600(), ctx.bus_model)
    new_gpu = GrophecyPlusPlus(gtx_280(), ctx.bus_model)

    table = Table(
        ["Workload", "Dataset", "kernel FX5600", "kernel GTX280",
         "kernel gain", "end-to-end FX5600", "end-to-end GTX280",
         "end-to-end gain"],
        title="Upgrading the GPU but not the bus (1 iteration)",
    )
    for workload in paper_workloads():
        dataset = max(workload.datasets(), key=lambda d: d.size)
        program = workload.skeleton(dataset)
        hints = workload.hints(dataset)
        old = old_gpu.project(program, hints)
        new = new_gpu.project(program, hints)
        kernel_gain = old.kernel_seconds / new.kernel_seconds
        total_gain = old.total_seconds(1) / new.total_seconds(1)
        table.add_row([
            workload.name,
            dataset.label,
            f"{old.kernel_seconds * 1e3:.2f}ms",
            f"{new.kernel_seconds * 1e3:.2f}ms",
            f"{kernel_gain:.2f}x",
            f"{old.total_seconds(1) * 1e3:.2f}ms",
            f"{new.total_seconds(1) * 1e3:.2f}ms",
            f"{total_gain:.2f}x",
        ])
    print(table.render())
    print(
        "\nThe kernel-level gains (~2x and more where relaxed coalescing "
        "rescues misaligned stencil taps) shrink to modest end-to-end "
        "gains: the PCIe bus, unchanged, dominates single-iteration "
        "runs.  Amdahl on a bus."
    )


if __name__ == "__main__":
    main()
