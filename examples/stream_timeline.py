#!/usr/bin/env python
"""Visualize where a ported run spends its time — and what streams buy.

Renders ASCII Gantt charts of two schedules for SRAD (one iteration):

1. the synchronous schedule the paper models (copy in, compute, copy
   out, strictly serialized);
2. a chunked double-buffered schedule with one copy engine, realizing
   the stream-overlap bound of ``repro.core.overlap`` event by event.

The copy lane's busy fraction makes the paper's thesis visible at a
glance: for single-iteration runs the bus, not the GPU, is the critical
resource — streams shrink the problem, they don't remove it.

Run:  python examples/stream_timeline.py
"""

from repro.core.overlap import estimate_overlap
from repro.harness.context import ExperimentContext
from repro.sim.timeline import overlapped_timeline, synchronous_timeline
from repro.workloads import Srad


def main() -> None:
    ctx = ExperimentContext()
    workload = Srad()
    dataset = workload.dataset("2048 x 2048")
    projection = ctx.projection(workload, dataset)

    print("== Synchronous schedule (the paper's model) ==\n")
    sync = synchronous_timeline(projection, iterations=1)
    print(sync.render())

    est = estimate_overlap(projection, ctx.bus_model)
    print(f"\n== Chunked streams schedule ({est.chunks} chunks) ==\n")
    over = overlapped_timeline(projection, chunks=est.chunks)
    print(over.render())

    saved = sync.makespan - over.makespan
    print(
        f"\nOverlap hides {saved * 1e3:.2f} ms "
        f"({saved / sync.makespan:.0%} of the run) — but the copy lane "
        f"still runs at {over.busy_fraction('copy'):.0%} utilization: "
        "the PCIe bus remains the bottleneck resource, which is exactly "
        "why the paper's transfer model matters."
    )


if __name__ == "__main__":
    main()
