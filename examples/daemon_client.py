"""Talk to a running repro daemon — pure stdlib, no repro import needed.

The daemon's wire protocol is plain JSON over HTTP (docs/DAEMON.md), so
any language's standard library is a complete client.  This example
uses only ``urllib`` and ``json`` to submit a batch, poll it, submit a
traced projection and fetch its stitched Chrome trace, and scrape a few
metrics — exactly what a CI gate or a cron job would do.

Run a daemon first::

    python -m repro daemon start --state-dir .repro-daemon --port 8642

then::

    python examples/daemon_client.py http://127.0.0.1:8642

(The richer ``repro.daemon.client.DaemonClient`` wraps the same calls
with error handling and state-dir discovery; use it when repro is
importable.)
"""

import json
import sys
import time
import urllib.error
import urllib.request
import uuid

BASE = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8642"


def call(method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        BASE + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def wait_for(job_id):
    """Poll /result until terminal (409 means still pending)."""
    while True:
        try:
            return call("GET", f"/v1/jobs/{job_id}/result")
        except urllib.error.HTTPError as exc:
            if exc.code != 409:
                raise
            time.sleep(0.1)


def main():
    version = call("GET", "/v1/version")
    print(f"daemon {version['version']} (protocol {version['protocol']})")

    # Submit a batch: the same records `python -m repro batch` reads.
    submitted = call(
        "POST",
        "/v1/jobs",
        {
            "kind": "batch",
            "client": "example",
            "payload": {
                "requests": [
                    {"workload": "VectorAdd", "dataset": "4M"},
                    {"workload": "VectorAdd", "dataset": "64M"},
                    {"workload": "HotSpot", "dataset": "64 x 64",
                     "iterations": 10},
                ]
            },
        },
    )
    job_id = submitted["id"]
    print(f"submitted batch job {job_id} (position {submitted['position']})")

    # Poll until terminal: /result answers 409 while the job is pending.
    body = wait_for(job_id)

    print(f"job {job_id}: {body['state']}")
    summary = body["result"]["summary"]
    print(
        f"  {summary['ok']}/{summary['total']} ok, "
        f"{summary['cache_hits']} cache hit(s)"
    )
    for record in body["result"]["records"]:
        if record["ok"]:
            print(
                f"  {record['id']}: {record['total_seconds'] * 1e3:.2f} ms "
                f"projected total"
            )
        else:
            print(f"  {record['id']}: ERROR {record['error']}")

    # Submit a traced projection: carry our own trace id and wall clock
    # so the daemon's trace includes the client-submit span, then fetch
    # the stitched Chrome trace (open it in Perfetto / chrome://tracing).
    trace_id = uuid.uuid4().hex
    traced = call(
        "POST",
        "/v1/jobs",
        {
            "kind": "projection",
            "client": "example",
            "payload": {"workload": "VectorAdd", "dataset": "4M"},
            "trace": True,
            "trace_id": trace_id,
            "client_submitted": time.time(),
        },
    )
    traced_id = traced["id"]
    print(f"submitted traced projection job {traced_id}")
    wait_for(traced_id)
    trace = call("GET", f"/v1/jobs/{traced_id}/trace")
    spans = trace["traceEvents"]
    names = {event["name"] for event in spans}
    lifecycle = (
        "with" if {"client-submit", "queue-dwell"} <= names else "missing"
    )
    print(
        f"trace {trace['trace_id']}: {len(spans)} events "
        f"({lifecycle} lifecycle spans)"
    )

    # One scrape of the Prometheus exposition, filtered to job counters
    # and the obs v2 SLO/health gauges.
    with urllib.request.urlopen(BASE + "/metrics", timeout=10) as response:
        for line in response.read().decode().splitlines():
            if line.startswith(("repro_jobs_", "repro_obs_")):
                print(f"  {line}")


if __name__ == "__main__":
    main()
