#!/usr/bin/env python
"""Explore pinned vs pageable host memory on the (virtual) PCIe bus.

The paper assumes pinned memory because it wins almost everywhere (its
Figs. 2/3); the one exception is host-to-device transfers under ~2 KB,
where pageable's smaller fixed overhead wins.  This example measures both
memory kinds across the full 1 B - 512 MB sweep, locates the crossover,
and quantifies what assuming the wrong memory kind would cost a real
transfer plan.

Run:  python examples/pinned_vs_pageable.py
"""

from repro.datausage import Direction
from repro.harness.context import ExperimentContext
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
)
from repro.pcie import CalibrationConfig, Calibrator, MemoryKind
from repro.util.units import bytes_to_human, seconds_to_human
from repro.workloads import Srad


def main() -> None:
    ctx = ExperimentContext()

    print("== Transfer-time sweep, host-to-device (paper Fig. 2) ==\n")
    print(run_fig2_transfer_times(ctx, Direction.H2D).render())

    print("\n== Pinned-over-pageable speedup (paper Fig. 3) ==\n")
    fig3 = run_fig3_pinned_speedup(ctx)
    print(fig3.render())
    crossover = fig3.crossover_size_h2d()
    print(f"\npinned wins H2D from {bytes_to_human(crossover)} upward "
          "(paper: ~2KB); below that, pageable's lower latency wins.")

    print("\n== What would a pageable-memory port of SRAD cost? ==")
    workload = Srad()
    dataset = workload.dataset("2048 x 2048")
    plan = ctx.projection(workload, dataset).plan

    # Calibrate a second bus model as if the application used pageable
    # staging buffers, then price the same plan under both models.
    pageable_model = Calibrator(
        ctx.testbed.bus, CalibrationConfig(memory=MemoryKind.PAGEABLE)
    ).calibrate()
    pinned_time = ctx.bus_model.predict_plan(plan)
    pageable_time = pageable_model.predict_plan(plan)
    print(f"   plan: {plan.total_bytes / 2**20:.0f} MB across "
          f"{plan.transfer_count} transfers")
    print(f"   pinned:   {seconds_to_human(pinned_time)}")
    print(f"   pageable: {seconds_to_human(pageable_time)} "
          f"({pageable_time / pinned_time:.2f}x slower)")
    print("\nThis is why the paper assumes pinned memory for predictions "
          "(Section III-C) and leaves the pinned/pageable tradeoff to "
          "future work.")


if __name__ == "__main__":
    main()
