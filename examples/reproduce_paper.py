#!/usr/bin/env python
"""Reproduce every table and figure of the paper's evaluation.

Runs the full harness — the 1B..512MB bus sweeps (Figs. 2-4), the
application measurements (Table I), the per-transfer scatter (Fig. 5), the
component-error scatter (Fig. 6), the speedup-vs-size and
speedup-vs-iterations families (Figs. 7-12), and the headline error table
(Table II) — and prints each artifact as text, with the paper's reference
numbers alongside where the paper states them.

Run:  python examples/reproduce_paper.py            (full output)
      python examples/reproduce_paper.py --summary  (headlines only)
"""

import sys

from repro.datausage import Direction
from repro.harness import paperref
from repro.harness.apps import (
    run_fig5_transfer_scatter,
    run_fig6_error_scatter,
    run_table1_measured,
)
from repro.harness.context import ExperimentContext
from repro.harness.speedups import (
    run_speedup_vs_iterations,
    run_speedup_vs_size,
    run_table2_speedup_error,
)
from repro.harness.transfer_sweep import (
    run_fig2_transfer_times,
    run_fig3_pinned_speedup,
    run_fig4_model_error,
)
from repro.workloads import get_workload


def heading(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    summary_only = "--summary" in sys.argv
    ctx = ExperimentContext(seed=2013)

    heading("Bus model validation (Figs. 2-4)")
    if not summary_only:
        for direction in Direction:
            print(run_fig2_transfer_times(ctx, direction).render())
            print()
        print(run_fig3_pinned_speedup(ctx).render())
        print()
    fig4 = run_fig4_model_error(ctx)
    print(fig4.render() if not summary_only else "")
    print(
        f"Fig. 4 summary: mean error {fig4.mean_h2d:.1%} (to GPU) / "
        f"{fig4.mean_d2h:.1%} (from GPU) — paper: "
        f"{paperref.FIG4_MEAN_ERROR_H2D:.1%} / "
        f"{paperref.FIG4_MEAN_ERROR_D2H:.1%}"
    )

    heading("Table I: measured kernel & transfer times")
    print(run_table1_measured(ctx).render())

    heading("Fig. 5: per-transfer predicted vs measured")
    fig5 = run_fig5_transfer_scatter(ctx)
    if not summary_only:
        print(fig5.render())
    print(
        f"average per-transfer error: {fig5.mean_error:.1%} "
        f"(paper: {paperref.FIG5_MEAN_TRANSFER_ERROR:.1%}); outliers: "
        + ", ".join(
            f"{p.application}/{p.array}" for p in fig5.outliers(0.3)
        )
    )

    heading("Fig. 6: transfer error vs kernel error per dataset")
    print(run_fig6_error_scatter(ctx).render())

    for name, size_fig, iter_fig in (
        ("CFD", "Fig. 7", "Fig. 8"),
        ("HotSpot", "Fig. 9", "Fig. 10"),
        ("SRAD", "Fig. 11", "Fig. 12"),
    ):
        workload = get_workload(name)
        heading(f"{size_fig} / {iter_fig}: {name}")
        print(run_speedup_vs_size(ctx, workload).render())
        print()
        sweep = run_speedup_vs_iterations(ctx, workload)
        print(sweep.render())
        print(
            f"(paper: crossover ~{paperref.ACCURACY_CROSSOVER[name]} "
            f"iterations, limit error "
            f"{paperref.LIMIT_ERROR[name]:.1%})"
        )

    heading("Stassuij (Section V-B.4): the decision flip")
    workload = get_workload("Stassuij")
    report = ctx.report(workload, workload.datasets()[0])
    print(
        f"kernel-only predicted speedup: "
        f"{report.predicted_speedup('kernel'):.2f}x "
        f"(paper {paperref.STASSUIJ_KERNEL_ONLY_SPEEDUP:.2f}x)\n"
        f"measured speedup:              {report.measured.speedup():.2f}x "
        f"(paper {paperref.STASSUIJ_MEASURED_SPEEDUP:.2f}x)\n"
        f"transfer-aware prediction:     "
        f"{report.predicted_speedup('both'):.2f}x "
        f"(paper {paperref.STASSUIJ_BOTH_SPEEDUP:.2f}x)"
    )

    heading("Table II: speedup-prediction error")
    table2 = run_table2_speedup_error(ctx)
    print(table2.render())
    avg = table2.application_average
    ref = paperref.TABLE2_AVERAGE_APPLICATIONS
    print(
        f"\nheadline (application-weighted): "
        f"{avg.kernel_only_error:.0%} / {avg.transfer_only_error:.0%} / "
        f"{avg.both_error:.0%}   —   paper: "
        f"{ref.kernel_only:.0%} / {ref.transfer_only:.0%} / {ref.both:.0%}"
    )


if __name__ == "__main__":
    main()
